//! Property test: after any randomized interleaving of requests, updates,
//! and sync points, the metrics registry's accumulated invalidation
//! counters equal the totals of the `SyncReport`s the portal returned.

use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::CachePortal;
use proptest::prelude::*;
use std::sync::Arc;

fn example_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT, INDEX(model))")
        .unwrap();
    db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT, INDEX(model))")
        .unwrap();
    db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',25000), ('Honda','Civic',18000)")
        .unwrap();
    db.execute("INSERT INTO Mileage VALUES ('Avalon', 28.0), ('Civic', 36.5)")
        .unwrap();
    db
}

fn portal() -> CachePortal {
    let p = CachePortal::builder(example_db()).build().unwrap();
    p.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("carSearch").with_key_get_params(&["maxprice"]),
        "Car search",
        vec![QueryTemplate::new(
            "SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage \
             WHERE Car.model = Mileage.model AND Car.price < $1",
            vec![ParamSource::Get("maxprice".into(), ColType::Int)],
        )],
    )));
    p
}

fn req(maxprice: i64) -> HttpRequest {
    HttpRequest::get(
        "shop.example.com",
        "/carSearch",
        &[("maxprice", &maxprice.to_string())],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn registry_counters_match_sync_report_totals(
        ops in prop::collection::vec(0u8..6, 1..32),
    ) {
        let p = portal();
        let mut total_records = 0u64;
        let mut total_polls = 0u64;
        let mut total_local = 0u64;
        let mut total_ejected = 0u64;
        let mut total_mapped = 0u64;
        let mut sync_points = 0u64;

        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => { p.request(&req(20000)); }
                1 => { p.request(&req(30000)); }
                2 => {
                    p.update(&format!(
                        "INSERT INTO Car VALUES ('M','car{i}',{})",
                        15_000 + (i as i64) * 137 % 20_000
                    )).unwrap();
                }
                3 => {
                    p.update(&format!("INSERT INTO Mileage VALUES ('car{i}', 30.0)"))
                        .unwrap();
                }
                4 => { p.update("DELETE FROM Car WHERE price > 24000").unwrap(); }
                _ => {
                    p.advance_clock(100);
                    let r = p.sync_point().unwrap();
                    total_records += r.invalidation.records_consumed;
                    total_polls += r.invalidation.polls.issued;
                    total_local += r.invalidation.local_decisions;
                    total_ejected += r.ejected as u64;
                    total_mapped += r.mapper.mapped;
                    sync_points += 1;
                }
            }
        }

        let m = &p.obs().metrics;
        prop_assert_eq!(m.counter_value("invalidator.sync_points"), sync_points);
        prop_assert_eq!(m.counter_value("invalidator.records_consumed"), total_records);
        prop_assert_eq!(m.counter_value("invalidator.polls.issued"), total_polls);
        prop_assert_eq!(m.counter_value("invalidator.polls.avoided_local"), total_local);
        prop_assert_eq!(m.counter_value("invalidator.pages.ejected"), total_ejected);
        prop_assert_eq!(m.counter_value("sniffer.mapper.mapped"), total_mapped);

        // The staleness probe never holds stamps for records a sync point
        // already consumed.
        if ops.last() == Some(&5) {
            prop_assert_eq!(p.obs().staleness.pending_len(), 0);
        }
    }
}

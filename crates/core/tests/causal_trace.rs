//! End-to-end causal lifecycle tracing: every eject the provenance ring
//! retains must resolve through the trace ring to the sync-point phase that
//! ejected it and onward to the `update.commit` trace root(s) whose LSNs it
//! consumed — and the deterministic observability surfaces (`/timeline`
//! with `stable=1`, `/scorecards`) must render byte-identically for the
//! same fixed workload.

use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::CachePortal;
use std::sync::Arc;

fn example_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT, INDEX(model))")
        .unwrap();
    db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT, INDEX(model))")
        .unwrap();
    db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',25000), ('Honda','Civic',18000)")
        .unwrap();
    db.execute("INSERT INTO Mileage VALUES ('Avalon', 28.0), ('Civic', 36.5)")
        .unwrap();
    db
}

fn search_servlet() -> Arc<dyn cacheportal::web::Servlet> {
    Arc::new(SqlServlet::new(
        ServletSpec::new("carSearch").with_key_get_params(&["maxprice"]),
        "Car search",
        vec![QueryTemplate::new(
            "SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage \
             WHERE Car.model = Mileage.model AND Car.price < $1",
            vec![ParamSource::Get("maxprice".into(), ColType::Int)],
        )],
    ))
}

fn req(maxprice: i64) -> HttpRequest {
    HttpRequest::get(
        "shop.example.com",
        "/carSearch",
        &[("maxprice", &maxprice.to_string())],
    )
}

fn portal() -> CachePortal {
    let p = CachePortal::builder(example_db()).build().unwrap();
    p.register_servlet(search_servlet());
    p
}

/// A fixed workload: cache two pages, commit updates that hit them across
/// two sync windows, and re-cache in between so multiple ejects accumulate.
fn run_workload(p: &CachePortal) {
    p.request(&req(20000)); // page A: Civic only
    p.request(&req(30000)); // page B: Civic + Avalon
    p.request(&req(30000)); // cache hit on page B
    p.sync_point().unwrap();

    p.update("INSERT INTO Mileage VALUES ('Camry', 30.0)").unwrap();
    p.update("INSERT INTO Car VALUES ('Toyota','Camry',22000)").unwrap();
    p.sync_point().unwrap();

    p.request(&req(30000)); // re-cache page B
    p.sync_point().unwrap();
    p.update("UPDATE Car SET price = 17000 WHERE model = 'Avalon'").unwrap();
    p.sync_point().unwrap();
}

/// Acceptance: every eject carries a resolvable causal chain — the record's
/// parent span is the `sync.phase.eject` span of its sync point, the chain
/// roots at that sync's `sync.point` trace root, and the commit index names
/// at least one `update.commit` trace root covering the consumed LSN range.
#[test]
fn every_eject_resolves_to_commit_and_sync_roots() {
    let p = portal();
    run_workload(&p);

    let records = p.obs().provenance.recent(usize::MAX);
    assert!(records.len() >= 2, "the workload ejects across two windows");

    // The portal-level check verifies every record...
    let verified = p.verify_causal_chains().expect("all chains resolve");
    assert_eq!(verified, records.len() as u64, "no record skipped as untraced");

    // ...and the raw rings agree with it hop by hop.
    for rec in &records {
        assert_ne!(rec.trace_id, 0, "eject of {} is untraced", rec.url);
        assert_ne!(rec.span_id, 0);
        let chain = p.obs().tracer.resolve_chain(rec.trace_id, rec.parent_span);
        assert_eq!(chain.first().map(|e| e.name), Some("sync.phase.eject"));
        let root = chain.last().unwrap();
        assert_eq!(root.name, "sync.point");
        assert_eq!(root.parent_span, 0, "sync.point is a trace root");
        assert_eq!(root.trace_id, rec.trace_id, "one trace per lifecycle");

        let roots = p.obs().commits.roots_covering(rec.lsn_first, rec.lsn_last);
        assert!(!roots.is_empty(), "no commit root covers {}..={}", rec.lsn_first, rec.lsn_last);
        for commit in &roots {
            let ev = p
                .obs()
                .tracer
                .find_span(commit.trace_id, commit.span_id)
                .expect("commit root still buffered");
            assert_eq!(ev.name, "update.commit");
            assert_eq!(ev.parent_span, 0, "commits root their own traces");
            assert_ne!(ev.trace_id, rec.trace_id, "commit and sync are distinct lifecycles");
        }
    }
}

/// The sync-point timeline mirrors the trace: one entry per sync point,
/// each carrying the `sync.point` root's causal identity and the canonical
/// stage vector.
#[test]
fn timeline_entries_carry_the_sync_roots_identity() {
    let p = portal();
    run_workload(&p);

    let entries = p.obs().timeline.recent(usize::MAX);
    assert_eq!(entries.len(), 4, "one timeline entry per sync point");
    for t in &entries {
        assert_ne!(t.trace_id, 0);
        let root = p.obs().tracer.find_span(t.trace_id, t.span_id).unwrap();
        assert_eq!(root.name, "sync.point");
        let stages: Vec<&str> = t.stages.iter().map(|s| s.name).collect();
        assert_eq!(
            stages,
            ["mapper", "registration", "delta", "index", "analysis", "poll_wait", "eject", "persist"]
        );
    }
    // The windows that ejected pages show eject work; LSN ranges are real.
    let busy: Vec<_> = entries.iter().filter(|t| t.ejected > 0).collect();
    assert!(busy.len() >= 2);
    for t in busy {
        assert!(t.records > 0);
        assert!(t.lsn_last >= t.lsn_first);
        let eject = t.stages.iter().find(|s| s.name == "eject").unwrap();
        assert_eq!(eject.work, t.ejected);
    }
}

/// Acceptance: `/timeline?stable=1` and `/scorecards` are byte-identical
/// across two runs of the same fixed workload (wall-clock never leaks into
/// them; ids, work units, and the modeled poll-wait stage are driven by the
/// deterministic logical clock and counters).
#[test]
fn stable_surfaces_are_byte_identical_for_a_fixed_workload() {
    let render = || {
        let p = portal();
        run_workload(&p);
        (
            serde_json::to_string(&p.timeline_json(true)).unwrap(),
            serde_json::to_string(&p.scorecards_json()).unwrap(),
        )
    };
    let (timeline_a, scorecards_a) = render();
    let (timeline_b, scorecards_b) = render();
    assert_eq!(timeline_a, timeline_b, "stable timeline must not carry wall-clock");
    assert_eq!(scorecards_a, scorecards_b, "scorecards must be deterministic");

    // And the scorecards actually contain the workload's signal: the join
    // query type with hits, misses, render cost, and invalidation churn.
    let doc = p_scorecards();
    let cards = doc["scorecards"].as_array().unwrap();
    assert_eq!(cards.len(), 1, "one registered query type");
    let card = &cards[0];
    assert!(card["sql"].as_str().unwrap().to_lowercase().contains("from car, mileage"));
    assert!(card["hits"].as_u64().unwrap() >= 1, "page B was served from cache");
    assert!(card["misses"].as_u64().unwrap() >= 2, "both pages generated");
    assert!(card["render_cost_units"].as_u64().unwrap() > 0, "rows scanned attributed");
    assert!(card["invalidations"].as_u64().unwrap() >= 1);
    assert!(card["pages_ejected"].as_u64().unwrap() >= 1);
}

fn p_scorecards() -> serde_json::Value {
    let p = portal();
    run_workload(&p);
    p.scorecards_json()
}

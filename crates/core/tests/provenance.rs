//! Integration tests for invalidation provenance: every page eject must be
//! explainable after the fact as a full causal chain — consumed update-log
//! LSN range → per-table ΔR groups → matched query type (with bound
//! parameters) → verdict → QI rows → ejected URL — and the live surfaces
//! (`/metrics`, `/explain`, JSONL export) must agree with the in-process
//! snapshot.

use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::CachePortal;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;

fn example_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT, INDEX(model))")
        .unwrap();
    db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT, INDEX(model))")
        .unwrap();
    db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',25000), ('Honda','Civic',18000)")
        .unwrap();
    db.execute("INSERT INTO Mileage VALUES ('Avalon', 28.0), ('Civic', 36.5)")
        .unwrap();
    db
}

fn search_servlet() -> Arc<dyn cacheportal::web::Servlet> {
    Arc::new(SqlServlet::new(
        ServletSpec::new("carSearch").with_key_get_params(&["maxprice"]),
        "Car search",
        vec![QueryTemplate::new(
            "SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage \
             WHERE Car.model = Mileage.model AND Car.price < $1",
            vec![ParamSource::Get("maxprice".into(), ColType::Int)],
        )],
    ))
}

fn req(maxprice: i64) -> HttpRequest {
    HttpRequest::get(
        "shop.example.com",
        "/carSearch",
        &[("maxprice", &maxprice.to_string())],
    )
}

fn portal() -> CachePortal {
    let p = CachePortal::builder(example_db()).build().unwrap();
    p.register_servlet(search_servlet());
    p
}

/// Acceptance: after the end-to-end pipeline runs, *every* eject the
/// provenance ring retains resolves through `explain_invalidation(url)` to
/// the full LSN → ΔR → query-type → verdict → QI → URL chain.
#[test]
fn every_eject_is_explained_with_the_full_chain() {
    let p = portal();
    p.request(&req(20000)); // page A: Civic only
    let out_b = p.request(&req(30000)); // page B: Civic + Avalon
    let url_b = out_b.key.unwrap().as_str().to_string();
    p.sync_point().unwrap();

    // Affects only page B (new 22000 car joins its result).
    p.update("INSERT INTO Mileage VALUES ('Camry', 30.0)").unwrap();
    p.update("INSERT INTO Car VALUES ('Toyota','Camry',22000)").unwrap();
    let r1 = p.sync_point().unwrap();
    assert_eq!(r1.ejected, 1);

    // Re-cache page B, then hit it again with a different update.
    p.request(&req(30000));
    p.sync_point().unwrap();
    p.update("UPDATE Car SET price = 21000 WHERE model = 'Avalon'").unwrap();
    let r2 = p.sync_point().unwrap();
    assert!(r2.ejected >= 1);

    let records = p.obs().provenance.recent(usize::MAX);
    assert!(records.len() >= 2, "two sync points ejected pages");

    for rec in &records {
        let doc = p.explain_invalidation(&rec.url);
        let matches = doc["matches"].as_array().unwrap();
        assert!(!matches.is_empty(), "no explanation for {}", rec.url);
        let m = matches
            .iter()
            .find(|m| m["seq"].as_u64() == Some(rec.seq))
            .expect("the record itself is among the matches");

        // LSN range: present and ordered.
        let first = m["lsn_first"].as_u64().unwrap();
        let last = m["lsn_last"].as_u64().unwrap();
        assert!(first <= last);

        // ΔR groups: at least one table with a non-empty delta.
        let deltas = m["deltas"].as_array().unwrap();
        assert!(!deltas.is_empty());
        for d in deltas {
            assert!(d["table"].as_str().is_some());
            assert!(d["inserted"].as_u64().unwrap() + d["deleted"].as_u64().unwrap() > 0);
        }

        // Query type + verdict: the matched instance names the join and a
        // concrete decision procedure.
        let causes = m["causes"].as_array().unwrap();
        assert!(!causes.is_empty(), "eject of {} has no cause", rec.url);
        for c in causes {
            assert!(c["type_sql"].as_str().unwrap().to_lowercase().contains("from car, mileage"));
            assert!(!c["params"].as_array().unwrap().is_empty());
            let verdict = c["verdict"].as_str().unwrap();
            assert!(
                [
                    "local-predicate",
                    "polling-query",
                    "poll-cache",
                    "maintained-index",
                    "delete-guard",
                    "budget-degraded",
                    "conservative",
                    "table-level",
                    "bind-failure",
                    "poll-fault",
                ]
                .contains(&verdict),
                "unknown verdict {verdict}"
            );
            assert!(!c["detail"].as_str().unwrap().is_empty());
        }

        // URL + residency: the chain ends at the page itself.
        assert_eq!(m["url"].as_str(), Some(rec.url.as_str()));
        assert!(m["resident"].as_bool().unwrap(), "cached pages were resident");

        // QI rows: the sniffer half of the chain.
        let qi = doc["qi_map"].as_array().unwrap();
        assert!(!qi.is_empty(), "{} has no QI rows", rec.url);
        for row in qi {
            assert!(row["sql"].as_str().unwrap().to_lowercase().contains("select"));
            assert_eq!(row["servlet"].as_str(), Some("carSearch"));
        }
    }

    // Both syncs in this test ejected page B specifically.
    let b = p.explain_invalidation(&url_b);
    assert_eq!(b["matches"].as_array().unwrap().len(), 2);
    assert_eq!(b["truncated"].as_bool(), Some(false));
}

#[test]
fn explain_update_resolves_any_lsn_in_the_consumed_batch() {
    let p = portal();
    p.request(&req(30000));
    p.sync_point().unwrap();

    let lsn_before = {
        let db = p.db().read();
        db.high_water()
    };
    p.update("INSERT INTO Mileage VALUES ('Camry', 30.0)").unwrap();
    p.update("INSERT INTO Car VALUES ('Toyota','Camry',22000)").unwrap();
    p.sync_point().unwrap();

    // Both committed LSNs fall in the same consumed batch: either explains
    // the eject.
    for lsn in [lsn_before, lsn_before + 1] {
        let doc = p.explain_update(lsn);
        let matches = doc["matches"].as_array().unwrap();
        assert_eq!(matches.len(), 1, "lsn {lsn} must resolve to the eject");
        assert!(matches[0]["url"].as_str().unwrap().contains("carSearch"));
    }
    // An LSN never consumed resolves to nothing — and says the ring is
    // intact, so "nothing" means "no eject", not "evidence rotated out".
    let miss = p.explain_update(999_999);
    assert!(miss["matches"].as_array().unwrap().is_empty());
    assert_eq!(miss["truncated"].as_bool(), Some(false));
}

/// Acceptance: `/metrics` is valid Prometheus text exposition and its
/// counters agree with `metrics_snapshot()`.
#[test]
fn prometheus_exposition_matches_the_snapshot() {
    let p = portal();
    p.request(&req(20000));
    p.request(&req(20000));
    p.sync_point().unwrap();
    p.update("INSERT INTO Car VALUES ('Kia','Rio',12000)").unwrap();
    p.sync_point().unwrap();

    let snap = p.metrics_snapshot();
    let text = p.obs().metrics.render_prometheus();

    // Well-formed: every non-comment line is `name[{labels}] value`.
    for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let (name, value) = line.rsplit_once(' ').unwrap();
        assert!(name.starts_with("cacheportal_"), "bad metric name in {line}");
        assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
    }

    // Every snapshot counter appears with the same value.
    let counters = match &snap["metrics"]["counters"] {
        serde_json::Value::Object(fields) => fields.clone(),
        other => panic!("counters section missing: {other:?}"),
    };
    assert!(!counters.is_empty());
    for (dotted, v) in &counters {
        let expect = format!(
            "{}_total {}",
            cacheportal::obs::prometheus_name(dotted),
            v.as_u64().unwrap()
        );
        assert!(
            text.lines().any(|l| l == expect),
            "snapshot counter {dotted} not in exposition as `{expect}`"
        );
    }
}

#[test]
fn admin_endpoint_serves_metrics_and_explanations() {
    let p = portal();
    p.request(&req(30000));
    p.sync_point().unwrap();
    p.update("UPDATE Car SET price = 21000 WHERE model = 'Avalon'").unwrap();
    p.sync_point().unwrap();
    let url = p.obs().provenance.recent(1)[0].url.clone();

    let server = p.serve_admin("127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    let (code, body) = http_get(&addr, "/healthz");
    assert_eq!((code, body.as_str()), (200, "ok\n"));

    let (code, body) = http_get(&addr, "/metrics");
    assert_eq!(code, 200);
    assert!(body.lines().any(|l| l.starts_with("cacheportal_web_requests_total_total ")));
    assert!(body.contains("cacheportal_invalidator_pages_ejected_total 1"));

    let encoded: String = url
        .bytes()
        .map(|b| {
            if b.is_ascii_alphanumeric() {
                (b as char).to_string()
            } else {
                format!("%{b:02X}")
            }
        })
        .collect();
    let (code, body) = http_get(&addr, &format!("/explain?url={encoded}"));
    assert_eq!(code, 200);
    let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(doc["matches"][0]["url"].as_str(), Some(url.as_str()));
    assert!(!doc["qi_map"].as_array().unwrap().is_empty());

    let (code, body) = http_get(&addr, "/explain?lsn=4");
    assert_eq!(code, 200);
    let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(doc["matches"][0]["url"].as_str(), Some(url.as_str()));

    let (code, _) = http_get(&addr, "/explain");
    assert_eq!(code, 400);

    server.shutdown();
}

/// Regression: a rolled-back transaction must leave no provenance — its log
/// records are rewound before any sync point can consume them.
#[test]
fn rolled_back_transactions_leave_no_provenance() {
    let p = portal();
    p.request(&req(30000));
    p.sync_point().unwrap();

    let err: cacheportal::db::DbResult<()> = p.update_txn(|tx| {
        tx.execute("INSERT INTO Mileage VALUES ('Rio', 33.0)")?;
        tx.execute("INSERT INTO Car VALUES ('Kia','Rio',12000)")?;
        Err(cacheportal::db::DbError::Unsupported("business rule".into()))
    });
    assert!(err.is_err());
    p.sync_point().unwrap();

    assert_eq!(p.obs().provenance.recorded(), 0, "no eject, no record");
    let doc = p.explain_invalidation(p.request(&req(30000)).key.unwrap().as_str());
    assert!(doc["matches"].as_array().unwrap().is_empty());
    assert_eq!(doc["truncated"].as_bool(), Some(false));

    // The same statements committed do produce the full chain.
    p.update_txn(|tx| {
        tx.execute("INSERT INTO Mileage VALUES ('Rio', 33.0)")?;
        tx.execute("INSERT INTO Car VALUES ('Kia','Rio',12000)")?;
        Ok(())
    })
    .unwrap();
    p.sync_point().unwrap();
    assert_eq!(p.obs().provenance.recorded(), 1);
    let rec = &p.obs().provenance.recent(1)[0];
    assert_eq!(rec.lsn_last - rec.lsn_first + 1, 2, "one batch, two records");
}

#[test]
fn snapshot_surfaces_ring_overflow_instead_of_hiding_it() {
    let p = portal();
    // Overflow both bounded rings well past their default capacities.
    for i in 0..1_200u64 {
        p.obs().tracer.event("test", "spam", i, "x");
    }
    for i in 0..600u64 {
        p.obs().provenance.record(cacheportal::obs::EjectRecord {
            seq: 0,
            sync_seq: 0,
            ts: i,
            lsn_first: i,
            lsn_last: i,
            deltas: vec![],
            url: format!("/p{i}"),
            resident: false,
            causes: vec![],
            trace_id: 0,
            span_id: 0,
            parent_span: 0,
        });
    }
    let snap = p.metrics_snapshot();
    assert!(snap["trace"]["dropped"].as_u64().unwrap() > 0);
    assert!(snap["provenance"]["dropped"].as_u64().unwrap() > 0);
    assert_eq!(snap["provenance"]["recorded"].as_u64(), Some(600));

    // Evicted evidence is flagged, not silently absent.
    let doc = p.explain_invalidation("/p0");
    assert!(doc["matches"].as_array().unwrap().is_empty());
    assert_eq!(doc["truncated"].as_bool(), Some(true));
    assert!(doc["dropped_records"].as_u64().unwrap() > 0);
}

#[test]
fn jsonl_export_streams_without_duplicates() {
    let p = portal();
    p.request(&req(30000));
    p.sync_point().unwrap();

    let mut buf = Vec::new();
    let stats = p.export_jsonl(&mut buf).unwrap();
    assert!(stats.trace_events > 0);
    assert_eq!(stats.eject_records, 0, "nothing ejected yet");

    p.update("UPDATE Car SET price = 21000 WHERE model = 'Avalon'").unwrap();
    p.sync_point().unwrap();
    let mut buf2 = Vec::new();
    let stats2 = p.export_jsonl(&mut buf2).unwrap();
    assert_eq!(stats2.eject_records, 1);

    // Every line is valid standalone JSON with a kind tag; the second batch
    // repeats nothing from the first.
    let parse = |buf: &[u8]| -> Vec<serde_json::Value> {
        std::str::from_utf8(buf)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect()
    };
    let first = parse(&buf);
    let second = parse(&buf2);
    for line in first.iter().chain(&second) {
        assert!(matches!(
            line["kind"].as_str(),
            Some("trace") | Some("eject") | Some("scorecard")
        ));
    }
    let max_trace_seq_first = first
        .iter()
        .filter(|l| l["kind"].as_str() == Some("trace"))
        .filter_map(|l| l["seq"].as_u64())
        .max()
        .unwrap();
    let min_trace_seq_second = second
        .iter()
        .filter(|l| l["kind"].as_str() == Some("trace"))
        .filter_map(|l| l["seq"].as_u64())
        .min()
        .unwrap();
    assert!(min_trace_seq_second > max_trace_seq_first);
    assert!(second.iter().any(|l| l["kind"].as_str() == Some("eject")
        && l["url"].as_str().unwrap().contains("carSearch")));
}

/// Regression: the sharded analysis path must leave eject provenance
/// complete — every [`EjectRecord`] the parallel run produces carries the
/// LSN range, non-empty ΔR groups, and at least one verdict cause, and the
/// whole chain is identical to what the sequential path records. Also
/// checks the `invalidator.shard.*` surfaces: the workers gauge reports
/// the configured width and per-shard timings land in the histogram.
#[test]
fn parallel_analysis_keeps_eject_provenance_complete() {
    let run = |workers: usize| {
        let p = CachePortal::builder(example_db())
            .workers(workers)
            .build()
            .unwrap();
        p.register_servlet(search_servlet());
        p.request(&req(20000));
        p.request(&req(30000));
        p.sync_point().unwrap();

        p.update("INSERT INTO Mileage VALUES ('Camry', 30.0)").unwrap();
        p.update("INSERT INTO Car VALUES ('Toyota','Camry',22000)").unwrap();
        p.update("UPDATE Car SET price = 17500 WHERE model = 'Civic'").unwrap();
        let r = p.sync_point().unwrap();
        assert!(r.ejected >= 1, "the burst invalidates at least one page");

        let records = p.obs().provenance.recent(usize::MAX);
        assert!(!records.is_empty());
        let mut digest: Vec<String> = Vec::new();
        for rec in &records {
            assert!(rec.lsn_first <= rec.lsn_last);
            assert!(!rec.deltas.is_empty(), "{} lost its ΔR groups", rec.url);
            assert!(!rec.causes.is_empty(), "{} lost its causes", rec.url);
            let mut causes: Vec<String> = rec
                .causes
                .iter()
                .map(|c| format!("{}|{:?}|{}|{}", c.type_sql, c.params, c.verdict, c.detail))
                .collect();
            causes.sort_unstable();
            let mut deltas: Vec<String> = rec
                .deltas
                .iter()
                .map(|d| format!("{}:{}+{}-", d.table, d.inserted, d.deleted))
                .collect();
            deltas.sort_unstable();
            digest.push(format!(
                "{}|{}..{}|{deltas:?}|{causes:?}|{}",
                rec.url, rec.lsn_first, rec.lsn_last, rec.resident
            ));
        }
        digest.sort_unstable();

        let m = &p.obs().metrics;
        assert_eq!(m.gauge_value("invalidator.shard.workers"), workers as i64);
        (r.ejected, digest)
    };

    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(sequential, parallel, "parallel provenance diverged");
}

/// A failing polling query must degrade conservatively *and leave a trail*:
/// the eject's provenance names the fault as its verdict, so an operator can
/// distinguish "page invalidated because the DBMS said so" from "page
/// invalidated because we could not ask".
#[test]
fn poll_fault_ejects_carry_poll_fault_provenance() {
    // No maintained indexes: the residual polling query must go to the
    // DBMS, which is the only site poll faults can hit.
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT)").unwrap();
    db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT)").unwrap();
    db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',25000), ('Honda','Civic',18000)")
        .unwrap();
    db.execute("INSERT INTO Mileage VALUES ('Avalon', 28.0), ('Civic', 36.5)")
        .unwrap();

    let p = CachePortal::builder(db)
        .fault_plan(cacheportal::db::FaultPlan::new(cacheportal::db::FaultSpec {
            seed: 9,
            poll_error: 1.0,
            ..cacheportal::db::FaultSpec::default()
        }))
        .build()
        .unwrap();
    p.register_servlet(search_servlet());
    let out = p.request(&req(30000));
    let url = out.key.unwrap().as_str().to_string();
    p.sync_point().unwrap();

    p.update("INSERT INTO Mileage VALUES ('Camry', 30.0)").unwrap();
    p.update("INSERT INTO Car VALUES ('Toyota','Camry',22000)").unwrap();
    let r = p.sync_point().unwrap();
    assert!(r.ejected >= 1, "conservative fallback must still eject");
    assert!(r.invalidation.poll_faults > 0, "p=1.0 must fault the poll");

    let doc = p.explain_invalidation(&url);
    let matches = doc["matches"].as_array().unwrap();
    assert!(!matches.is_empty(), "faulted eject left no provenance");
    let fault_causes: Vec<&serde_json::Value> = matches
        .iter()
        .flat_map(|m| m["causes"].as_array().unwrap())
        .filter(|c| c["verdict"].as_str() == Some("poll-fault"))
        .collect();
    assert!(!fault_causes.is_empty(), "no cause carries the poll-fault verdict");
    for c in &fault_causes {
        let detail = c["detail"].as_str().unwrap();
        assert!(
            detail.contains("conservative fallback"),
            "detail must explain the degradation: {detail}"
        );
        assert!(detail.contains("poll"), "detail must name the failed poll: {detail}");
    }

    // The fault is also visible on the metrics surface.
    let m = &p.obs().metrics;
    assert!(m.counter_value("invalidator.polls.faulted") > 0);
    assert!(m.counter_value("invalidator.poll_fault_verdicts") > 0);
}

/// Minimal blocking HTTP/1.1 GET against the admin server.
fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let code: u16 = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (code, body)
}

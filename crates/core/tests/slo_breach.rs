//! End-to-end freshness-SLO breach drill: a portal whose staleness windows
//! blow past a (deliberately tight) objective must fire the multi-window
//! burn-rate alert, flip `/healthz` to 503 with the canonical
//! `slo-fast-burn` reason, automatically capture a black-box flight record
//! whose causal chains resolve against its own trace section, and — once
//! the windows age past the long lookback and clean syncs resume — resolve
//! the alert and restore health. The `stable=1` bundle rendering must be
//! byte-identical across two portals driven through the same workload.

use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::obs::{verify_flight_record, Objective, SloKind, SloPolicy};
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::CachePortal;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "cp-slo-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn example_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT, INDEX(model))")
        .unwrap();
    db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT, INDEX(model))")
        .unwrap();
    db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',25000), ('Honda','Civic',18000)")
        .unwrap();
    db.execute("INSERT INTO Mileage VALUES ('Avalon', 28.0), ('Civic', 36.5)")
        .unwrap();
    db
}

/// A policy tight enough for a scripted workload to breach: any staleness
/// window over 50 logical µs is a bad event. Only deterministic objectives,
/// so the `stable=1` document carries the whole story.
fn tight_policy() -> SloPolicy {
    SloPolicy {
        objectives: vec![
            Objective::new(SloKind::StalenessP99, 50, 0.99, true),
            Objective::new(SloKind::PollErrors, 0, 0.99, true),
        ],
        ..SloPolicy::default()
    }
}

fn portal_with(policy: SloPolicy, flight_dir: &std::path::Path) -> CachePortal {
    let portal = CachePortal::builder(example_db())
        .slo_policy(policy)
        .flight_dir(flight_dir.to_path_buf())
        .build()
        .unwrap();
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("carSearch").with_key_get_params(&["maxprice"]),
        "Car search",
        vec![QueryTemplate::new(
            "SELECT Car.maker, Car.model, Car.price FROM Car WHERE Car.price < $1",
            vec![ParamSource::Get("maxprice".into(), ColType::Int)],
        )],
    )));
    portal
}

/// One cache-filling request + invalidating update + sync. With
/// `stale_micros > 0`, the clock advances between commit and sync so the
/// closed staleness window measures that long.
fn cycle(portal: &CachePortal, price: &mut i64, stale_micros: u64) {
    let req = HttpRequest::get("shop.example.com", "/carSearch", &[("maxprice", "30000")]);
    portal.request(&req);
    portal
        .update(&format!("INSERT INTO Car VALUES ('Kia','Rio',{price})"))
        .unwrap();
    *price += 1;
    if stale_micros > 0 {
        portal.advance_clock(stale_micros);
    }
    portal.sync_point().unwrap();
}

/// The scripted drill: clean baseline, then windows 100× over threshold.
fn run_breach_workload(portal: &CachePortal) {
    let mut price = 20_000i64;
    for _ in 0..8 {
        cycle(portal, &mut price, 0);
    }
    for _ in 0..4 {
        cycle(portal, &mut price, 5_000);
    }
}

fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let code: u16 = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (code, body)
}

#[test]
fn breach_fires_dumps_black_box_and_resolves() {
    let dir = temp_dir();
    let portal = portal_with(tight_policy(), &dir);
    let mut price = 20_000i64;

    // Clean baseline: windows close in a few logical µs, well under the
    // 50µs objective. Nothing fires.
    for _ in 0..8 {
        cycle(&portal, &mut price, 0);
    }
    let (fast, slow) = portal.obs().slo.firing_counts();
    assert_eq!((fast, slow), (0, 0), "baseline must stay healthy");
    assert_eq!(portal.obs().health.snapshot().to_response().status, 200);

    // Breach: four windows of 5_000µs each — 100× the objective. The bad
    // fraction (4 bad / 12 total) burns the 1% budget at ~33×, over both
    // the fast pair's 14.4× and the slow pair's 6× thresholds.
    for _ in 0..4 {
        cycle(&portal, &mut price, 5_000);
    }
    let (fast, slow) = portal.obs().slo.firing_counts();
    assert!(fast >= 1, "fast pair must fire on a breached staleness objective");
    assert!(slow >= 1, "slow pair must fire too (lower threshold)");
    let fired: Vec<_> = portal.obs().slo.alerts_recent(16);
    assert!(
        fired.iter().any(|a| a.objective == "staleness-p99" && a.state == "firing"),
        "alert log must record the staleness-p99 firing transition"
    );

    // The breach degraded /healthz to 503 with the canonical reason code,
    // over real HTTP.
    let server = portal.serve_admin("127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();
    let (code, body) = http_get(&addr, "/healthz");
    assert_eq!(code, 503, "fast-burn alert must unhealth the portal: {body}");
    assert!(body.contains("slo-fast-burn"), "reason names the burn: {body}");

    // /slo tells the same story with the same reason codes as context.
    let (code, body) = http_get(&addr, "/slo");
    assert_eq!(code, 200);
    assert!(body.contains("\"staleness-p99\""));
    assert!(body.contains("slo-fast-burn"), "/slo context must carry the reason: {body}");

    // The black box flew itself: each newly fired alert captured a bundle,
    // and the armed flight directory has the atomic on-disk copies.
    assert!(portal.obs().recorder.recorded() >= 1, "breach must auto-capture a bundle");
    let mut dumps: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_string_lossy().to_string();
            name.starts_with("flightrecord-") && name.ends_with(".json")
        })
        .collect();
    dumps.sort();
    assert!(!dumps.is_empty(), "armed flight dir must hold at least one dump");
    let raw = std::fs::read_to_string(&dumps[0]).unwrap();
    let bundle: serde_json::Value = serde_json::from_str(&raw).unwrap();
    assert_eq!(bundle["schema"].as_str(), Some("cacheportal.flightrecord.v1"));
    assert!(
        bundle["reason"].as_str().unwrap_or("").starts_with("slo-breach:staleness-p99:"),
        "auto-dump reason names the breached objective"
    );
    // Bundle-local coherence: provenance trace ids resolve against the
    // bundle's own trace section, all the way to a sync.point root.
    let verified = verify_flight_record(&bundle).expect("bundle chains must resolve");
    assert!(verified > 0, "the breach window ejected pages, so chains must exist");
    // ... and the live portal's full-fidelity chains agree.
    assert!(portal.verify_causal_chains().unwrap() > 0);

    // The index endpoint lists the captures.
    let (code, body) = http_get(&addr, "/flightrecord");
    assert_eq!(code, 200);
    assert!(body.contains("cacheportal.flightrecord.v1.index"));
    assert!(body.contains("slo-breach:staleness-p99"));
    drop(server);

    // Resolution: age the windows past the 6h long lookback, then resume
    // clean syncs. The burn drops to zero in every window and the alerts
    // resolve; /healthz recovers to the exact healthy contract.
    portal.advance_clock(7 * 3600 * 1_000_000);
    for _ in 0..4 {
        cycle(&portal, &mut price, 0);
    }
    let (fast, slow) = portal.obs().slo.firing_counts();
    assert_eq!((fast, slow), (0, 0), "aged windows must resolve every alert");
    assert!(
        portal
            .obs()
            .slo
            .alerts_recent(32)
            .iter()
            .any(|a| a.objective == "staleness-p99" && a.state == "resolved"),
        "alert log must record the resolved transition"
    );
    let resp = portal.obs().health.snapshot().to_response();
    assert_eq!((resp.status, resp.body.as_str()), (200, "ok\n"));
    assert!(portal.stale_pages().is_empty());
}

#[test]
fn stable_flight_record_is_byte_identical_across_runs() {
    // Two separate portals, same policy, same scripted workload (including
    // the breach): their stable bundle renderings must match byte for byte
    // — the determinism contract that makes dumps diffable across runs.
    let mut bodies = Vec::new();
    for _ in 0..2 {
        let dir = temp_dir();
        let portal = portal_with(tight_policy(), &dir);
        run_breach_workload(&portal);
        let server = portal.serve_admin("127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        let (code, body) = http_get(&addr, "/flightrecord?dump=1&stable=1");
        assert_eq!(code, 200);
        assert!(body.contains("cacheportal.flightrecord.v1"));
        assert!(body.contains("\"stable\": true"));
        bodies.push(body);
    }
    assert_eq!(bodies[0], bodies[1], "stable=1 bundles must be byte-identical");

    // The stable rendering is still a coherent black box: its provenance
    // tail resolves against its own (duration-zeroed) trace section.
    let bundle: serde_json::Value = serde_json::from_str(&bodies[0]).unwrap();
    assert!(verify_flight_record(&bundle).expect("stable bundle chains must resolve") > 0);
}

//! End-to-end breaker visibility: a portal whose DBMS flaps (bursty poll
//! failures) must trip the per-query-type circuit breaker, degrade to the
//! paper's no-polling conservative policy without stalling a sync point,
//! report the state in `/metrics` counters/gauges and as a `503` from
//! `/healthz` — and close the breaker again once the burst passes.

use cacheportal::db::schema::ColType;
use cacheportal::db::{Database, FaultPlan, FaultSpec};
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::CachePortal;
use std::sync::Arc;

fn example_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT, INDEX(model))")
        .unwrap();
    db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT, INDEX(model))")
        .unwrap();
    db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',25000), ('Honda','Civic',18000)")
        .unwrap();
    db.execute("INSERT INTO Mileage VALUES ('Avalon', 28.0), ('Civic', 36.5)")
        .unwrap();
    db
}

fn counter(p: &CachePortal, name: &str) -> u64 {
    p.metrics_snapshot()["metrics"]["counters"][name].as_u64().unwrap_or(0)
}

fn gauge(p: &CachePortal, name: &str) -> i64 {
    p.metrics_snapshot()["metrics"]["gauges"][name].as_i64().unwrap_or(0)
}

#[test]
fn poll_flap_opens_breaker_surfaces_health_and_closes_again() {
    // Epochs (= sync ordinals) 0..6 fault every poll, 7..13 are clean,
    // then the window would wrap — the test stays within one period.
    let spec = FaultSpec {
        seed: 7,
        poll_flap_period: 14,
        poll_flap_burst: 7,
        ..FaultSpec::default()
    };
    let portal = CachePortal::builder(example_db())
        .fault_plan(FaultPlan::new(spec))
        .build()
        .unwrap();
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("carSearch").with_key_get_params(&["maxprice"]),
        "Car search",
        vec![QueryTemplate::new(
            "SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage \
             WHERE Car.model = Mileage.model AND Car.price < $1",
            vec![ParamSource::Get("maxprice".into(), ColType::Int)],
        )],
    )));
    let req = HttpRequest::get("shop.example.com", "/carSearch", &[("maxprice", "30000")]);

    // Healthy at rest.
    assert_eq!(portal.obs().health.snapshot().to_response().status, 200);

    // Drive record-consuming sync points through the faulty burst: each
    // one polls (join residue), every attempt faults, and the cumulative
    // faults trip the breaker. No sync point may stall or error out.
    // Prices under the page's maxprice: the Car-side predicate passes
    // locally, but deciding the join needs a residual poll on Mileage —
    // the site the flap faults.
    let mut price = 20000;
    for _ in 0..7 {
        portal.request(&req);
        portal
            .update(&format!("INSERT INTO Car VALUES ('Kia','Rio',{price})"))
            .unwrap();
        price += 1;
        portal.sync_point().unwrap();
    }
    assert!(counter(&portal, "invalidator.polls.faulted") > 0, "burst never faulted a poll");
    assert!(counter(&portal, "invalidator.breaker.opened") >= 1, "breaker never opened");
    assert!(gauge(&portal, "invalidator.breaker.open_types") >= 1, "no type shows open");
    assert!(
        counter(&portal, "invalidator.breaker.degraded_verdicts") >= 1,
        "open breaker must produce breaker-degraded verdicts"
    );

    // Open breaker => /healthz is a 503 naming the breaker.
    let resp = portal.obs().health.snapshot().to_response();
    assert_eq!(resp.status, 503, "open breaker must unhealth the portal: {}", resp.body);
    assert!(resp.body.contains("breaker-open"), "reason names the breaker: {}", resp.body);

    // The burst is over: clean sync points age the cooldown, half-open
    // re-probes, and a clean probe closes the breaker.
    for _ in 0..6 {
        portal.request(&req);
        portal
            .update(&format!("INSERT INTO Car VALUES ('Kia','Rio',{price})"))
            .unwrap();
        price += 1;
        portal.sync_point().unwrap();
    }
    assert!(counter(&portal, "invalidator.breaker.half_opened") >= 1, "breaker never probed");
    assert!(counter(&portal, "invalidator.breaker.closed") >= 1, "breaker never closed");
    assert_eq!(gauge(&portal, "invalidator.breaker.open_types"), 0);
    assert_eq!(gauge(&portal, "invalidator.breaker.half_open_types"), 0);

    // Closed breaker => healthy again, and the oracle stayed clean the
    // whole time (degradation may over-eject, never under-eject).
    let resp = portal.obs().health.snapshot().to_response();
    assert_eq!(resp.status, 200, "closed breaker must restore health: {}", resp.body);
    assert_eq!(resp.body, "ok\n");
    assert!(portal.stale_pages().is_empty());
}

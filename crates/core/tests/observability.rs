//! Integration tests for the unified observability layer: one portal, real
//! traffic, and assertions against the combined `metrics_snapshot()`
//! document (acceptance: page-cache hit ratio, polls issued vs avoided,
//! over-invalidation count, commit→eject staleness quantiles).

use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::invalidator::{InvalidationPolicy, InvalidatorConfig};
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::{CachePortal, Served};
use std::sync::Arc;

fn example_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT, INDEX(model))")
        .unwrap();
    db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT, INDEX(model))")
        .unwrap();
    db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',25000), ('Honda','Civic',18000)")
        .unwrap();
    db.execute("INSERT INTO Mileage VALUES ('Avalon', 28.0), ('Civic', 36.5)")
        .unwrap();
    db
}

fn search_servlet() -> Arc<dyn cacheportal::web::Servlet> {
    Arc::new(SqlServlet::new(
        ServletSpec::new("carSearch").with_key_get_params(&["maxprice"]),
        "Car search",
        vec![QueryTemplate::new(
            "SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage \
             WHERE Car.model = Mileage.model AND Car.price < $1",
            vec![ParamSource::Get("maxprice".into(), ColType::Int)],
        )],
    ))
}

fn req(maxprice: i64) -> HttpRequest {
    HttpRequest::get(
        "shop.example.com",
        "/carSearch",
        &[("maxprice", &maxprice.to_string())],
    )
}

#[test]
fn snapshot_covers_acceptance_metrics() {
    let p = CachePortal::builder(example_db()).build().unwrap();
    p.register_servlet(search_servlet());

    // Traffic: one miss, one hit, one more miss on a second page.
    assert_eq!(p.request(&req(20000)).served, Served::Generated);
    assert_eq!(p.request(&req(20000)).served, Served::CacheHit);
    assert_eq!(p.request(&req(30000)).served, Served::Generated);
    p.sync_point().unwrap();

    // A committed mutation, a measurable pause, then the sync point that
    // ejects the affected page: the staleness window must cover the pause.
    p.advance_clock(500);
    p.update("INSERT INTO Mileage VALUES ('Camry', 30.0)").unwrap();
    p.update("INSERT INTO Car VALUES ('Toyota','Camry',22000)").unwrap();
    p.advance_clock(1_000);
    let report = p.sync_point().unwrap();
    assert_eq!(report.ejected, 1, "only the 30000 page is affected");

    let snap = p.metrics_snapshot();

    // Page-cache hit ratio: 1 hit / 3 keyed lookups.
    let ratio = snap["derived"]["page_cache_hit_ratio"].as_f64().unwrap();
    assert!(ratio > 0.0 && ratio < 1.0, "ratio = {ratio}");
    assert!(snap["metrics"]["counters"]["cache.page.hits"].as_u64().unwrap() >= 1);
    assert!(snap["metrics"]["counters"]["cache.page.misses"].as_u64().unwrap() >= 2);
    assert_eq!(
        snap["metrics"]["counters"]["web.requests.total"].as_u64(),
        Some(3)
    );

    // Polls issued vs avoided: the join insert needs a polling query for
    // the 30000 page, while the 20000 page is cleared by the local check.
    let issued = snap["derived"]["polls_issued"].as_u64().unwrap();
    let avoided = snap["derived"]["polls_avoided"].as_u64().unwrap();
    assert!(issued >= 1, "join inserts must poll (issued = {issued})");
    assert!(avoided >= 1, "local checks must avoid polls (avoided = {avoided})");

    // Commit→eject staleness histogram with quantiles.
    let window = &snap["staleness"]["commit_to_eject_micros"];
    assert!(window["count"].as_u64().unwrap() >= 1);
    for q in ["p50", "p95", "p99"] {
        let v = window[q].as_u64().unwrap();
        assert!(v >= 1_000, "{q} = {v}, expected ≥ the 1000us pause");
    }
    assert!(window["max"].as_u64().unwrap() >= window["p50"].as_u64().unwrap());

    // Trace captured the pipeline milestones.
    assert!(snap["trace"]["recorded"].as_u64().unwrap() > 0);

    // The document renders and re-parses as JSON text.
    let text = serde_json::to_string_pretty(&snap).unwrap();
    let back: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(
        back["derived"]["polls_issued"].as_u64(),
        Some(issued),
        "snapshot must round-trip through JSON text"
    );
}

#[test]
fn over_invalidation_audit_counts_false_ejects() {
    // Table-level policy: any Car update ejects every Car-reading page —
    // maximal over-invalidation, which the freshness-oracle audit exposes.
    let mut cfg = InvalidatorConfig::default();
    cfg.policy.default_policy = InvalidationPolicy::TableLevel;
    let p = CachePortal::builder(example_db())
        .invalidator_config(cfg)
        .build()
        .unwrap();
    p.register_servlet(search_servlet());
    p.set_invalidation_audit(true);

    p.request(&req(20000)); // Civic-only page
    p.sync_point().unwrap();

    // 90000 > any cached page's bound: the page is NOT stale, yet
    // table-level invalidation ejects it.
    p.update("INSERT INTO Car VALUES ('Bentley','Azure',90000)").unwrap();
    let report = p.sync_point().unwrap();
    assert_eq!(report.ejected, 1);

    let snap = p.metrics_snapshot();
    assert_eq!(snap["derived"]["over_invalidations"].as_u64(), Some(1));
    assert_eq!(snap["derived"]["pages_ejected"].as_u64(), Some(1));
    assert_eq!(
        snap["metrics"]["counters"]["invalidator.audited_sync_points"].as_u64(),
        Some(1)
    );
}

#[test]
fn exact_policy_audit_reports_no_over_invalidation() {
    let p = CachePortal::builder(example_db()).build().unwrap();
    p.register_servlet(search_servlet());
    p.set_invalidation_audit(true);

    p.request(&req(20000));
    p.request(&req(30000));
    p.sync_point().unwrap();
    p.update("INSERT INTO Mileage VALUES ('Camry', 30.0)").unwrap();
    p.update("INSERT INTO Car VALUES ('Toyota','Camry',22000)").unwrap();
    let report = p.sync_point().unwrap();
    assert_eq!(report.ejected, 1);

    let snap = p.metrics_snapshot();
    assert_eq!(
        snap["derived"]["over_invalidations"].as_u64(),
        Some(0),
        "the exact policy ejected only the genuinely stale page"
    );
}

#[test]
fn staleness_probe_ignores_rolled_back_transactions() {
    let p = CachePortal::builder(example_db()).build().unwrap();
    p.register_servlet(search_servlet());
    p.request(&req(30000));
    p.sync_point().unwrap();

    let baseline = p.obs().staleness.window_snapshot().count;
    let err: cacheportal::db::DbResult<()> = p.update_txn(|tx| {
        tx.execute("INSERT INTO Car VALUES ('Kia','Rio',12000)")?;
        Err(cacheportal::db::DbError::Unsupported("abort".into()))
    });
    assert!(err.is_err());
    assert_eq!(
        p.obs().staleness.pending_len(),
        0,
        "aborted records must not be stamped"
    );
    p.sync_point().unwrap();
    assert_eq!(
        p.obs().staleness.window_snapshot().count,
        baseline,
        "a sync with nothing consumed records no window"
    );
}

#[test]
fn fmt_report_renders_all_sections() {
    let p = CachePortal::builder(example_db()).build().unwrap();
    p.register_servlet(search_servlet());
    p.request(&req(20000));
    p.sync_point().unwrap();

    let report = p.fmt_report();
    assert!(report.contains("== metrics =="));
    assert!(report.contains("cache.page.hits"));
    assert!(report.contains("web.requests.total"));
    assert!(report.contains("== staleness =="));
    assert!(report.contains("== trace =="));
}

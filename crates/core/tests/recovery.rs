//! Crash-recovery integration tests: a portal journals its QI/URL map,
//! page origins, and sync cursor to a durable directory; "crashing" drops
//! the portal (the simulated DBMS process and, optionally, the page cache
//! survive) and `recover()` rebuilds it from disk.
//!
//! The safety property under test: after recovery plus one sync point the
//! freshness oracle finds **zero** stale pages, with any uncertainty
//! resolved by conservative ejection (recovery-gap), never by serving
//! stale content.

use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::web::{shared, HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::{CachePortal, Served};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "cp-recovery-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn example_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT, INDEX(model))")
        .unwrap();
    db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT, INDEX(model))")
        .unwrap();
    db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',25000), ('Honda','Civic',18000)")
        .unwrap();
    db.execute("INSERT INTO Mileage VALUES ('Avalon', 28.0), ('Civic', 36.5)")
        .unwrap();
    db
}

fn search_servlet() -> Arc<dyn cacheportal::web::Servlet> {
    Arc::new(SqlServlet::new(
        ServletSpec::new("carSearch").with_key_get_params(&["maxprice"]),
        "Car search",
        vec![QueryTemplate::new(
            "SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage \
             WHERE Car.model = Mileage.model AND Car.price < $1",
            vec![ParamSource::Get("maxprice".into(), ColType::Int)],
        )],
    ))
}

fn req(maxprice: i64) -> HttpRequest {
    HttpRequest::get(
        "shop.example.com",
        "/carSearch",
        &[("maxprice", &maxprice.to_string())],
    )
}

#[test]
fn recovery_restores_map_origins_and_cursor() {
    let dir = temp_dir();
    let db = shared(example_db());
    let p = CachePortal::builder_shared(db.clone())
        .durable(&dir)
        .build()
        .unwrap();
    p.register_servlet(search_servlet());
    assert_eq!(p.request(&req(20000)).served, Served::Generated);
    assert_eq!(p.request(&req(30000)).served, Served::Generated);
    p.sync_point().unwrap(); // map rows + origins + cursor now durable
    let cache = p.page_cache().clone();
    let map_len = p.qi_url_map().len();
    drop(p); // crash

    let p2 = CachePortal::builder_shared(db)
        .durable(&dir)
        .surviving_cache(cache)
        .recover()
        .unwrap();
    p2.register_servlet(search_servlet());
    let stats = p2.recovery_stats().expect("built via recover()").clone();
    assert_eq!(stats.gap_ejected, 0, "everything was durable before the crash");
    assert_eq!(stats.map_entries, map_len);
    assert_eq!(stats.origins, 2);
    assert_eq!(stats.resumed_sync_seq, 1);

    // Both pages survived and are still fresh.
    assert!(p2.stale_pages().is_empty());
    assert_eq!(p2.request(&req(20000)).served, Served::CacheHit);
    assert_eq!(p2.request(&req(30000)).served, Served::CacheHit);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gap_admissions_are_conservatively_ejected() {
    let dir = temp_dir();
    let db = shared(example_db());
    let p = CachePortal::builder_shared(db.clone())
        .durable(&dir)
        .build()
        .unwrap();
    p.register_servlet(search_servlet());
    p.request(&req(20000));
    p.sync_point().unwrap(); // page A durable
    p.request(&req(30000)); // page B admitted, NOT yet durable
    let cache = p.page_cache().clone();
    let key_a = p.request(&req(20000)).key.unwrap();
    let key_b = p.request(&req(30000)).key.unwrap();
    drop(p); // crash before the sync that would persist B's origin

    let p2 = CachePortal::builder_shared(db)
        .durable(&dir)
        .surviving_cache(cache.clone())
        .recover()
        .unwrap();
    p2.register_servlet(search_servlet());
    let stats = p2.recovery_stats().unwrap().clone();
    assert_eq!(stats.gap_ejected, 1, "B was admitted in the durability gap");
    assert!(cache.contains(&key_a), "durable page survives");
    assert!(!cache.contains(&key_b), "gap page conservatively ejected");

    // The gap eject carries recovery-gap provenance.
    let doc = p2.explain_invalidation(key_b.as_str());
    assert!(
        serde_json::to_string(&doc).unwrap().contains("recovery-gap"),
        "provenance must name the recovery gap: {doc:?}"
    );

    // Health remembers the recovery and the gap ejects.
    let h = p2.obs().health.snapshot();
    assert_eq!(h.recoveries, 1);
    assert_eq!(h.recovery_gap_ejects, 1);

    assert!(p2.stale_pages().is_empty());
    assert_eq!(p2.request(&req(30000)).served, Served::Generated);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unsynced_updates_are_reanalyzed_after_recovery() {
    let dir = temp_dir();
    let db = shared(example_db());
    let p = CachePortal::builder_shared(db.clone())
        .durable(&dir)
        .build()
        .unwrap();
    p.register_servlet(search_servlet());
    p.request(&req(30000));
    p.sync_point().unwrap();
    // Updates land in the shared log; the portal crashes before the sync
    // point that would process them (cursor on disk predates them).
    p.update("INSERT INTO Mileage VALUES ('Camry', 30.0)").unwrap();
    p.update("INSERT INTO Car VALUES ('Toyota','Camry',22000)").unwrap();
    let cache = p.page_cache().clone();
    drop(p);

    let p2 = CachePortal::builder_shared(db)
        .durable(&dir)
        .surviving_cache(cache)
        .recover()
        .unwrap();
    p2.register_servlet(search_servlet());
    // The page is stale until the first post-recovery sync point…
    assert_eq!(p2.stale_pages().len(), 1);
    let report = p2.sync_point().unwrap();
    assert_eq!(report.ejected, 1, "replayed tail ejects the affected page");
    // …and never after it.
    assert!(p2.stale_pages().is_empty());
    assert!(p2.request(&req(30000)).response.body.contains("Camry"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_interval_is_configurable() {
    let run = |interval: u64, syncs: u64| -> u64 {
        let dir = temp_dir();
        let db = shared(example_db());
        let p = CachePortal::builder_shared(db)
            .durable(&dir)
            .checkpoint_interval(interval)
            .build()
            .unwrap();
        p.register_servlet(search_servlet());
        p.request(&req(20000));
        for _ in 0..syncs {
            p.sync_point().unwrap();
        }
        let snap = p.metrics_snapshot();
        let checkpoints = snap["metrics"]["counters"]["durable.checkpoints"]
            .as_u64()
            .unwrap_or(0);
        std::fs::remove_dir_all(&dir).unwrap();
        checkpoints
    };
    assert_eq!(run(1, 4), 4, "interval 1 snapshots every sync");
    assert_eq!(run(2, 4), 2, "interval 2 snapshots every other sync");
    assert_eq!(run(100, 4), 0, "interval above the sync count never snapshots");
}

#[test]
fn recovery_survives_repeated_crashes() {
    let dir = temp_dir();
    let db = shared(example_db());
    let mut cache = None;
    let mut prices = vec![19000, 26000, 40000];
    for round in 0..3 {
        let builder = CachePortal::builder_shared(db.clone())
            .durable(&dir)
            .checkpoint_interval(2);
        let builder = match cache.take() {
            Some(c) => builder.surviving_cache(c),
            None => builder,
        };
        let p = if round == 0 {
            builder.build().unwrap()
        } else {
            builder.recover().unwrap()
        };
        p.register_servlet(search_servlet());
        for price in &prices {
            p.request(&req(*price));
        }
        p.sync_point().unwrap();
        p.update(&format!(
            "UPDATE Car SET price = {} WHERE model = 'Avalon'",
            24000 + round * 100
        ))
        .unwrap();
        p.sync_point().unwrap();
        assert!(p.stale_pages().is_empty(), "round {round} went stale");
        prices.push(21000 + round * 1000);
        cache = Some(p.page_cache().clone());
        // crash at end of round
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

//! Crash-recovery integration tests: a portal journals its QI/URL map,
//! page origins, and sync cursor to a durable directory; "crashing" drops
//! the portal (the simulated DBMS process and, optionally, the page cache
//! survive) and `recover()` rebuilds it from disk.
//!
//! The safety property under test: after recovery plus one sync point the
//! freshness oracle finds **zero** stale pages, with any uncertainty
//! resolved by conservative ejection (recovery-gap), never by serving
//! stale content.

use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::web::{shared, HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::{CachePortal, Served};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "cp-recovery-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn example_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT, INDEX(model))")
        .unwrap();
    db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT, INDEX(model))")
        .unwrap();
    db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',25000), ('Honda','Civic',18000)")
        .unwrap();
    db.execute("INSERT INTO Mileage VALUES ('Avalon', 28.0), ('Civic', 36.5)")
        .unwrap();
    db
}

fn search_servlet() -> Arc<dyn cacheportal::web::Servlet> {
    Arc::new(SqlServlet::new(
        ServletSpec::new("carSearch").with_key_get_params(&["maxprice"]),
        "Car search",
        vec![QueryTemplate::new(
            "SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage \
             WHERE Car.model = Mileage.model AND Car.price < $1",
            vec![ParamSource::Get("maxprice".into(), ColType::Int)],
        )],
    ))
}

fn req(maxprice: i64) -> HttpRequest {
    HttpRequest::get(
        "shop.example.com",
        "/carSearch",
        &[("maxprice", &maxprice.to_string())],
    )
}

#[test]
fn recovery_restores_map_origins_and_cursor() {
    let dir = temp_dir();
    let db = shared(example_db());
    let p = CachePortal::builder_shared(db.clone())
        .durable(&dir)
        .build()
        .unwrap();
    p.register_servlet(search_servlet());
    assert_eq!(p.request(&req(20000)).served, Served::Generated);
    assert_eq!(p.request(&req(30000)).served, Served::Generated);
    p.sync_point().unwrap(); // map rows + origins + cursor now durable
    let cache = p.page_cache().clone();
    let map_len = p.qi_url_map().len();
    drop(p); // crash

    let p2 = CachePortal::builder_shared(db)
        .durable(&dir)
        .surviving_cache(cache)
        .recover()
        .unwrap();
    p2.register_servlet(search_servlet());
    let stats = p2.recovery_stats().expect("built via recover()").clone();
    assert_eq!(stats.gap_ejected, 0, "everything was durable before the crash");
    assert_eq!(stats.map_entries, map_len);
    assert_eq!(stats.origins, 2);
    assert_eq!(stats.resumed_sync_seq, 1);

    // Both pages survived and are still fresh.
    assert!(p2.stale_pages().is_empty());
    assert_eq!(p2.request(&req(20000)).served, Served::CacheHit);
    assert_eq!(p2.request(&req(30000)).served, Served::CacheHit);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gap_admissions_are_conservatively_ejected() {
    let dir = temp_dir();
    let db = shared(example_db());
    let p = CachePortal::builder_shared(db.clone())
        .durable(&dir)
        .build()
        .unwrap();
    p.register_servlet(search_servlet());
    p.request(&req(20000));
    p.sync_point().unwrap(); // page A durable
    p.request(&req(30000)); // page B admitted, NOT yet durable
    let cache = p.page_cache().clone();
    let key_a = p.request(&req(20000)).key.unwrap();
    let key_b = p.request(&req(30000)).key.unwrap();
    drop(p); // crash before the sync that would persist B's origin

    let p2 = CachePortal::builder_shared(db)
        .durable(&dir)
        .surviving_cache(cache.clone())
        .recover()
        .unwrap();
    p2.register_servlet(search_servlet());
    let stats = p2.recovery_stats().unwrap().clone();
    assert_eq!(stats.gap_ejected, 1, "B was admitted in the durability gap");
    assert!(cache.contains(&key_a), "durable page survives");
    assert!(!cache.contains(&key_b), "gap page conservatively ejected");

    // The gap eject carries recovery-gap provenance.
    let doc = p2.explain_invalidation(key_b.as_str());
    assert!(
        serde_json::to_string(&doc).unwrap().contains("recovery-gap"),
        "provenance must name the recovery gap: {doc:?}"
    );

    // Health remembers the recovery and the gap ejects.
    let h = p2.obs().health.snapshot();
    assert_eq!(h.recoveries, 1);
    assert_eq!(h.recovery_gap_ejects, 1);

    assert!(p2.stale_pages().is_empty());
    assert_eq!(p2.request(&req(30000)).served, Served::Generated);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unsynced_updates_are_reanalyzed_after_recovery() {
    let dir = temp_dir();
    let db = shared(example_db());
    let p = CachePortal::builder_shared(db.clone())
        .durable(&dir)
        .build()
        .unwrap();
    p.register_servlet(search_servlet());
    p.request(&req(30000));
    p.sync_point().unwrap();
    // Updates land in the shared log; the portal crashes before the sync
    // point that would process them (cursor on disk predates them).
    p.update("INSERT INTO Mileage VALUES ('Camry', 30.0)").unwrap();
    p.update("INSERT INTO Car VALUES ('Toyota','Camry',22000)").unwrap();
    let cache = p.page_cache().clone();
    drop(p);

    let p2 = CachePortal::builder_shared(db)
        .durable(&dir)
        .surviving_cache(cache)
        .recover()
        .unwrap();
    p2.register_servlet(search_servlet());
    // The page is stale until the first post-recovery sync point…
    assert_eq!(p2.stale_pages().len(), 1);
    let report = p2.sync_point().unwrap();
    assert_eq!(report.ejected, 1, "replayed tail ejects the affected page");
    // …and never after it.
    assert!(p2.stale_pages().is_empty());
    assert!(p2.request(&req(30000)).response.body.contains("Camry"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_interval_is_configurable() {
    let run = |interval: u64, syncs: u64| -> u64 {
        let dir = temp_dir();
        let db = shared(example_db());
        let p = CachePortal::builder_shared(db)
            .durable(&dir)
            .checkpoint_interval(interval)
            .build()
            .unwrap();
        p.register_servlet(search_servlet());
        p.request(&req(20000));
        for _ in 0..syncs {
            p.sync_point().unwrap();
        }
        let snap = p.metrics_snapshot();
        let checkpoints = snap["metrics"]["counters"]["durable.checkpoints"]
            .as_u64()
            .unwrap_or(0);
        std::fs::remove_dir_all(&dir).unwrap();
        checkpoints
    };
    assert_eq!(run(1, 4), 4, "interval 1 snapshots every sync");
    assert_eq!(run(2, 4), 2, "interval 2 snapshots every other sync");
    assert_eq!(run(100, 4), 0, "interval above the sync count never snapshots");
}

/// Crash the invalidator *between* an edge's ack and the journal persist:
/// the edge has already applied an eject batch the durable marks know
/// nothing about. Recovery must replay that delivery (at-least-once), and
/// the edge must absorb the replay idempotently — no staleness, and the
/// durability-gap admission carries recovery-gap provenance.
#[test]
fn edge_ack_ahead_of_journal_is_replayed_and_absorbed() {
    let dir = temp_dir();
    let db = shared(example_db());
    let p = CachePortal::builder_shared(db.clone())
        .durable(&dir)
        .build()
        .unwrap();
    p.register_servlet(search_servlet());
    let edge = Arc::new(cacheportal::cache::PageCache::new(
        cacheportal::cache::PageCacheConfig::default(),
    ));
    p.register_edge_cache(edge.clone());

    let key_a = p.request(&req(20000)).key.unwrap();
    // B's predicate (price < 15000) matches neither the old nor the new
    // Civic price, so the update below leaves it fresh.
    let key_b = p.request(&req(15000)).key.unwrap();
    p.sync_point().unwrap(); // marks durable: edge acked batch 1 (heartbeat)
    assert!(edge.contains(&key_a) && edge.contains(&key_b), "admissions mirrored");

    // An update makes page A stale; page C lands in the durability gap.
    p.update("UPDATE Car SET price = 17000 WHERE model = 'Civic'").unwrap();
    let key_c = p.request(&req(40000)).key.unwrap();
    // Hand-run the *delivery* half of the next sync: publish the eject of A
    // as batch 2 and deliver it, exactly what sync 2 would do before its
    // persist step. The edge ejects A and acks seq 2 — and then the
    // invalidator dies before the journal learns any of it.
    p.bus().publish(2, 1_000_000, vec![key_a.clone()]);
    p.bus().deliver_all(1_000_000);
    assert!(!edge.contains(&key_a), "edge applied the eject pre-crash");
    assert_eq!(p.bus().edge_rows()[0].acked, 2, "ack outran the journal");
    let cache = p.page_cache().clone();
    drop(p); // crash between edge-ack and journal persist

    let p2 = CachePortal::builder_shared(db)
        .durable(&dir)
        .surviving_cache(cache)
        .recover()
        .unwrap();
    p2.register_servlet(search_servlet());
    p2.register_edge_cache(edge.clone());
    // The durable mark (acked 1) is current w.r.t. the persisted frontier,
    // so the edge keeps pre-mark pages and flushes the gap admission.
    assert!(edge.contains(&key_b), "pre-mark page survives the rejoin");
    assert!(!edge.contains(&key_c), "gap admission flushed at rejoin");
    assert!(
        serde_json::to_string(&p2.explain_invalidation(key_c.as_str()))
            .unwrap()
            .contains("recovery-gap"),
        "gap eject must carry recovery-gap provenance"
    );

    // The un-truncated window replays: the eject of A is republished under
    // the restored frontier and redelivered to the edge, whose cache
    // already did the work — the replay must be absorbed, not double-done.
    let report = p2.sync_point().unwrap();
    assert!(report.ejected >= 1, "replayed window re-ejects the stale page");
    let ep = &p2.bus().endpoints()[0];
    assert_eq!(ep.counters().applied_batches, 1, "replayed batch re-applied");
    assert_eq!(
        ep.counters().ejected_pages,
        0,
        "the edge already ejected A pre-crash; the replay is a no-op"
    );
    let row = &p2.bus().edge_rows()[0];
    assert_eq!(row.lag, 0, "edge caught back up to the watermark");

    // At-least-once also means raw wire duplicates: re-applying the same
    // batch seq is absorbed without touching the cache.
    let before = edge.len();
    let ack = ep.apply(&cacheportal::bus::EjectBatch {
        seq: row.acked,
        sync_seq: 2,
        ts: 1_000_001,
        pages: vec![key_a.clone()],
    });
    assert_eq!(ack.applied_seq, row.acked, "duplicate re-acks the watermark");
    assert_eq!(ep.counters().absorbed_duplicates, 1);
    assert_eq!(edge.len(), before, "duplicate leaves the cache untouched");

    assert!(p2.stale_pages().is_empty(), "no staleness anywhere after replay");
    assert!(p2.request(&req(20000)).response.body.contains("17000"));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// An edge partitioned across the crash: its durable mark is older than the
/// persisted frontier, and the batches in between died with the
/// invalidator's retained buffer. The rejoin must rebase the edge — full
/// conservative flush, watermark jumped to the frontier — never replaying
/// a gap it cannot fill.
#[test]
fn partitioned_edge_across_a_crash_rejoins_by_rebase() {
    let dir = temp_dir();
    let db = shared(example_db());
    let p = CachePortal::builder_shared(db.clone())
        .durable(&dir)
        .build()
        .unwrap();
    p.register_servlet(search_servlet());
    let edge = Arc::new(cacheportal::cache::PageCache::new(
        cacheportal::cache::PageCacheConfig::default(),
    ));
    p.register_edge_cache(edge.clone());
    p.request(&req(20000));
    p.request(&req(30000));
    p.sync_point().unwrap(); // edge acked batch 1

    // Partition the edge, then push two synced updates past it. Each sync
    // persists marks: acked stays 1 while the frontier advances.
    p.partition_edge(0, true);
    for (i, price) in [23000i64, 24000].iter().enumerate() {
        p.update(&format!("UPDATE Car SET price = {price} WHERE model = 'Avalon'"))
            .unwrap();
        p.sync_point().unwrap();
        assert!(edge.is_empty(), "missed round {i}: edge self-ejected to empty");
    }
    let frontier = p.bus().latest_seq();
    assert!(frontier > 1, "syncs advanced the frontier past the edge's mark");
    let cache = p.page_cache().clone();
    drop(p); // crash: the retained batches (2..=frontier) die here

    let p2 = CachePortal::builder_shared(db)
        .durable(&dir)
        .surviving_cache(cache)
        .recover()
        .unwrap();
    p2.register_servlet(search_servlet());
    p2.register_edge_cache(edge.clone());
    let row = &p2.bus().edge_rows()[0];
    assert_eq!(
        row.acked, frontier,
        "mark older than the frontier: edge rebased, not left waiting for dead batches"
    );
    assert_eq!(row.lag, 0);
    assert!(edge.is_empty(), "rebase is a full conservative flush");
    assert!(!row.partitioned, "rejoin clears the partition mark");

    // The rebased edge participates normally again.
    p2.sync_point().unwrap();
    let key = p2.request(&req(30000)).key.unwrap();
    assert!(edge.contains(&key), "admissions mirror to the rebased edge");
    assert!(p2.stale_pages().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_survives_repeated_crashes() {
    let dir = temp_dir();
    let db = shared(example_db());
    let mut cache = None;
    let mut prices = vec![19000, 26000, 40000];
    for round in 0..3 {
        let builder = CachePortal::builder_shared(db.clone())
            .durable(&dir)
            .checkpoint_interval(2);
        let builder = match cache.take() {
            Some(c) => builder.surviving_cache(c),
            None => builder,
        };
        let p = if round == 0 {
            builder.build().unwrap()
        } else {
            builder.recover().unwrap()
        };
        p.register_servlet(search_servlet());
        for price in &prices {
            p.request(&req(*price));
        }
        p.sync_point().unwrap();
        p.update(&format!(
            "UPDATE Car SET price = {} WHERE model = 'Avalon'",
            24000 + round * 100
        ))
        .unwrap();
        p.sync_point().unwrap();
        assert!(p.stale_pages().is_empty(), "round {round} went stale");
        prices.push(21000 + round * 1000);
        cache = Some(p.page_cache().clone());
        // crash at end of round
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

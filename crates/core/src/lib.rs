#![warn(missing_docs)]

//! # cacheportal
//!
//! A from-scratch Rust reproduction of **CachePortal** — *"Enabling Dynamic
//! Content Caching for Database-Driven Web Sites"* (Candan, Li, Luo, Hsiung,
//! Agrawal; ACM SIGMOD 2001).
//!
//! CachePortal makes dynamically generated web pages cacheable by pairing a
//! **sniffer** (which learns, from request and query logs, which pages
//! depend on which query instances) with an **invalidator** (which watches
//! the database update log and ejects exactly the affected pages).
//!
//! This crate is the facade: [`CachePortal`] wires the database engine, the
//! web/application servers, the page cache, the sniffer, and the invalidator
//! into one functional system.
//!
//! ```
//! use cacheportal::{CachePortal, Served};
//! use cacheportal::db::Database;
//! use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
//! use cacheportal::db::schema::ColType;
//! use std::sync::Arc;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT)").unwrap();
//! db.execute("INSERT INTO Car VALUES ('Honda','Civic',18000)").unwrap();
//!
//! let portal = CachePortal::builder(db).build().unwrap();
//! portal.register_servlet(Arc::new(SqlServlet::new(
//!     ServletSpec::new("cars").with_key_get_params(&["maxprice"]),
//!     "Cars",
//!     vec![QueryTemplate::new(
//!         "SELECT * FROM Car WHERE price < $1",
//!         vec![ParamSource::Get("maxprice".into(), ColType::Int)],
//!     )],
//! )));
//!
//! let req = HttpRequest::get("shop", "/cars", &[("maxprice", "20000")]);
//! assert_eq!(portal.request(&req).served, Served::Generated);
//! assert_eq!(portal.request(&req).served, Served::CacheHit);
//!
//! // A relevant update reaches the cache at the next sync point.
//! portal.update("INSERT INTO Car VALUES ('Kia','Rio',12000)").unwrap();
//! portal.sync_point().unwrap();
//! assert_eq!(portal.request(&req).served, Served::Generated);
//! assert!(portal.request(&req).response.body.contains("Rio"));
//! ```

pub mod cluster;
pub mod durability;
pub mod system;

pub use cluster::CachePortalCluster;
pub use durability::{
    CursorRecord, Durability, DurableRecord, OriginRecord, PersistOutcome, RecoveredState,
    SnapshotDoc,
};
pub use system::{CachePortal, CachePortalBuilder, RecoveryStats, RequestOutcome, Served, SyncReport};

/// Re-export: the relational engine substrate.
pub use cacheportal_db as db;
/// Re-export: the HTTP/servlet substrate.
pub use cacheportal_web as web;
/// Re-export: page and data caches.
pub use cacheportal_cache as cache;
/// Re-export: the sniffer.
pub use cacheportal_sniffer as sniffer;
/// Re-export: the invalidator.
pub use cacheportal_invalidator as invalidator;
/// Re-export: the observability layer (metrics, tracing, staleness probe).
pub use cacheportal_obs as obs;
/// Re-export: the networked invalidation bus (edge delivery, watermarks).
pub use cacheportal_bus as bus;

//! Multi-node deployment (paper Figure 4): a farm of web/application
//! servers behind a load balancer, one shared DBMS, one dynamic web-page
//! cache in front — and per-node sniffer logs.
//!
//! The sniffer design requires the request/query interval join to happen
//! *per server* (queries from node A must never be attributed to a request
//! on node B just because their intervals overlap), so each node carries
//! its own request log, query log, and mapper; all mappers feed one shared
//! QI/URL map, which one invalidator consumes.

use cacheportal_bus::{BusConfig, InvalidationBus, MemoryTransport};
use cacheportal_cache::{PageCache, PageCacheConfig};
use cacheportal_db::{Database, DbResult, FaultPlan};
use cacheportal_invalidator::{Invalidator, InvalidatorConfig};
use cacheportal_sniffer::{LoggedConnection, Mapper, QiUrlMap, QueryLog, RequestLog};
use cacheportal_web::{
    shared, AppServer, AppServerConfig, CacheControl, Clock, ConnectionFactory, ConnectionPool,
    DbConnection, HttpRequest, HttpResponse, ManualClock, PageKey, Servlet, SharedDb,
};
use crate::system::{RequestOutcome, Served, SyncReport};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One web/application server node with its sniffer instruments.
struct Node {
    app: Arc<AppServer>,
    mapper: Mutex<Mapper>,
}

/// A Configuration III deployment with `n` server nodes.
pub struct CachePortalCluster {
    db: SharedDb,
    clock: Arc<ManualClock>,
    page_cache: Arc<PageCache>,
    map: Arc<QiUrlMap>,
    invalidator: Mutex<Invalidator>,
    nodes: Vec<Node>,
    rr: AtomicUsize,
    origins: Mutex<HashMap<PageKey, HttpRequest>>,
    /// Pages admitted since the previous sync point — the mid-window
    /// netting guard's input (see `CachePortal::sync_point`).
    admitted_since_sync: Mutex<Vec<PageKey>>,
    /// Invalidation bus fanning ejects out to registered edge caches —
    /// same contract as the single-node system (see `cacheportal-bus`).
    bus: Arc<InvalidationBus>,
    /// Sync-point ordinal (stamped onto published bus batches).
    sync_seq: AtomicU64,
}

impl CachePortalCluster {
    /// Build a cluster of `nodes` identical servers over `db`.
    pub fn new(
        db: Database,
        nodes: usize,
        cache_config: PageCacheConfig,
        invalidator_config: InvalidatorConfig,
    ) -> DbResult<Self> {
        assert!(nodes > 0, "a cluster needs at least one node");
        let mut invalidator = Invalidator::new(invalidator_config);
        invalidator.start_from(db.high_water());
        let db = shared(db);
        let clock = ManualClock::new();
        let map = Arc::new(QiUrlMap::new());

        let mut built = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let query_log = QueryLog::new();
            let factory: ConnectionFactory = {
                let db = db.clone();
                let log = query_log.clone();
                let clock: Arc<dyn Clock> = clock.clone();
                Arc::new(move || {
                    Box::new(LoggedConnection::new(
                        DbConnection::new(db.clone()),
                        log.clone(),
                        clock.clone(),
                    ))
                })
            };
            let app = Arc::new(AppServer::new(
                ConnectionPool::new(factory, 8),
                clock.clone(),
                AppServerConfig {
                    rewrite_cache_control: true,
                    cache_owner: "cacheportal".to_string(),
                },
            ));
            let request_log = Arc::new(RequestLog::new());
            app.set_observer(request_log.clone());
            let mapper = Mapper::new(request_log, query_log, map.clone());
            built.push(Node {
                app,
                mapper: Mutex::new(mapper),
            });
        }

        Ok(CachePortalCluster {
            db,
            clock,
            page_cache: Arc::new(PageCache::new(cache_config)),
            map,
            invalidator: Mutex::new(invalidator),
            nodes: built,
            rr: AtomicUsize::new(0),
            origins: Mutex::new(HashMap::new()),
            admitted_since_sync: Mutex::new(Vec::new()),
            bus: Arc::new(InvalidationBus::new(
                BusConfig::default(),
                Arc::new(MemoryTransport::new(FaultPlan::none())),
                FaultPlan::none(),
            )),
            sync_seq: AtomicU64::new(0),
        })
    }

    /// Number of server nodes.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The shared database handle.
    pub fn db(&self) -> &SharedDb {
        &self.db
    }

    /// The front web-page cache.
    pub fn page_cache(&self) -> &Arc<PageCache> {
        &self.page_cache
    }

    /// The shared QI/URL map.
    pub fn qi_url_map(&self) -> &Arc<QiUrlMap> {
        &self.map
    }

    /// Per-node requests-served counters (load-balancing diagnostics).
    pub fn node_loads(&self) -> Vec<u64> {
        self.nodes.iter().map(|n| n.app.requests_served()).collect()
    }

    /// Register a servlet on every node (the farm is homogeneous).
    pub fn register_servlet(&self, servlet: Arc<dyn Servlet>) {
        for node in &self.nodes {
            node.app.register(servlet.clone());
        }
    }

    /// Register an edge cache to receive the cluster's eject messages over
    /// the invalidation bus. Returns the edge's registration index.
    pub fn register_edge_cache(&self, cache: Arc<PageCache>) -> usize {
        let name = format!("edge-{}", self.bus.edge_count());
        self.bus.register_edge(&name, cache, self.clock.now_micros())
    }

    /// The cluster's invalidation bus (watermarks, delivery stats).
    pub fn bus(&self) -> &Arc<InvalidationBus> {
        &self.bus
    }

    /// Serve one request: front cache first, then round-robin to a node.
    pub fn request(&self, req: &HttpRequest) -> RequestOutcome {
        let now = self.clock.tick();
        let key = self.nodes[0]
            .app
            .servlet_for(&req.path)
            .map(|s| PageKey::for_request(req, s.spec()));

        if let Some(key) = &key {
            if let Some(body) = self.page_cache.get(key, now) {
                return RequestOutcome {
                    response: HttpResponse::ok(
                        body,
                        CacheControl::PrivateOwner("cacheportal".into()),
                    ),
                    served: Served::CacheHit,
                    key: Some(key.clone()),
                };
            }
        }

        // See `CachePortal::request` for the admission-control rationale.
        let gen_start_lsn = self.db.read().high_water();
        let node = &self.nodes[self.rr.fetch_add(1, Ordering::Relaxed) % self.nodes.len()];
        let response = node.app.handle(req);
        if let Some(key) = &key {
            if response.status == cacheportal_web::Status::Ok
                && response.cache_control.cacheable_by("cacheportal")
            {
                let inv = self.invalidator.lock();
                if inv.consumed_lsn() <= gen_start_lsn {
                    let now = self.clock.tick();
                    self.page_cache
                        .put(key.clone(), response.body.clone(), now);
                    self.origins.lock().insert(key.clone(), req.clone());
                    self.admitted_since_sync.lock().push(key.clone());
                }
            }
        }
        RequestOutcome {
            response,
            served: Served::Generated,
            key,
        }
    }

    /// Backend update.
    pub fn update(&self, sql: &str) -> DbResult<usize> {
        Ok(self.db.write().execute(sql)?.affected())
    }

    /// One synchronization point: run every node's mapper, then the shared
    /// invalidator, then eject.
    pub fn sync_point(&self) -> DbResult<SyncReport> {
        // Admission control in `request` serializes against this lock; the
        // mappers must drain inside the critical section (see system.rs).
        let mut invalidator = self.invalidator.lock();
        let mut mapper_report = cacheportal_sniffer::MapperReport::default();
        for node in &self.nodes {
            let r = node.mapper.lock().run_once();
            mapper_report.mapped += r.mapped;
            mapper_report.ambiguous += r.ambiguous;
            mapper_report.retained += r.retained;
            mapper_report.dropped += r.dropped;
            mapper_report.non_select += r.non_select;
            mapper_report.unparseable += r.unparseable;
        }
        let admitted = std::mem::take(&mut *self.admitted_since_sync.lock());
        let mut invalidation = {
            let mut db = self.db.write();
            let report = invalidator.run_sync_point(&db, &self.map)?;
            let consumed = invalidator.consumed_lsn();
            db.update_log_mut().truncate(consumed);
            report
        };
        // Mid-window netting guard — same soundness argument as the
        // single-node portal: a netted page admitted inside the window may
        // embed an intermediate state, so it is ejected conservatively.
        let netting_guard_ejected = if !invalidation.netted_pages.is_empty() {
            let admitted_set: std::collections::HashSet<&PageKey> = admitted.iter().collect();
            let mut added = 0usize;
            for key in &invalidation.netted_pages {
                if admitted_set.contains(key) && invalidation.pages.insert(key.clone()) {
                    added += 1;
                }
            }
            added
        } else {
            0
        };
        let ejected = self.page_cache.invalidate(invalidation.pages.iter());
        // Fan the ejects out over the bus inside the critical section, same
        // ordering contract as the single-node system: edges renew before
        // any admission can interleave.
        let sync_seq = self.sync_seq.fetch_add(1, Ordering::Relaxed);
        let mut bus_pages: Vec<PageKey> = invalidation.pages.iter().cloned().collect();
        bus_pages.sort();
        self.bus.publish(sync_seq, self.clock.now_micros(), bus_pages);
        self.bus.deliver_all(self.clock.now_micros());
        drop(invalidator);
        if !invalidation.pages.is_empty() {
            let mut origins = self.origins.lock();
            for p in &invalidation.pages {
                origins.remove(p);
            }
        }
        Ok(SyncReport {
            mapper: mapper_report,
            invalidation,
            ejected,
            fault_ejected: 0,
            netting_guard_ejected,
        })
    }

    /// Freshness oracle — identical contract to the single-node system,
    /// covering the front cache and every edge cache on the bus.
    pub fn stale_pages(&self) -> Vec<PageKey> {
        let origins = self.origins.lock();
        let mut caches: Vec<Arc<PageCache>> = vec![self.page_cache.clone()];
        caches.extend(self.bus.edge_caches());
        let mut stale = Vec::new();
        let mut seen: std::collections::HashSet<PageKey> = std::collections::HashSet::new();
        for cache in &caches {
            for key in cache.keys() {
                let Some(req) = origins.get(&key) else {
                    if seen.insert(key.clone()) {
                        stale.push(key);
                    }
                    continue;
                };
                let Some(servlet) = self.nodes[0].app.servlet_for(&req.path) else {
                    if seen.insert(key.clone()) {
                        stale.push(key);
                    }
                    continue;
                };
                let mut conn = DbConnection::new(self.db.clone());
                match servlet.handle(req, &mut conn) {
                    Ok(fresh) => {
                        let cached = cache.get(&key, self.clock.now_micros());
                        if cached.as_deref() != Some(fresh.as_str())
                            && seen.insert(key.clone())
                        {
                            stale.push(key);
                        }
                    }
                    Err(_) => {
                        if seen.insert(key.clone()) {
                            stale.push(key);
                        }
                    }
                }
            }
        }
        stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cacheportal_db::schema::ColType;
    use cacheportal_web::{ParamSource, QueryTemplate, ServletSpec, SqlServlet};

    fn cluster(nodes: usize) -> CachePortalCluster {
        let mut db = Database::new();
        db.execute("CREATE TABLE items (grp INT, val INT, INDEX(grp))").unwrap();
        for i in 0..40 {
            db.insert_row("items", vec![(i % 4).into(), i.into()])
                .unwrap();
        }
        let c = CachePortalCluster::new(
            db,
            nodes,
            PageCacheConfig::default(),
            InvalidatorConfig::default(),
        )
        .unwrap();
        c.register_servlet(Arc::new(SqlServlet::new(
            ServletSpec::new("items").with_key_get_params(&["grp"]),
            "Items",
            vec![QueryTemplate::new(
                "SELECT val FROM items WHERE grp = $1 ORDER BY val",
                vec![ParamSource::Get("grp".into(), ColType::Int)],
            )],
        )));
        c
    }

    fn req(grp: i64) -> HttpRequest {
        HttpRequest::get("farm", "/items", &[("grp", &grp.to_string())])
    }

    #[test]
    fn round_robin_spreads_misses_across_nodes() {
        let c = cluster(4);
        // 8 distinct pages → 8 misses spread over 4 nodes… but only 4
        // distinct groups exist; use repeated unique grps beyond cache? Use
        // distinct grp values 0..4 then eject to force more misses.
        for g in 0..4 {
            c.request(&req(g));
        }
        assert_eq!(c.node_loads(), vec![1, 1, 1, 1]);
        // Hits bypass the nodes entirely.
        for g in 0..4 {
            assert_eq!(c.request(&req(g)).served, Served::CacheHit);
        }
        assert_eq!(c.node_loads(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn pages_generated_on_any_node_are_invalidated() {
        let c = cluster(3);
        for g in 0..3 {
            assert_eq!(c.request(&req(g)).served, Served::Generated);
        }
        c.sync_point().unwrap();
        assert_eq!(c.qi_url_map().len(), 3, "all nodes' mappers fed the map");

        // Update touching grp 1 only — regardless of which node built it.
        c.update("INSERT INTO items VALUES (1, 999)").unwrap();
        let r = c.sync_point().unwrap();
        assert_eq!(r.ejected, 1);
        assert_eq!(c.request(&req(0)).served, Served::CacheHit);
        assert_eq!(c.request(&req(2)).served, Served::CacheHit);
        let fresh = c.request(&req(1));
        assert_eq!(fresh.served, Served::Generated);
        assert!(fresh.response.body.contains("999"));
        assert!(c.stale_pages().is_empty());
    }

    #[test]
    fn per_node_logs_do_not_cross_contaminate() {
        // Two nodes serving different pages with interleaved timestamps:
        // each query must map to its own node's request only.
        let c = cluster(2);
        c.request(&req(0)); // node 0
        c.request(&req(1)); // node 1
        let r = c.sync_point().unwrap();
        assert_eq!(r.mapper.mapped, 2);
        assert_eq!(
            r.mapper.ambiguous, 0,
            "per-node logs keep the interval join unambiguous"
        );
        let rows = c.qi_url_map().all();
        for row in &rows {
            let grp = if row.sql.contains("grp = 0") { 0 } else { 1 };
            assert!(
                row.page_key.as_str().contains(&format!("grp={grp}")),
                "query mapped to the wrong page: {row:?}"
            );
        }
    }

    #[test]
    fn cluster_edge_caches_receive_ejects_over_the_bus() {
        let c = cluster(2);
        let edge = Arc::new(PageCache::new(PageCacheConfig::default()));
        c.register_edge_cache(edge.clone());

        let out = c.request(&req(1));
        let key = out.key.clone().unwrap();
        edge.put(key.clone(), out.response.body.clone(), 0);
        c.sync_point().unwrap();
        assert!(edge.contains(&key), "heartbeat round leaves the page alone");

        c.update("INSERT INTO items VALUES (1, 999)").unwrap();
        c.sync_point().unwrap();
        assert!(!edge.contains(&key), "eject fanned out over the bus");
        assert_eq!(c.bus().edge_rows()[0].lag, 0);
        assert!(c.stale_pages().is_empty());
    }

    #[test]
    fn single_node_cluster_matches_single_system_behaviour() {
        let c = cluster(1);
        c.request(&req(2));
        c.sync_point().unwrap();
        c.update("DELETE FROM items WHERE grp = 2").unwrap();
        c.sync_point().unwrap();
        let out = c.request(&req(2));
        assert_eq!(out.served, Served::Generated);
        assert!(c.stale_pages().is_empty());
    }
}

//! Crash-safe persistence of the portal's recoverable state.
//!
//! The portal's in-memory state splits into two halves. The *derivable*
//! half (page cache contents, maintained indexes, policy statistics) can
//! always be rebuilt or safely discarded. The *load-bearing* half cannot:
//!
//! * the sniffer's **QI/URL map** — losing a row means a cached page whose
//!   dependencies are unknown, i.e. a page that can silently go stale;
//! * each cached page's **origin request** — the freshness oracle and the
//!   recovery gap scan both need to know which request produced a page;
//! * the invalidator's **sync cursor** — the last-processed LSN (claiming
//!   too much means unprocessed updates are skipped: staleness), the sync
//!   ordinal, and per-relation delta-group watermarks.
//!
//! This module journals that half through `cacheportal-durable`'s
//! checksummed WAL with periodic snapshot compaction. The ordering
//! invariant that keeps crashes sound lives in `CachePortal::sync_point`:
//! **ejects are delivered before the cursor is made durable, and the
//! cursor is durable before the update log is truncated.** A crash in any
//! window therefore re-processes (and re-ejects) a suffix of updates —
//! pure over-invalidation, never staleness.
//!
//! Record and snapshot payloads are JSON (versioned by the durable layer's
//! frame format); WAL replay is idempotent — map rows deduplicate, origin
//! rows are last-write-wins, and the cursor takes the maximum.

use cacheportal_sniffer::{QiUrlEntry, QiUrlMap};
use cacheportal_web::{HttpRequest, PageKey};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

/// A cached page's origin: the request whose regeneration proves (or
/// disproves) freshness.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OriginRecord {
    /// The page's cache key.
    pub page: PageKey,
    /// The request that generated it.
    pub request: HttpRequest,
}

/// The invalidator's durable position in the update stream.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CursorRecord {
    /// One past the last update-log LSN fully processed (ejects delivered).
    pub consumed: u64,
    /// Sync-point ordinal of the portal (continues across restarts; also
    /// the poll-flap fault epoch, so burst phase survives a crash).
    pub sync_seq: u64,
    /// Per-relation high-water marks: the largest LSN consumed for each
    /// table, from the last sync point's delta groups.
    pub watermarks: Vec<(String, u64)>,
    /// Invalidation-bus sequence frontier: the next eject-batch seq the
    /// recovered bus will assign (monotone across restarts).
    pub bus_seq: u64,
    /// Per-edge bus delivery watermarks: `(edge, acked batch seq, acked
    /// timestamp)`. A recovered invalidator restores these so a rejoining
    /// edge flushes exactly the pages admitted past its last acked mark —
    /// never re-opening a staleness window.
    pub edge_marks: Vec<(String, u64, u64)>,
}

/// One WAL frame's payload.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum DurableRecord {
    /// A new QI/URL map row.
    MapEntry(QiUrlEntry),
    /// A page admission's origin request.
    Origin(OriginRecord),
    /// The cursor after a completed sync point.
    Cursor(CursorRecord),
}

/// Snapshot payload: the full recoverable state at checkpoint time.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct SnapshotDoc {
    /// Every QI/URL map row.
    pub map: Vec<QiUrlEntry>,
    /// Every live cached page's origin.
    pub origins: Vec<OriginRecord>,
    /// The cursor as of the checkpoint.
    pub cursor: CursorRecord,
}

/// State reconstructed from disk by [`Durability::load`].
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// QI/URL rows, snapshot-then-WAL order (duplicates possible — the
    /// map's insert dedups).
    pub map_entries: Vec<QiUrlEntry>,
    /// Origins, last-write-wins per page.
    pub origins: HashMap<PageKey, HttpRequest>,
    /// The highest durable cursor.
    pub cursor: CursorRecord,
    /// Snapshot sequence number found, if any.
    pub snapshot_seq: Option<u64>,
    /// WAL frames replayed past the snapshot.
    pub wal_records: u64,
    /// Torn/corrupt tail bytes truncated during replay.
    pub torn_bytes: u64,
}

/// Counters one persist/checkpoint pass produced (folded into metrics by
/// the caller; this module never touches the registry directly).
#[derive(Debug, Default, Clone, Copy)]
pub struct PersistOutcome {
    /// WAL frames appended.
    pub appended: u64,
    /// Whether a checkpoint (snapshot + WAL reset) ran.
    pub checkpointed: bool,
    /// I/O errors swallowed (state possibly not durable — the caller must
    /// mark health).
    pub errors: u64,
}

/// The live durability pipeline owned by a portal.
pub struct Durability {
    dir: PathBuf,
    wal: cacheportal_durable::Wal,
    checkpoint_interval: u64,
    syncs_since_checkpoint: u64,
    /// QI/URL map rows with id below this are already durable.
    map_cursor: u64,
    /// Snapshot sequence for the next checkpoint.
    next_snapshot_seq: u64,
}

impl Durability {
    /// Open (or create) the durable directory and its WAL, continuing any
    /// existing journal. `checkpoint_interval` is the number of persisted
    /// sync points between snapshot compactions (minimum 1).
    pub fn open(dir: &Path, checkpoint_interval: u64) -> io::Result<Durability> {
        std::fs::create_dir_all(dir)?;
        let wal = cacheportal_durable::Wal::open(&cacheportal_durable::wal_path(dir))?;
        let next_snapshot_seq = cacheportal_durable::Checkpoint::read(dir)?
            .map(|(seq, _)| seq + 1)
            .unwrap_or(1);
        Ok(Durability {
            dir: dir.to_path_buf(),
            wal,
            checkpoint_interval: checkpoint_interval.max(1),
            syncs_since_checkpoint: 0,
            map_cursor: 0,
            next_snapshot_seq,
        })
    }

    /// The durable directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Raw WAL statistics (appends/bytes/syncs/resets) for metrics export.
    pub fn wal_stats(&self) -> cacheportal_durable::WalStats {
        self.wal.stats()
    }

    /// Mark every map row below `cursor` as already durable (recovery sets
    /// this to the recovered map's high id after its compacting checkpoint).
    pub fn set_map_cursor(&mut self, cursor: u64) {
        self.map_cursor = cursor;
    }

    /// Replay the durable directory into a [`RecoveredState`]. Missing
    /// files yield the empty state; torn WAL tails are truncated by the
    /// durable layer and reported, never mis-replayed. Unparseable JSON in
    /// an intact frame is an error — checksums passed, so it indicates a
    /// version mismatch rather than a crash artifact.
    pub fn load(dir: &Path) -> io::Result<RecoveredState> {
        let recovery = cacheportal_durable::Recovery::replay(dir)?;
        let mut state = RecoveredState {
            snapshot_seq: recovery.snapshot_seq,
            wal_records: recovery.wal_records.len() as u64,
            torn_bytes: recovery.wal_torn_bytes,
            ..RecoveredState::default()
        };
        if let Some(snapshot) = &recovery.snapshot {
            let text = std::str::from_utf8(snapshot)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            let doc: SnapshotDoc = serde_json::from_str(text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            state.map_entries = doc.map;
            for o in doc.origins {
                state.origins.insert(o.page, o.request);
            }
            state.cursor = doc.cursor;
        }
        for frame in &recovery.wal_records {
            let text = std::str::from_utf8(frame)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            let record: DurableRecord = serde_json::from_str(text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            match record {
                DurableRecord::MapEntry(e) => state.map_entries.push(e),
                DurableRecord::Origin(o) => {
                    state.origins.insert(o.page, o.request);
                }
                DurableRecord::Cursor(c) => {
                    // Idempotent replay: a crash between snapshot rename
                    // and WAL reset can leave older cursors behind — take
                    // the maximum, never step backwards.
                    if c.consumed >= state.cursor.consumed {
                        state.cursor = c;
                    }
                }
            }
        }
        Ok(state)
    }

    /// Persist one completed sync point: new QI/URL rows since the durable
    /// map cursor, the window's admissions' origins, and the new cursor —
    /// then fsync. Runs a checkpoint (full snapshot + WAL reset) every
    /// `checkpoint_interval` persisted syncs. I/O errors are counted, not
    /// propagated: the portal stays available, the caller flags health.
    pub fn persist_sync(
        &mut self,
        map: &QiUrlMap,
        new_origins: &[(PageKey, HttpRequest)],
        origins_full: &HashMap<PageKey, HttpRequest>,
        cursor: CursorRecord,
    ) -> PersistOutcome {
        let mut out = PersistOutcome::default();
        let (new_entries, next_cursor) = map.entries_since(self.map_cursor);
        for entry in new_entries {
            out.errors += self.append(&DurableRecord::MapEntry(entry), &mut out.appended);
        }
        self.map_cursor = next_cursor;
        for (page, request) in new_origins {
            out.errors += self.append(
                &DurableRecord::Origin(OriginRecord {
                    page: page.clone(),
                    request: request.clone(),
                }),
                &mut out.appended,
            );
        }
        out.errors += self.append(&DurableRecord::Cursor(cursor.clone()), &mut out.appended);
        if let Err(_e) = self.wal.sync() {
            out.errors += 1;
        }

        self.syncs_since_checkpoint += 1;
        if self.syncs_since_checkpoint >= self.checkpoint_interval {
            match self.checkpoint(map, origins_full, cursor) {
                Ok(()) => out.checkpointed = true,
                Err(_) => out.errors += 1,
            }
        }
        out
    }

    /// Write a full snapshot and reset the WAL. A crash between the
    /// snapshot rename and the WAL reset leaves snapshot + stale WAL tail:
    /// replay re-applies the tail on top, which is why records must be
    /// idempotent.
    pub fn checkpoint(
        &mut self,
        map: &QiUrlMap,
        origins_full: &HashMap<PageKey, HttpRequest>,
        cursor: CursorRecord,
    ) -> io::Result<()> {
        let mut origins: Vec<OriginRecord> = origins_full
            .iter()
            .map(|(page, request)| OriginRecord {
                page: page.clone(),
                request: request.clone(),
            })
            .collect();
        // HashMap order is nondeterministic; keep snapshots byte-stable.
        origins.sort_by(|a, b| a.page.cmp(&b.page));
        let doc = SnapshotDoc {
            map: map.all(),
            origins,
            cursor,
        };
        let payload = serde_json::to_string(&doc)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        cacheportal_durable::Checkpoint::write(&self.dir, self.next_snapshot_seq, payload.as_bytes())?;
        self.next_snapshot_seq += 1;
        self.wal.reset()?;
        self.syncs_since_checkpoint = 0;
        Ok(())
    }

    fn append(&mut self, record: &DurableRecord, appended: &mut u64) -> u64 {
        let payload = match serde_json::to_string(record) {
            Ok(p) => p,
            Err(_) => return 1,
        };
        match self.wal.append(payload.as_bytes()) {
            Ok(()) => {
                *appended += 1;
                0
            }
            Err(_) => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cp-core-durability-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn entry_map() -> QiUrlMap {
        let map = QiUrlMap::new();
        map.insert("SELECT 1".into(), PageKey::raw("p1"), "s".into());
        map.insert("SELECT 2".into(), PageKey::raw("p2"), "s".into());
        map
    }

    #[test]
    fn persist_then_load_round_trips() {
        let dir = temp_dir();
        let map = entry_map();
        let req = HttpRequest::get("h", "/s", &[("k", "v")]);
        let origins_full: HashMap<PageKey, HttpRequest> =
            [(PageKey::raw("p1"), req.clone())].into_iter().collect();
        let mut d = Durability::open(&dir, 100).unwrap();
        let out = d.persist_sync(
            &map,
            &[(PageKey::raw("p1"), req.clone())],
            &origins_full,
            CursorRecord {
                consumed: 7,
                sync_seq: 3,
                watermarks: vec![("car".into(), 6)],
                bus_seq: 5,
                edge_marks: vec![("edge-0".into(), 4, 99)],
            },
        );
        assert_eq!(out.errors, 0);
        assert!(!out.checkpointed);
        assert_eq!(out.appended, 4, "2 map rows + 1 origin + 1 cursor");
        drop(d);

        let state = Durability::load(&dir).unwrap();
        assert_eq!(state.map_entries.len(), 2);
        assert_eq!(state.origins.get(&PageKey::raw("p1")), Some(&req));
        assert_eq!(state.cursor.consumed, 7);
        assert_eq!(state.cursor.sync_seq, 3);
        assert_eq!(state.cursor.watermarks, vec![("car".to_string(), 6)]);
        assert_eq!(state.cursor.bus_seq, 5);
        assert_eq!(state.cursor.edge_marks, vec![("edge-0".to_string(), 4, 99)]);
        assert_eq!(state.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_replay_is_idempotent() {
        let dir = temp_dir();
        let map = entry_map();
        let req = HttpRequest::get("h", "/s", &[]);
        let origins_full: HashMap<PageKey, HttpRequest> =
            [(PageKey::raw("p1"), req.clone())].into_iter().collect();
        let mut d = Durability::open(&dir, 2).unwrap();
        for sync in 0..5u64 {
            let out = d.persist_sync(
                &map,
                &[(PageKey::raw("p1"), req.clone())],
                &origins_full,
                CursorRecord {
                    consumed: sync + 1,
                    sync_seq: sync,
                    watermarks: vec![],
                    ..CursorRecord::default()
                },
            );
            assert_eq!(out.errors, 0);
            assert_eq!(out.checkpointed, sync % 2 == 1, "every 2nd sync snapshots");
        }
        drop(d);
        let state = Durability::load(&dir).unwrap();
        // Duplicate origins/map rows collapsed; cursor is the latest.
        assert_eq!(state.cursor.consumed, 5);
        assert_eq!(state.origins.len(), 1);
        assert!(state.snapshot_seq.is_some());
        // Map rows may repeat across snapshot + WAL — dedup is the map's
        // job; ensure both distinct rows survived.
        let sqls: std::collections::HashSet<&str> =
            state.map_entries.iter().map(|e| e.sql.as_str()).collect();
        assert_eq!(sqls.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_of_empty_dir_is_empty_state() {
        let dir = temp_dir();
        let state = Durability::load(&dir).unwrap();
        assert_eq!(state.map_entries.len(), 0);
        assert_eq!(state.cursor, CursorRecord::default());
        assert!(state.snapshot_seq.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_continues_the_journal() {
        let dir = temp_dir();
        let map = entry_map();
        let origins_full = HashMap::new();
        let mut d = Durability::open(&dir, 100).unwrap();
        d.persist_sync(
            &map,
            &[],
            &origins_full,
            CursorRecord { consumed: 1, sync_seq: 0, ..CursorRecord::default() },
        );
        drop(d);
        // A second incarnation appends to the same WAL.
        let mut d = Durability::open(&dir, 100).unwrap();
        d.set_map_cursor(2);
        d.persist_sync(
            &map,
            &[],
            &origins_full,
            CursorRecord { consumed: 9, sync_seq: 1, ..CursorRecord::default() },
        );
        drop(d);
        let state = Durability::load(&dir).unwrap();
        assert_eq!(state.cursor.consumed, 9);
        assert_eq!(state.map_entries.len(), 2, "second pass skipped durable rows");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Property tests: the planner/executor must agree with a naive evaluator
//! that performs no pushdown, no index use, and no hash joins — just the
//! cartesian product with the full WHERE evaluated per combination.

use cacheportal_db::engine::Database;
use cacheportal_db::eval::{bind, BindContext};
use cacheportal_db::exec::QueryResult;
use cacheportal_db::sql::ast::{SelectItem, Statement};
use cacheportal_db::sql::parser::parse;
use cacheportal_db::value::Value;
use proptest::prelude::*;

/// Build a 2-table database with the given rows.
/// R(a INT, b INT, s TEXT) with an index on b and a range index on a;
/// S(b INT, c INT) indexed on b.
fn build_db(r_rows: &[(i64, i64, String)], s_rows: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE R (a INT, b INT, s TEXT, INDEX(b), RANGE INDEX(a))")
        .unwrap();
    db.execute("CREATE TABLE S (b INT, c INT, INDEX(b))").unwrap();
    for (a, b, s) in r_rows {
        db.insert_row("R", vec![Value::Int(*a), Value::Int(*b), s.clone().into()])
            .unwrap();
    }
    for (b, c) in s_rows {
        db.insert_row("S", vec![Value::Int(*b), Value::Int(*c)])
            .unwrap();
    }
    db
}

/// Naive reference: SELECT * over the cartesian product, full WHERE per row.
fn naive_select_star(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    let Statement::Select(sel) = parse(sql).unwrap() else {
        panic!("not a select")
    };
    assert!(matches!(sel.items.as_slice(), [SelectItem::Star]));
    let tables: Vec<_> = sel
        .from
        .iter()
        .map(|t| db.catalog().require(&t.table).unwrap())
        .collect();
    let ctx = BindContext::new(
        sel.from
            .iter()
            .zip(&tables)
            .map(|(tr, t)| (tr.binding().to_string(), t.schema().clone()))
            .collect(),
    );
    let pred = sel.where_clause.as_ref().map(|w| bind(w, &ctx, &[]).unwrap());

    let mut out = Vec::new();
    match tables.len() {
        1 => {
            for (_, r) in tables[0].scan() {
                if pred.as_ref().map(|p| p.eval_predicate(&[r])).unwrap_or(true) {
                    out.push(r.clone());
                }
            }
        }
        2 => {
            for (_, r0) in tables[0].scan() {
                for (_, r1) in tables[1].scan() {
                    if pred
                        .as_ref()
                        .map(|p| p.eval_predicate(&[r0, r1]))
                        .unwrap_or(true)
                    {
                        let mut row = r0.clone();
                        row.extend(r1.iter().cloned());
                        out.push(row);
                    }
                }
            }
        }
        n => panic!("oracle supports 1-2 tables, got {n}"),
    }
    out
}

/// Compare result sets as multisets (the executor's row order for unordered
/// queries is an implementation detail).
fn assert_same_multiset(mut got: Vec<Vec<Value>>, result: QueryResult) {
    let mut want = result.rows;
    got.sort();
    want.sort();
    assert_eq!(got, want);
}

fn op_strategy() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["=", "<>", "<", "<=", ">", ">="])
}

fn small_string() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["x".to_string(), "y".to_string(), "z".to_string()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Join + local predicates: executor ≡ naive evaluator.
    #[test]
    fn join_with_filters_matches_oracle(
        r_rows in prop::collection::vec((0i64..8, 0i64..6, small_string()), 0..30),
        s_rows in prop::collection::vec((0i64..6, 0i64..8), 0..30),
        a_op in op_strategy(),
        a_lit in 0i64..8,
        c_op in op_strategy(),
        c_lit in 0i64..8,
    ) {
        let db = build_db(&r_rows, &s_rows);
        let sql = format!(
            "SELECT * FROM R, S WHERE R.b = S.b AND R.a {a_op} {a_lit} AND S.c {c_op} {c_lit}"
        );
        let naive = naive_select_star(&db, &sql);
        let exec = db.query(&sql).unwrap();
        assert_same_multiset(naive, exec);
    }

    /// Single-table predicates, including indexed equality.
    #[test]
    fn single_table_matches_oracle(
        r_rows in prop::collection::vec((0i64..8, 0i64..6, small_string()), 0..40),
        b_lit in 0i64..6,
        a_op in op_strategy(),
        a_lit in 0i64..8,
        use_index_eq in any::<bool>(),
    ) {
        let db = build_db(&r_rows, &[]);
        let sql = if use_index_eq {
            format!("SELECT * FROM R WHERE b = {b_lit} AND a {a_op} {a_lit}")
        } else {
            format!("SELECT * FROM R WHERE a {a_op} {a_lit}")
        };
        let naive = naive_select_star(&db, &sql);
        let exec = db.query(&sql).unwrap();
        assert_same_multiset(naive, exec);
    }

    /// Disjunctions must not be broken by conjunct classification.
    #[test]
    fn or_predicates_match_oracle(
        r_rows in prop::collection::vec((0i64..8, 0i64..6, small_string()), 0..40),
        s_rows in prop::collection::vec((0i64..6, 0i64..8), 0..20),
        lit1 in 0i64..8,
        lit2 in 0i64..8,
    ) {
        let db = build_db(&r_rows, &s_rows);
        let sql = format!(
            "SELECT * FROM R, S WHERE R.b = S.b AND (R.a = {lit1} OR S.c = {lit2})"
        );
        let naive = naive_select_star(&db, &sql);
        let exec = db.query(&sql).unwrap();
        assert_same_multiset(naive, exec);
    }

    /// Cartesian products (no join predicate) still agree.
    #[test]
    fn cartesian_matches_oracle(
        r_rows in prop::collection::vec((0i64..4, 0i64..4, small_string()), 0..10),
        s_rows in prop::collection::vec((0i64..4, 0i64..4), 0..10),
    ) {
        let db = build_db(&r_rows, &s_rows);
        let sql = "SELECT * FROM R, S";
        let naive = naive_select_star(&db, sql);
        let exec = db.query(sql).unwrap();
        assert_same_multiset(naive, exec);
    }

    /// COUNT(*) equals the oracle's row count.
    #[test]
    fn count_star_matches_oracle(
        r_rows in prop::collection::vec((0i64..8, 0i64..6, small_string()), 0..40),
        a_op in op_strategy(),
        a_lit in 0i64..8,
    ) {
        let db = build_db(&r_rows, &[]);
        let filter_sql = format!("SELECT * FROM R WHERE a {a_op} {a_lit}");
        let naive = naive_select_star(&db, &filter_sql);
        let count_sql = format!("SELECT COUNT(*) FROM R WHERE a {a_op} {a_lit}");
        let exec = db.query(&count_sql).unwrap();
        prop_assert_eq!(exec.rows[0][0].clone(), Value::Int(naive.len() as i64));
    }

    /// Replaying the update log into an empty database reconstructs the
    /// exact table contents (multiset equality).
    #[test]
    fn log_replay_reconstructs_state(
        inserts in prop::collection::vec((0i64..8, 0i64..6, small_string()), 1..30),
        delete_fraction in 0usize..3,
        update_price in 0i64..100,
    ) {
        let mut db = build_db(&inserts, &[]);
        // Random-ish mutations.
        db.execute(&format!("DELETE FROM R WHERE a < {delete_fraction}")).unwrap();
        db.execute(&format!("UPDATE R SET a = {update_price} WHERE b = 3")).unwrap();

        // Replay into a fresh database.
        let mut replica = Database::new();
        replica.execute("CREATE TABLE R (a INT, b INT, s TEXT)").unwrap();
        for rec in db.update_log().pull_since(0) {
            match &rec.op {
                cacheportal_db::LogOp::Insert(row) => {
                    replica.insert_row(&rec.table, row.clone()).unwrap();
                }
                cacheportal_db::LogOp::Delete(row) => {
                    prop_assert!(replica.delete_row_equal(&rec.table, row).unwrap(),
                        "log delete must find its row");
                }
            }
        }
        let mut orig = db.query("SELECT * FROM R").unwrap().rows;
        let mut rep = replica.query("SELECT * FROM R").unwrap().rows;
        orig.sort();
        rep.sort();
        prop_assert_eq!(orig, rep);
    }

    /// ORDER BY produces a sequence sorted under the engine's total order.
    #[test]
    fn order_by_is_sorted(
        r_rows in prop::collection::vec((0i64..8, 0i64..6, small_string()), 0..40),
        asc in any::<bool>(),
    ) {
        let db = build_db(&r_rows, &[]);
        let sql = format!("SELECT a FROM R ORDER BY a {}", if asc { "ASC" } else { "DESC" });
        let rows = db.query(&sql).unwrap().rows;
        for w in rows.windows(2) {
            if asc {
                prop_assert!(w[0][0] <= w[1][0]);
            } else {
                prop_assert!(w[0][0] >= w[1][0]);
            }
        }
    }

    /// DISTINCT output has no duplicates and covers the same value set.
    #[test]
    fn distinct_is_set_semantics(
        r_rows in prop::collection::vec((0i64..4, 0i64..6, small_string()), 0..40),
    ) {
        let db = build_db(&r_rows, &[]);
        let rows = db.query("SELECT DISTINCT a FROM R").unwrap().rows;
        let as_set: std::collections::HashSet<_> = rows.iter().cloned().collect();
        prop_assert_eq!(as_set.len(), rows.len(), "no duplicates");
        let want: std::collections::HashSet<i64> = r_rows.iter().map(|(a, _, _)| *a).collect();
        prop_assert_eq!(rows.len(), want.len());
    }
}

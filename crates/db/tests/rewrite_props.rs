//! Property tests for the SQL rewrites the sniffer/invalidator depend on:
//! parameterize ∘ substitute is the identity on query instances, the
//! canonical template is literal-independent, and rendered SQL re-parses to
//! the same AST.

use cacheportal_db::sql::ast::Statement;
use cacheportal_db::sql::parser::{parse, parse_select};
use cacheportal_db::sql::rewrite::{parameterize, substitute_params};
use cacheportal_db::Value;
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        (-100.0f64..100.0).prop_map(|f| Value::Float((f * 4.0).round() / 4.0)),
        "[a-z]{1,8}".prop_map(Value::Str),
        // Strings with quotes exercise literal escaping end-to-end.
        Just(Value::Str("O'Hara's".into())),
    ]
}

/// Templates covering the predicate shapes the invalidator analyzes.
fn template_strategy() -> impl Strategy<Value = (&'static str, usize)> {
    prop::sample::select(vec![
        ("SELECT * FROM R WHERE R.a > $1 AND R.b < $2", 2),
        ("SELECT R.a FROM R WHERE R.s = $1", 1),
        (
            "SELECT R.a, S.c FROM R, S WHERE R.b = S.b AND R.a >= $1 AND S.c IN ($2, $3)",
            3,
        ),
        (
            "SELECT * FROM R WHERE (R.a = $1 OR R.b = $2) AND R.s LIKE $3",
            3,
        ),
        ("SELECT * FROM R WHERE R.a BETWEEN $1 AND $2", 2),
        (
            "SELECT COUNT(*) FROM R, S WHERE R.b = S.b AND S.c <> $1",
            1,
        ),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// substitute(template, params) then parameterize recovers both the
    /// template and the parameter vector — the invalidator's query-type
    /// discovery is lossless.
    #[test]
    fn parameterize_inverts_substitute(
        (template, n) in template_strategy(),
        values in prop::collection::vec(value_strategy(), 3),
    ) {
        let ty = parse_select(template).unwrap();
        let params = &values[..n];
        let inst = substitute_params(&ty, params).unwrap();
        let (ty2, recovered) = parameterize(&inst);
        prop_assert_eq!(&ty2, &ty, "template recovered");
        prop_assert_eq!(recovered.as_slice(), params, "parameters recovered");
    }

    /// Instances of one template with different literals share the same
    /// canonical type text.
    #[test]
    fn canonical_type_is_literal_independent(
        (template, n) in template_strategy(),
        a in prop::collection::vec(value_strategy(), 3),
        b in prop::collection::vec(value_strategy(), 3),
    ) {
        let ty = parse_select(template).unwrap();
        let inst_a = substitute_params(&ty, &a[..n]).unwrap();
        let inst_b = substitute_params(&ty, &b[..n]).unwrap();
        let (ta, _) = parameterize(&inst_a);
        let (tb, _) = parameterize(&inst_b);
        prop_assert_eq!(
            Statement::Select(ta).to_sql(),
            Statement::Select(tb).to_sql()
        );
    }

    /// Rendered instance SQL re-parses to the identical AST (the wire
    /// format between sniffer and invalidator is lossless).
    #[test]
    fn rendered_sql_reparses_identically(
        (template, n) in template_strategy(),
        values in prop::collection::vec(value_strategy(), 3),
    ) {
        let ty = parse_select(template).unwrap();
        let inst = substitute_params(&ty, &values[..n]).unwrap();
        let text = Statement::Select(inst.clone()).to_sql();
        let reparsed = parse(&text).unwrap();
        prop_assert_eq!(reparsed, Statement::Select(inst), "round trip of {}", text);
    }
}

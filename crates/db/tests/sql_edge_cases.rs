//! Engine edge cases: empty relations, NULL-heavy data, limits, self-joins,
//! aliasing, and error paths — the corners a downstream user will hit first.

use cacheportal_db::{Database, DbError, Value};

fn empty_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INT, b FLOAT, s TEXT, INDEX(a), RANGE INDEX(b))")
        .unwrap();
    db
}

#[test]
fn queries_over_empty_tables() {
    let mut db = empty_db();
    assert!(db.query("SELECT * FROM t").unwrap().rows.is_empty());
    assert!(db
        .query("SELECT * FROM t WHERE a = 1 AND b < 2.0")
        .unwrap()
        .rows
        .is_empty());
    assert_eq!(
        db.query("SELECT COUNT(*), SUM(a), MIN(s) FROM t").unwrap().rows,
        vec![vec![Value::Int(0), Value::Null, Value::Null]]
    );
    assert!(db
        .query("SELECT a, COUNT(*) FROM t GROUP BY a")
        .unwrap()
        .rows
        .is_empty());
    // Joining two empty tables, and an empty with itself.
    db.execute("CREATE TABLE u (a INT)").unwrap();
    assert!(db
        .query("SELECT * FROM t, u WHERE t.a = u.a")
        .unwrap()
        .rows
        .is_empty());
    assert!(db
        .query("SELECT x.a FROM t x, t y WHERE x.a = y.a")
        .unwrap()
        .rows
        .is_empty());
}

#[test]
fn null_heavy_semantics() {
    let mut db = empty_db();
    db.execute("INSERT INTO t VALUES (NULL, NULL, NULL), (1, 1.5, 'x'), (NULL, 2.5, 'y')")
        .unwrap();
    // NULLs never satisfy comparisons…
    assert_eq!(db.query("SELECT * FROM t WHERE a = a").unwrap().rows.len(), 1);
    assert_eq!(db.query("SELECT * FROM t WHERE a <> 99").unwrap().rows.len(), 1);
    // …but IS NULL sees them.
    assert_eq!(
        db.query("SELECT * FROM t WHERE a IS NULL").unwrap().rows.len(),
        2
    );
    assert_eq!(
        db.query("SELECT * FROM t WHERE a IS NOT NULL").unwrap().rows.len(),
        1
    );
    // Aggregates skip NULLs; COUNT(col) vs COUNT(*).
    let r = db.query("SELECT COUNT(*), COUNT(a), AVG(b) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(3));
    assert_eq!(r.rows[0][1], Value::Int(1));
    assert_eq!(r.rows[0][2], Value::Float(2.0));
    // NULL keys never hash-join.
    db.execute("CREATE TABLE u (a INT)").unwrap();
    db.execute("INSERT INTO u VALUES (NULL), (1)").unwrap();
    assert_eq!(
        db.query("SELECT * FROM t, u WHERE t.a = u.a").unwrap().rows.len(),
        1
    );
    // GROUP BY groups NULLs together (grouping, not predicate, semantics).
    let r = db.query("SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a").unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0], vec![Value::Null, Value::Int(2)]);
}

#[test]
fn limit_and_distinct_corners() {
    let mut db = empty_db();
    db.execute("INSERT INTO t VALUES (1, 1.0, 'x'), (1, 1.0, 'x'), (2, 2.0, 'y')")
        .unwrap();
    assert!(db.query("SELECT * FROM t LIMIT 0").unwrap().rows.is_empty());
    assert_eq!(db.query("SELECT * FROM t LIMIT 99").unwrap().rows.len(), 3);
    assert_eq!(db.query("SELECT DISTINCT a, s FROM t").unwrap().rows.len(), 2);
    assert_eq!(
        db.query("SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 1")
            .unwrap()
            .rows,
        vec![vec![Value::Int(2)]]
    );
}

#[test]
fn order_by_unprojected_and_expression_keys() {
    let mut db = empty_db();
    db.execute("INSERT INTO t VALUES (3, 1.0, 'c'), (1, 3.0, 'a'), (2, 2.0, 'b')")
        .unwrap();
    // Sort key not in the projection.
    let r = db.query("SELECT s FROM t ORDER BY a").unwrap();
    let got: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
    assert_eq!(got, vec!["a", "b", "c"]);
    // Expression sort key.
    let r = db.query("SELECT a FROM t ORDER BY (0 - a)").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(3));
    // Multiple keys with mixed direction.
    db.execute("INSERT INTO t VALUES (1, 9.0, 'z')").unwrap();
    let r = db.query("SELECT a, s FROM t ORDER BY a ASC, s DESC").unwrap();
    assert_eq!(r.rows[0], vec![Value::Int(1), Value::Str("z".into())]);
}

#[test]
fn self_join_with_range_predicates() {
    let mut db = empty_db();
    for (a, b) in [(1, 1.0), (2, 2.0), (3, 3.0)] {
        db.execute(&format!("INSERT INTO t VALUES ({a}, {b}, 's')")).unwrap();
    }
    // Pairs x < y: 3 of them.
    let r = db
        .query("SELECT x.a, y.a FROM t x, t y WHERE x.a < y.a ORDER BY x.a, y.a")
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[0], vec![Value::Int(1), Value::Int(2)]);
    // Duplicate binding names must be rejected, aliased reuse allowed.
    assert!(db.query("SELECT * FROM t, t").is_err());
    assert!(db.query("SELECT * FROM t a, t b").is_ok());
}

#[test]
fn parameter_binding_corners() {
    let mut db = empty_db();
    db.execute("INSERT INTO t VALUES (1, 1.0, 'x')").unwrap();
    // Same parameter used twice.
    let r = db
        .query_with_params(
            "SELECT * FROM t WHERE a = $1 OR LENGTH(s) = $1",
            &[Value::Int(1)],
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    // `?` placeholders number left-to-right.
    let r = db
        .query_with_params(
            "SELECT * FROM t WHERE a = ? AND s = ?",
            &[Value::Int(1), "x".into()],
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    // NULL as a bound parameter: comparison yields no rows.
    let r = db
        .query_with_params("SELECT * FROM t WHERE a = $1", &[Value::Null])
        .unwrap();
    assert!(r.rows.is_empty());
    // Missing binding is a typed error.
    assert!(matches!(
        db.query_with_params("SELECT * FROM t WHERE a = $2", &[Value::Int(1)]),
        Err(DbError::UnboundParameter(2))
    ));
}

#[test]
fn update_and_delete_corners() {
    let mut db = empty_db();
    db.execute("INSERT INTO t VALUES (1, 1.0, 'x'), (2, 2.0, 'y')").unwrap();
    // UPDATE with no matches affects nothing and logs nothing new.
    let hw = db.high_water();
    assert_eq!(
        db.execute("UPDATE t SET a = 9 WHERE a = 42").unwrap().affected(),
        0
    );
    assert_eq!(db.high_water(), hw);
    // Self-referential assignment.
    db.execute("UPDATE t SET a = (a + a) WHERE a = 2").unwrap();
    assert_eq!(
        db.query("SELECT a FROM t ORDER BY a DESC").unwrap().rows[0][0],
        Value::Int(4)
    );
    // Setting a column to NULL.
    db.execute("UPDATE t SET s = NULL WHERE a = 1").unwrap();
    assert_eq!(
        db.query("SELECT COUNT(*) FROM t WHERE s IS NULL").unwrap().rows[0][0],
        Value::Int(1)
    );
    // DELETE everything twice.
    assert_eq!(db.execute("DELETE FROM t").unwrap().affected(), 2);
    assert_eq!(db.execute("DELETE FROM t").unwrap().affected(), 0);
}

#[test]
fn float_int_coercion_in_indexes_and_predicates() {
    let mut db = empty_db();
    db.execute("INSERT INTO t VALUES (1, 2.0, 'x')").unwrap();
    // Hash index on INT column probed with a float-equal value.
    assert_eq!(
        db.query("SELECT * FROM t WHERE a = 1.0").unwrap().rows.len(),
        1
    );
    // Range index on FLOAT column probed with int bounds.
    assert_eq!(
        db.query("SELECT * FROM t WHERE b BETWEEN 2 AND 2").unwrap().rows.len(),
        1
    );
    assert_eq!(
        db.query("SELECT * FROM t WHERE b > 1").unwrap().rows.len(),
        1
    );
}

#[test]
fn drop_and_recreate_table() {
    let mut db = empty_db();
    db.execute("INSERT INTO t VALUES (1, 1.0, 'x')").unwrap();
    db.execute("DROP TABLE t").unwrap();
    assert!(matches!(
        db.query("SELECT * FROM t"),
        Err(DbError::UnknownTable(_))
    ));
    // Recreate with a different schema.
    db.execute("CREATE TABLE t (only INT)").unwrap();
    db.execute("INSERT INTO t VALUES (7)").unwrap();
    assert_eq!(db.query("SELECT only FROM t").unwrap().rows.len(), 1);
}

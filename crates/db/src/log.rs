//! The database **update log** — the invalidator's window into data changes.
//!
//! Every committed mutation appends a [`LogRecord`] with a monotonically
//! increasing log sequence number (LSN). An SQL `UPDATE` is logged as a
//! delete of the old image followed by an insert of the new image, which is
//! exactly the Δ⁻R / Δ⁺R decomposition of §4.2.1 of the paper.

use crate::table::Row;

/// Logical timestamp of a mutation (monotonic counter).
pub type Lsn = u64;

/// What changed.
#[derive(Debug, Clone, PartialEq)]
pub enum LogOp {
    /// Row inserted (full image).
    Insert(Row),
    /// Row deleted (full image).
    Delete(Row),
}

/// One committed mutation.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Log sequence number.
    pub lsn: Lsn,
    /// Table the mutation applied to.
    pub table: String,
    /// What changed.
    pub op: LogOp,
}

/// Append-only update log.
#[derive(Debug, Default)]
pub struct UpdateLog {
    records: Vec<LogRecord>,
    next_lsn: Lsn,
}

impl UpdateLog {
    /// Create an empty log.
    pub fn new() -> Self {
        UpdateLog::default()
    }

    /// Append a record; returns its LSN.
    pub fn append(&mut self, table: &str, op: LogOp) -> Lsn {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.records.push(LogRecord {
            lsn,
            table: table.to_string(),
            op,
        });
        lsn
    }

    /// LSN that the *next* append will receive. `pull_since(high_water())`
    /// is always empty.
    pub fn high_water(&self) -> Lsn {
        self.next_lsn
    }

    /// All records with `lsn >= since`, in LSN order. This is the polling
    /// interface the invalidator uses at each synchronization point.
    pub fn pull_since(&self, since: Lsn) -> &[LogRecord] {
        // Records are dense (lsn == index) as long as the log is not
        // truncated; binary search keeps this correct even after truncation.
        let start = self.records.partition_point(|r| r.lsn < since);
        &self.records[start..]
    }

    /// Drop records below `below` (already consumed by every subscriber).
    pub fn truncate(&mut self, below: Lsn) {
        let start = self.records.partition_point(|r| r.lsn < below);
        self.records.drain(..start);
    }

    /// Abort support: remove every record with `lsn >= at` and rewind the
    /// LSN counter so the aborted records were never visible. Only the
    /// single writer that appended them (an open transaction) may call this.
    pub fn rewind_to(&mut self, at: Lsn) {
        let start = self.records.partition_point(|r| r.lsn < at);
        self.records.truncate(start);
        self.next_lsn = self.next_lsn.min(at.max(
            self.records.last().map(|r| r.lsn + 1).unwrap_or(0),
        ));
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn rec(i: i64) -> LogOp {
        LogOp::Insert(vec![Value::Int(i)])
    }

    #[test]
    fn lsns_are_monotonic_and_dense() {
        let mut log = UpdateLog::new();
        assert_eq!(log.append("t", rec(1)), 0);
        assert_eq!(log.append("t", rec(2)), 1);
        assert_eq!(log.high_water(), 2);
    }

    #[test]
    fn pull_since_returns_suffix() {
        let mut log = UpdateLog::new();
        for i in 0..5 {
            log.append("t", rec(i));
        }
        assert_eq!(log.pull_since(0).len(), 5);
        assert_eq!(log.pull_since(3).len(), 2);
        assert_eq!(log.pull_since(3)[0].lsn, 3);
        assert!(log.pull_since(log.high_water()).is_empty());
    }

    #[test]
    fn truncate_preserves_pull_semantics() {
        let mut log = UpdateLog::new();
        for i in 0..10 {
            log.append("t", rec(i));
        }
        log.truncate(6);
        assert_eq!(log.len(), 4);
        assert_eq!(log.pull_since(0).len(), 4, "truncated records are gone");
        assert_eq!(log.pull_since(8).len(), 2);
        // appends continue from the same LSN sequence
        assert_eq!(log.append("t", rec(99)), 10);
    }
}

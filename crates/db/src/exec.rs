//! Query planning and execution.
//!
//! The planner is deliberately simple but honest about access paths:
//! single-table conjuncts are pushed down to scans, `col = literal`
//! conjuncts use hash indexes when available, and equi-join conjuncts drive
//! hash joins in FROM order. Everything else (residual predicates,
//! disconnected tables) falls back to filtered nested loops — which, for the
//! paper's select-project-join workload, is exercised only by the
//! cartesian-product edge cases in tests.

use crate::error::{DbError, DbResult};
use crate::eval::{bind, AggState, BindContext, BoundExpr};
use crate::sql::ast::{ColumnRef, Expr, Select, SelectItem};
use crate::table::{Catalog, Row, Table};
use crate::value::Value;
use std::collections::HashMap;

/// Result set of a SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows, in output order.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Stable textual fingerprint of the result (used by page renderers and
    /// the freshness oracle). Row order matters, as it does for a web page.
    pub fn fingerprint(&self) -> String {
        let mut s = String::with_capacity(64 + self.rows.len() * 16);
        s.push_str(&self.columns.join(","));
        for row in &self.rows {
            s.push('\n');
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    s.push('|');
                }
                s.push_str(&v.to_string());
            }
        }
        s
    }
}

/// Work counters for one statement execution.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows touched by scans and index probes.
    pub rows_scanned: u64,
    /// Rows produced by joins before projection.
    pub rows_joined: u64,
    /// Rows in the final result.
    pub rows_output: u64,
    /// Number of index probes used instead of full scans.
    pub index_probes: u64,
    /// Full sequential scans the planner fell back to (no usable index).
    pub seq_scans: u64,
}

impl ExecStats {
    /// Abstract work units: the simulator maps these to service time.
    pub fn work(&self) -> u64 {
        self.rows_scanned + self.rows_joined + self.rows_output + self.index_probes
    }

    /// Accumulate another run’s counters.
    pub fn add(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.rows_joined += other.rows_joined;
        self.rows_output += other.rows_output;
        self.index_probes += other.index_probes;
        self.seq_scans += other.seq_scans;
    }
}

/// A conjunct classified by which FROM tables it references.
struct ClassifiedConjunct {
    bound: BoundExpr,
    /// FROM-list table indexes referenced, sorted + deduped.
    tables: Vec<usize>,
}

/// Execute a SELECT against the catalog.
pub fn execute_select(
    catalog: &Catalog,
    select: &Select,
    params: &[Value],
    stats: &mut ExecStats,
) -> DbResult<QueryResult> {
    // Resolve FROM tables and build the binding context.
    let mut tables: Vec<&Table> = Vec::with_capacity(select.from.len());
    let mut ctx_tables = Vec::with_capacity(select.from.len());
    for tref in &select.from {
        let t = catalog.require(&tref.table)?;
        tables.push(t);
        ctx_tables.push((tref.binding().to_string(), t.schema().clone()));
    }
    // Duplicate binding names would make resolution ambiguous.
    for i in 0..ctx_tables.len() {
        for j in i + 1..ctx_tables.len() {
            if ctx_tables[i].0.eq_ignore_ascii_case(&ctx_tables[j].0) {
                return Err(DbError::Parse(format!(
                    "duplicate table binding '{}' in FROM",
                    ctx_tables[i].0
                )));
            }
        }
    }
    let ctx = BindContext::new(ctx_tables);

    // Classify WHERE conjuncts.
    let mut conjuncts: Vec<ClassifiedConjunct> = Vec::new();
    if let Some(w) = &select.where_clause {
        for c in w.conjuncts() {
            let bound = bind(c, &ctx, params)?;
            let mut refs = conjunct_tables(&bound);
            refs.sort_unstable();
            refs.dedup();
            conjuncts.push(ClassifiedConjunct {
                bound,
                tables: refs,
            });
        }
    }

    // Per-table filtered row sets (local predicates pushed down).
    let mut filtered: Vec<Vec<&Row>> = Vec::with_capacity(tables.len());
    for (ti, table) in tables.iter().enumerate() {
        let local: Vec<&BoundExpr> = conjuncts
            .iter()
            .filter(|c| c.tables.as_slice() == [ti])
            .map(|c| &c.bound)
            .collect();
        filtered.push(scan_with_predicates(table, ti, &local, stats));
    }

    // Join in FROM order; apply each multi-table conjunct as soon as every
    // table it references is available.
    let mut joined: Vec<Vec<&Row>> = filtered[0].iter().map(|r| vec![*r]).collect();
    #[allow(clippy::needless_range_loop)] // ti is the FROM position, not just an index
    for ti in 1..tables.len() {
        let ready = |c: &ClassifiedConjunct| {
            c.tables.len() > 1
                && c.tables.iter().all(|t| *t <= ti)
                && c.tables.contains(&ti)
        };
        // Pick one equi-join conjunct to drive a hash join if possible.
        let hash_key = conjuncts
            .iter()
            .filter(|c| ready(c))
            .find_map(|c| equi_join_key(&c.bound, ti));

        let mut next: Vec<Vec<&Row>> = Vec::new();
        match hash_key {
            Some((outer_table, outer_col, inner_col)) => {
                // Build hash table over the new (inner) side.
                let mut build: HashMap<&Value, Vec<&Row>> = HashMap::new();
                for row in &filtered[ti] {
                    build.entry(&row[inner_col]).or_default().push(row);
                }
                for combo in &joined {
                    let key = &combo[outer_table][outer_col];
                    if key.is_null() {
                        continue;
                    }
                    if let Some(matches) = build.get(key) {
                        for m in matches {
                            let mut c = combo.clone();
                            c.push(m);
                            next.push(c);
                        }
                    }
                }
            }
            None => {
                for combo in &joined {
                    for row in &filtered[ti] {
                        let mut c = combo.clone();
                        c.push(*row);
                        next.push(c);
                    }
                }
            }
        }
        stats.rows_joined += next.len() as u64;
        // Apply all now-ready conjuncts (including the hash-join one: cheap
        // re-check, and it keeps Float/Int edge semantics identical to eval).
        let checks: Vec<&BoundExpr> = conjuncts
            .iter()
            .filter(|c| ready(c))
            .map(|c| &c.bound)
            .collect();
        if !checks.is_empty() {
            next.retain(|combo| checks.iter().all(|p| p.eval_predicate(combo)));
        }
        joined = next;
    }
    // Single-table queries: count the filtered rows as joined output.
    if tables.len() == 1 {
        stats.rows_joined += joined.len() as u64;
    }

    // Aggregate or plain projection.
    let is_aggregate = !select.group_by.is_empty()
        || select.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.has_aggregate(),
            _ => false,
        });

    if select.having.is_some() && !is_aggregate {
        return Err(DbError::Unsupported(
            "HAVING requires GROUP BY or aggregates".into(),
        ));
    }
    let (columns, mut rows) = if is_aggregate {
        project_aggregate(select, &ctx, params, &joined)?
    } else {
        project_plain(select, &ctx, params, &tables, &joined)?
    };

    if select.distinct {
        let mut seen = std::collections::HashSet::new();
        rows.retain(|r| seen.insert(r.clone()));
    }

    // ORDER BY over the *source* rows for plain queries; over output rows
    // for aggregates (keys restricted to group-by columns).
    if !select.order_by.is_empty() {
        if is_aggregate {
            let key_idxs: Vec<(usize, bool)> = select
                .order_by
                .iter()
                .map(|k| match &k.expr {
                    Expr::Column(c) => output_column_index(select, &ctx, c)
                        .map(|i| (i, k.ascending))
                        .ok_or_else(|| {
                            DbError::Unsupported(
                                "ORDER BY in aggregate query must name a grouped column".into(),
                            )
                        }),
                    _ => Err(DbError::Unsupported(
                        "ORDER BY expression in aggregate query".into(),
                    )),
                })
                .collect::<DbResult<_>>()?;
            rows.sort_by(|a, b| {
                for (i, asc) in &key_idxs {
                    let ord = a[*i].cmp(&b[*i]);
                    let ord = if *asc { ord } else { ord.reverse() };
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                // Storage-independent tie-break (see project_plain).
                a.cmp(b)
            });
        } else {
            // Recompute sort keys from output rows is wrong in general (keys
            // may not be projected), so plain queries sort before projection.
            // project_plain already handled it; nothing to do here.
        }
    }

    if let Some(n) = select.limit {
        rows.truncate(n as usize);
    }

    stats.rows_output += rows.len() as u64;
    Ok(QueryResult { columns, rows })
}

/// The access path chosen for one table scan (also powers EXPLAIN).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPath {
    /// Full sequential scan.
    SeqScan,
    /// Hash-index probe on the named column.
    /// Hash-index probe on the named column.
    /// Hash-index probe on the named column.
    IndexProbe {
        /// Column position the index covers.
        column: usize,
    },
    /// Ordered-index range scan on the named column.
    /// Ordered-index range scan on the named column.
    /// Ordered-index range scan on the named column.
    RangeScan {
        /// Column position the index covers.
        column: usize,
    },
}

/// Equality-probe plan: `(column, key)`.
type EqProbe = (usize, Value);
/// Range-scan plan: `(column, bounds)`.
type RangeProbe = (usize, RangeBounds);

/// Pick the access path for a table given its pushed-down local predicates.
fn choose_access_path(
    table: &Table,
    table_no: usize,
    predicates: &[&BoundExpr],
) -> (AccessPath, Option<EqProbe>, Option<RangeProbe>) {
    for p in predicates {
        if let Some((col, key)) = const_eq_key(p, table_no) {
            if table.has_index(col) {
                return (AccessPath::IndexProbe { column: col }, Some((col, key)), None);
            }
            if table.has_range_index(col) {
                let b = RangeBounds {
                    low: std::ops::Bound::Included(key.clone()),
                    high: std::ops::Bound::Included(key),
                };
                return (AccessPath::RangeScan { column: col }, None, Some((col, b)));
            }
        }
    }
    for p in predicates {
        if let Some((col, bounds)) = const_range_bounds(p, table_no) {
            if table.has_range_index(col) {
                return (AccessPath::RangeScan { column: col }, None, Some((col, bounds)));
            }
        }
    }
    (AccessPath::SeqScan, None, None)
}

/// Owned range bounds for an ordered-index scan.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeBounds {
    /// Lower bound.
    pub low: std::ops::Bound<Value>,
    /// Upper bound.
    pub high: std::ops::Bound<Value>,
}

/// Scan one table applying pushed-down local predicates; uses a hash index
/// for `col = literal` conjuncts and an ordered index for range conjuncts
/// (`<`, `<=`, `>`, `>=`, `BETWEEN`) when available.
fn scan_with_predicates<'a>(
    table: &'a Table,
    table_no: usize,
    predicates: &[&BoundExpr],
    stats: &mut ExecStats,
) -> Vec<&'a Row> {
    let (_path, eq, range) = choose_access_path(table, table_no, predicates);
    if let Some((col, key)) = eq {
        let mut out = Vec::new();
        if let Some(rids) = table.index_lookup(col, &key) {
            for rid in rids {
                let row = table.get(*rid).expect("index points at live row");
                stats.index_probes += 1;
                if predicates.iter().all(|q| pred_single(q, table_no, row)) {
                    out.push(row);
                }
            }
        }
        return out;
    }
    if let Some((col, bounds)) = range {
        let mut out = Vec::new();
        if let Some(rids) =
            table.range_lookup(col, bounds.low.as_ref(), bounds.high.as_ref())
        {
            for rid in rids {
                let row = table.get(rid).expect("index points at live row");
                stats.index_probes += 1;
                if predicates.iter().all(|q| pred_single(q, table_no, row)) {
                    out.push(row);
                }
            }
        }
        return out;
    }
    let mut out = Vec::new();
    stats.seq_scans += 1;
    for (_, row) in table.scan() {
        stats.rows_scanned += 1;
        if predicates.iter().all(|q| pred_single(q, table_no, row)) {
            out.push(row);
        }
    }
    out
}

/// If `p` is a range comparison `col CMP literal` (or BETWEEN) over
/// `table_no`, return the column and the bounds it implies.
fn const_range_bounds(p: &BoundExpr, table_no: usize) -> Option<(usize, RangeBounds)> {
    use crate::sql::ast::CmpOp;
    use std::ops::Bound;
    match p {
        BoundExpr::Cmp { left, op, right } => {
            let (col, lit, op) = match (&**left, &**right) {
                (BoundExpr::Column { table, column }, BoundExpr::Literal(v))
                    if *table == table_no =>
                {
                    (*column, v.clone(), *op)
                }
                (BoundExpr::Literal(v), BoundExpr::Column { table, column })
                    if *table == table_no =>
                {
                    (*column, v.clone(), op.flip())
                }
                _ => return None,
            };
            let bounds = match op {
                CmpOp::Lt => RangeBounds {
                    low: Bound::Unbounded,
                    high: Bound::Excluded(lit),
                },
                CmpOp::LtEq => RangeBounds {
                    low: Bound::Unbounded,
                    high: Bound::Included(lit),
                },
                CmpOp::Gt => RangeBounds {
                    low: Bound::Excluded(lit),
                    high: Bound::Unbounded,
                },
                CmpOp::GtEq => RangeBounds {
                    low: Bound::Included(lit),
                    high: Bound::Unbounded,
                },
                CmpOp::Eq => RangeBounds {
                    low: Bound::Included(lit.clone()),
                    high: Bound::Included(lit),
                },
                CmpOp::NotEq => return None,
            };
            Some((col, bounds))
        }
        BoundExpr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            if let (
                BoundExpr::Column { table, column },
                BoundExpr::Literal(lo),
                BoundExpr::Literal(hi),
            ) = (&**expr, &**low, &**high)
            {
                if *table == table_no {
                    return Some((
                        *column,
                        RangeBounds {
                            low: std::ops::Bound::Included(lo.clone()),
                            high: std::ops::Bound::Included(hi.clone()),
                        },
                    ));
                }
            }
            None
        }
        _ => None,
    }
}

/// Evaluate a bound predicate that references only `table_no`, against one
/// row of that table. Builds the positional row slice expected by eval.
fn pred_single(p: &BoundExpr, table_no: usize, row: &Row) -> bool {
    // The predicate only indexes rows[table_no]; fill others with the same
    // reference (never dereferenced for other tables).
    let slots: Vec<&Row> = (0..=table_no).map(|_| row).collect();
    p.eval_predicate(&slots)
}

/// If `p` is `col = literal` over `table_no`, return (column, key value).
fn const_eq_key(p: &BoundExpr, table_no: usize) -> Option<(usize, Value)> {
    if let BoundExpr::Cmp { left, op, right } = p {
        if *op == crate::sql::ast::CmpOp::Eq {
            match (&**left, &**right) {
                (BoundExpr::Column { table, column }, BoundExpr::Literal(v))
                | (BoundExpr::Literal(v), BoundExpr::Column { table, column })
                    if *table == table_no =>
                {
                    return Some((*column, v.clone()));
                }
                _ => {}
            }
        }
    }
    None
}

/// If `p` is an equi-join between the new table `ti` and an earlier one,
/// return `(outer_table, outer_col, inner_col)`.
fn equi_join_key(p: &BoundExpr, ti: usize) -> Option<(usize, usize, usize)> {
    if let BoundExpr::Cmp { left, op, right } = p {
        if *op == crate::sql::ast::CmpOp::Eq {
            if let (
                BoundExpr::Column {
                    table: t1,
                    column: c1,
                },
                BoundExpr::Column {
                    table: t2,
                    column: c2,
                },
            ) = (&**left, &**right)
            {
                if *t1 == ti && *t2 < ti {
                    return Some((*t2, *c2, *c1));
                }
                if *t2 == ti && *t1 < ti {
                    return Some((*t1, *c1, *c2));
                }
            }
        }
    }
    None
}

/// FROM-table indexes referenced by a bound expression.
fn conjunct_tables(e: &BoundExpr) -> Vec<usize> {
    let mut out = Vec::new();
    fn walk(e: &BoundExpr, out: &mut Vec<usize>) {
        match e {
            BoundExpr::Column { table, .. } => out.push(*table),
            BoundExpr::Literal(_) => {}
            BoundExpr::Cmp { left, right, .. } | BoundExpr::Arith { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
            BoundExpr::And(a, b) | BoundExpr::Or(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            BoundExpr::Not(e) => walk(e, out),
            BoundExpr::IsNull { expr, .. } => walk(expr, out),
            BoundExpr::Between {
                expr, low, high, ..
            } => {
                walk(expr, out);
                walk(low, out);
                walk(high, out);
            }
            BoundExpr::InList { expr, list, .. } => {
                walk(expr, out);
                for e in list {
                    walk(e, out);
                }
            }
            BoundExpr::Like { expr, pattern, .. } => {
                walk(expr, out);
                walk(pattern, out);
            }
            BoundExpr::Func { args, .. } => {
                for a in args {
                    walk(a, out);
                }
            }
        }
    }
    walk(e, &mut out);
    out
}

/// Produce a human-readable plan description without executing the query:
/// access path per FROM table and join strategy per join step. Used by
/// tests to pin planner decisions and by users for diagnostics.
pub fn explain_select(
    catalog: &Catalog,
    select: &Select,
    params: &[Value],
) -> DbResult<String> {
    let mut tables: Vec<&Table> = Vec::with_capacity(select.from.len());
    let mut ctx_tables = Vec::with_capacity(select.from.len());
    for tref in &select.from {
        let t = catalog.require(&tref.table)?;
        tables.push(t);
        ctx_tables.push((tref.binding().to_string(), t.schema().clone()));
    }
    let ctx = BindContext::new(ctx_tables);
    let mut conjuncts: Vec<ClassifiedConjunct> = Vec::new();
    if let Some(w) = &select.where_clause {
        for c in w.conjuncts() {
            let bound = bind(c, &ctx, params)?;
            let mut refs = conjunct_tables(&bound);
            refs.sort_unstable();
            refs.dedup();
            conjuncts.push(ClassifiedConjunct { bound, tables: refs });
        }
    }

    let mut out = String::new();
    for (ti, table) in tables.iter().enumerate() {
        let local: Vec<&BoundExpr> = conjuncts
            .iter()
            .filter(|c| c.tables.as_slice() == [ti])
            .map(|c| &c.bound)
            .collect();
        let (path, _, _) = choose_access_path(table, ti, &local);
        let path_str = match path {
            AccessPath::SeqScan => "SEQ SCAN".to_string(),
            AccessPath::IndexProbe { column } => format!(
                "INDEX PROBE ({})",
                table.schema().column(column).name
            ),
            AccessPath::RangeScan { column } => format!(
                "RANGE SCAN ({})",
                table.schema().column(column).name
            ),
        };
        out.push_str(&format!(
            "{} {} [{} local predicate(s)]\n",
            path_str,
            select.from[ti].binding(),
            local.len()
        ));
        if ti > 0 {
            let ready = |c: &ClassifiedConjunct| {
                c.tables.len() > 1
                    && c.tables.iter().all(|t| *t <= ti)
                    && c.tables.contains(&ti)
            };
            let strategy = if conjuncts
                .iter()
                .filter(|c| ready(c))
                .any(|c| equi_join_key(&c.bound, ti).is_some())
            {
                "HASH JOIN"
            } else {
                "NESTED LOOP"
            };
            out.push_str(&format!("  joined via {strategy}\n"));
        }
    }
    if !select.group_by.is_empty()
        || select.items.iter().any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.has_aggregate()))
    {
        out.push_str("AGGREGATE\n");
    }
    if !select.order_by.is_empty() {
        out.push_str("SORT\n");
    }
    if select.limit.is_some() {
        out.push_str("LIMIT\n");
    }
    Ok(out)
}

/// Plain (non-aggregate) projection, including ORDER BY on source rows.
fn project_plain(
    select: &Select,
    ctx: &BindContext,
    params: &[Value],
    tables: &[&Table],
    joined: &[Vec<&Row>],
) -> DbResult<(Vec<String>, Vec<Row>)> {
    // Expand items into (name, evaluator).
    enum Proj {
        Col(usize, usize, String),
        Expr(BoundExpr, String),
    }
    let mut projs: Vec<Proj> = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Star => {
                for (ti, t) in tables.iter().enumerate() {
                    for (ci, col) in t.schema().columns().iter().enumerate() {
                        projs.push(Proj::Col(ti, ci, col.name.clone()));
                    }
                }
            }
            SelectItem::QualifiedStar(name) => {
                let ti = ctx
                    .tables
                    .iter()
                    .position(|(n, _)| n.eq_ignore_ascii_case(name))
                    .ok_or_else(|| DbError::UnknownTable(name.clone()))?;
                for (ci, col) in ctx.tables[ti].1.columns().iter().enumerate() {
                    projs.push(Proj::Col(ti, ci, col.name.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| expr.to_string());
                projs.push(Proj::Expr(bind(expr, ctx, params)?, name));
            }
        }
    }

    // ORDER BY on source rows (keys need not be projected).
    let mut combos: Vec<&Vec<&Row>> = joined.iter().collect();
    if !select.order_by.is_empty() {
        let keys: Vec<(BoundExpr, bool)> = select
            .order_by
            .iter()
            .map(|k| Ok((bind(&k.expr, ctx, params)?, k.ascending)))
            .collect::<DbResult<_>>()?;
        combos.sort_by(|a, b| {
            for (k, asc) in &keys {
                let ka = k.eval(a);
                let kb = k.eval(b);
                let ord = ka.cmp(&kb);
                let ord = if *asc { ord } else { ord.reverse() };
                if !ord.is_eq() {
                    return ord;
                }
            }
            // Tie-break on the full source-row content so an ordered result
            // is a pure function of the row multiset: physical slot order —
            // which shifts when a rollback re-appends deleted rows — must
            // never decide which of two key-tied rows a LIMIT keeps.
            a.iter()
                .flat_map(|r| r.iter())
                .cmp(b.iter().flat_map(|r| r.iter()))
        });
    }

    let columns = projs
        .iter()
        .map(|p| match p {
            Proj::Col(_, _, n) | Proj::Expr(_, n) => n.clone(),
        })
        .collect();
    let rows = combos
        .iter()
        .map(|combo| {
            projs
                .iter()
                .map(|p| match p {
                    Proj::Col(ti, ci, _) => combo[*ti][*ci].clone(),
                    Proj::Expr(e, _) => e.eval(combo),
                })
                .collect()
        })
        .collect();
    Ok((columns, rows))
}

/// Position of a grouped column in the output row, if projected.
fn output_column_index(select: &Select, ctx: &BindContext, target: &ColumnRef) -> Option<usize> {
    let t = ctx.resolve(target).ok()?;
    for (i, item) in select.items.iter().enumerate() {
        if let SelectItem::Expr {
            expr: Expr::Column(c),
            ..
        } = item
        {
            if ctx.resolve(c).ok() == Some(t) {
                return Some(i);
            }
        }
    }
    None
}

/// GROUP BY / aggregate projection.
fn project_aggregate(
    select: &Select,
    ctx: &BindContext,
    params: &[Value],
    joined: &[Vec<&Row>],
) -> DbResult<(Vec<String>, Vec<Row>)> {
    // Resolve group keys.
    let group_cols: Vec<(usize, usize)> = select
        .group_by
        .iter()
        .map(|c| ctx.resolve(c))
        .collect::<DbResult<_>>()?;

    // Classify items: each is either a grouped column or an aggregate.
    enum AggItem {
        GroupKey(usize, String), // index into group_cols
        Agg {
            func: crate::sql::ast::AggFunc,
            arg: Option<BoundExpr>,
            distinct: bool,
            name: String,
        },
    }
    let mut items = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| expr.to_string());
                match expr {
                    Expr::Agg {
                        func,
                        arg,
                        distinct,
                    } => items.push(AggItem::Agg {
                        func: *func,
                        arg: match arg {
                            Some(a) => Some(bind(a, ctx, params)?),
                            None => None,
                        },
                        distinct: *distinct,
                        name,
                    }),
                    Expr::Column(c) => {
                        let rc = ctx.resolve(c)?;
                        let gi = group_cols.iter().position(|g| *g == rc).ok_or_else(|| {
                            DbError::Unsupported(format!(
                                "column {c} must appear in GROUP BY or an aggregate"
                            ))
                        })?;
                        items.push(AggItem::GroupKey(gi, name));
                    }
                    _ => {
                        return Err(DbError::Unsupported(
                            "non-column, non-aggregate select item in aggregate query".into(),
                        ))
                    }
                }
            }
            _ => {
                return Err(DbError::Unsupported(
                    "* projection in aggregate query".into(),
                ))
            }
        }
    }

    // Group. With no GROUP BY there is exactly one (possibly empty) group.
    type Key = Vec<Value>;
    let mut groups: Vec<(Key, Vec<AggState>)> = Vec::new();
    let mut index: HashMap<Key, usize> = HashMap::new();

    let make_states = || -> Vec<AggState> {
        items
            .iter()
            .filter_map(|i| match i {
                AggItem::Agg { func, distinct, .. } => Some(AggState::new(*func, *distinct)),
                _ => None,
            })
            .collect()
    };

    if group_cols.is_empty() {
        groups.push((Vec::new(), make_states()));
        index.insert(Vec::new(), 0);
    }

    for combo in joined {
        let key: Key = group_cols
            .iter()
            .map(|(t, c)| combo[*t][*c].clone())
            .collect();
        let gi = *index.entry(key.clone()).or_insert_with(|| {
            groups.push((key, make_states()));
            groups.len() - 1
        });
        let states = &mut groups[gi].1;
        let mut si = 0;
        for item in &items {
            if let AggItem::Agg { arg, .. } = item {
                match arg {
                    Some(e) => {
                        let v = e.eval(combo);
                        states[si].update(Some(&v));
                    }
                    None => states[si].update(None),
                }
                si += 1;
            }
        }
    }

    let columns: Vec<String> = items
        .iter()
        .map(|i| match i {
            AggItem::GroupKey(_, n) | AggItem::Agg { name: n, .. } => n.clone(),
        })
        .collect();
    let mut rows: Vec<Row> = groups
        .iter()
        .map(|(key, states)| {
            let mut si = 0;
            items
                .iter()
                .map(|i| match i {
                    AggItem::GroupKey(gi, _) => key[*gi].clone(),
                    AggItem::Agg { .. } => {
                        let v = states[si].finish();
                        si += 1;
                        v
                    }
                })
                .collect()
        })
        .collect();

    // HAVING: evaluated over the projected output. Every aggregate or
    // column term in the predicate must match a projected item (textually
    // or by alias); matched terms become references to the output columns.
    if let Some(having) = &select.having {
        let rewritten = having.transform(&|node| {
            let text = node.to_string();
            for (i, item) in select.items.iter().enumerate() {
                if let SelectItem::Expr { expr, alias } = item {
                    if expr.to_string() == text
                        || alias
                            .as_deref()
                            .is_some_and(|a| a.eq_ignore_ascii_case(&text))
                    {
                        return Some(Expr::Column(ColumnRef {
                            table: None,
                            column: columns[i].clone(),
                        }));
                    }
                }
            }
            None
        });
        if rewritten.has_aggregate() {
            return Err(DbError::Unsupported(
                "HAVING terms must be projected in the SELECT list".into(),
            ));
        }
        let out_schema = std::sync::Arc::new(crate::schema::Schema::new(
            columns
                .iter()
                .map(|c| {
                    crate::schema::ColumnDef::new(c.clone(), crate::schema::ColType::Float)
                })
                .collect(),
        ));
        let ctx = BindContext::new(vec![("<output>".to_string(), out_schema)]);
        let pred = bind(&rewritten, &ctx, params)?;
        rows.retain(|row| pred.eval_predicate(&[row]));
    }
    Ok((columns, rows))
}

//! SQL front-end: lexer, parser, and AST.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod rewrite;

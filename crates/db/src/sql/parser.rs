//! Recursive-descent parser for the SQL subset described in [`crate::sql::ast`].

use crate::error::{DbError, DbResult};
use crate::schema::ColType;
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, SpannedToken, Token};
use crate::value::Value;

/// Parse a single SQL statement (an optional trailing `;` is allowed).
pub fn parse(input: &str) -> DbResult<Statement> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_semicolons();
    if !p.at_end() {
        return Err(p.err("trailing tokens after statement"));
    }
    Ok(stmt)
}

/// Parse a query that must be a SELECT (convenience for the invalidator).
pub fn parse_select(input: &str) -> DbResult<Select> {
    match parse(input)? {
        Statement::Select(s) => Ok(s),
        other => Err(DbError::Parse(format!(
            "expected SELECT, got {other:?}"
        ))),
    }
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|t| &t.token)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: &str) -> DbError {
        match self.tokens.get(self.pos) {
            Some(t) => DbError::Parse(format!("{msg} (at byte {}, near {:?})", t.offset, t.token)),
            None => DbError::Parse(format!("{msg} (at end of input)")),
        }
    }

    fn eat_semicolons(&mut self) {
        while matches!(self.peek(), Some(Token::Semicolon)) {
            self.pos += 1;
        }
    }

    /// Consume a keyword (case-insensitive identifier) or fail.
    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected keyword {kw}")))
        }
    }

    /// Consume a keyword if present; report whether it was.
    fn accept_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Token) -> DbResult<()> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {tok:?}")))
        }
    }

    fn accept(&mut self, tok: Token) -> bool {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> DbResult<String> {
        match self.peek() {
            Some(Token::Ident(_)) => match self.next() {
                Some(Token::Ident(s)) => Ok(s),
                _ => unreachable!(),
            },
            _ => Err(self.err("expected identifier")),
        }
    }

    // -- statements ---------------------------------------------------------

    fn statement(&mut self) -> DbResult<Statement> {
        match self.peek() {
            Some(t) if t.is_kw("SELECT") => Ok(Statement::Select(self.select()?)),
            Some(t) if t.is_kw("INSERT") => self.insert(),
            Some(t) if t.is_kw("DELETE") => self.delete(),
            Some(t) if t.is_kw("UPDATE") => self.update(),
            Some(t) if t.is_kw("CREATE") => self.create_table(),
            Some(t) if t.is_kw("DROP") => {
                self.pos += 1;
                self.expect_kw("TABLE")?;
                Ok(Statement::DropTable(self.ident()?))
            }
            _ => Err(self.err("expected SELECT, INSERT, DELETE, UPDATE, CREATE or DROP")),
        }
    }

    fn select(&mut self) -> DbResult<Select> {
        self.expect_kw("SELECT")?;
        let distinct = self.accept_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.accept(Token::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        // `JOIN … ON` predicates are folded into WHERE: for inner joins the
        // semantics are identical to comma-join + conjunct, which is what
        // the executor and the invalidator's analysis operate on.
        let mut join_predicates: Vec<Expr> = Vec::new();
        loop {
            let table = self.ident()?;
            // optional alias: bare identifier that is not a clause keyword
            let has_alias =
                matches!(self.peek(), Some(Token::Ident(s)) if !is_clause_kw(s));
            let alias = if has_alias { Some(self.ident()?) } else { None };
            from.push(TableRef { table, alias });
            let inner = self.accept_kw("INNER");
            if self.accept_kw("JOIN") {
                let table = self.ident()?;
                let has_alias =
                    matches!(self.peek(), Some(Token::Ident(s)) if !is_clause_kw(s));
                let alias = if has_alias { Some(self.ident()?) } else { None };
                from.push(TableRef { table, alias });
                self.expect_kw("ON")?;
                join_predicates.push(self.expr()?);
                // further JOINs chain from here
                while self.peek().is_some_and(|t| t.is_kw("JOIN"))
                    || self.peek().is_some_and(|t| t.is_kw("INNER"))
                {
                    self.accept_kw("INNER");
                    self.expect_kw("JOIN")?;
                    let table = self.ident()?;
                    let has_alias =
                        matches!(self.peek(), Some(Token::Ident(s)) if !is_clause_kw(s));
                    let alias = if has_alias { Some(self.ident()?) } else { None };
                    from.push(TableRef { table, alias });
                    self.expect_kw("ON")?;
                    join_predicates.push(self.expr()?);
                }
            } else if inner {
                return Err(self.err("expected JOIN after INNER"));
            }
            if !self.accept(Token::Comma) {
                break;
            }
        }
        let mut where_clause = if self.accept_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        if !join_predicates.is_empty() {
            let joined = Expr::conjoin(join_predicates).expect("non-empty");
            where_clause = Some(match where_clause {
                Some(w) => Expr::And(Box::new(joined), Box::new(w)),
                None => joined,
            });
        }
        let mut group_by = Vec::new();
        if self.accept_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.column_ref()?);
                if !self.accept(Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.accept_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.accept_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.accept_kw("DESC") {
                    false
                } else {
                    self.accept_kw("ASC");
                    true
                };
                order_by.push(OrderKey { expr, ascending });
                if !self.accept(Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.accept_kw("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as u64),
                _ => return Err(self.err("expected non-negative integer after LIMIT")),
            }
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> DbResult<SelectItem> {
        if self.accept(Token::StarTok) {
            return Ok(SelectItem::Star);
        }
        // t.* form
        if let (Some(Token::Ident(_)), Some(Token::Dot)) = (self.peek(), self.peek2()) {
            if self.tokens.get(self.pos + 2).map(|t| &t.token) == Some(&Token::StarTok) {
                let t = self.ident()?;
                self.expect(Token::Dot)?;
                self.expect(Token::StarTok)?;
                return Ok(SelectItem::QualifiedStar(t));
            }
        }
        let expr = self.expr()?;
        let alias = if self.accept_kw("AS") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn insert(&mut self) -> DbResult<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let columns = if self.accept(Token::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.accept(Token::Comma) {
                    break;
                }
            }
            self.expect(Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.accept(Token::Comma) {
                    break;
                }
            }
            self.expect(Token::RParen)?;
            rows.push(row);
            if !self.accept(Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(Insert {
            table,
            columns,
            rows,
        }))
    }

    fn delete(&mut self) -> DbResult<Statement> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.accept_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete {
            table,
            where_clause,
        }))
    }

    fn update(&mut self) -> DbResult<Statement> {
        self.expect_kw("UPDATE")?;
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(Token::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.accept(Token::Comma) {
                break;
            }
        }
        let where_clause = if self.accept_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            assignments,
            where_clause,
        }))
    }

    fn create_table(&mut self) -> DbResult<Statement> {
        self.expect_kw("CREATE")?;
        self.expect_kw("TABLE")?;
        let table = self.ident()?;
        self.expect(Token::LParen)?;
        let mut columns = Vec::new();
        let mut indexes = Vec::new();
        let mut range_indexes = Vec::new();
        loop {
            if self.accept_kw("RANGE") {
                self.expect_kw("INDEX")?;
                self.expect(Token::LParen)?;
                range_indexes.push(self.ident()?);
                self.expect(Token::RParen)?;
            } else if self.accept_kw("INDEX") {
                self.expect(Token::LParen)?;
                indexes.push(self.ident()?);
                self.expect(Token::RParen)?;
            } else {
                let name = self.ident()?;
                let ty_name = self.ident()?;
                let ty = match ty_name.to_ascii_uppercase().as_str() {
                    "INT" | "INTEGER" | "BIGINT" => ColType::Int,
                    "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" => ColType::Float,
                    "TEXT" | "VARCHAR" | "STRING" | "CHAR" => ColType::Str,
                    other => {
                        return Err(DbError::Parse(format!("unknown column type {other}")))
                    }
                };
                // tolerate VARCHAR(255)-style length args
                if self.accept(Token::LParen) {
                    match self.next() {
                        Some(Token::Int(_)) => {}
                        _ => return Err(self.err("expected length after type(")),
                    }
                    self.expect(Token::RParen)?;
                }
                columns.push((name, ty));
            }
            if !self.accept(Token::Comma) {
                break;
            }
        }
        self.expect(Token::RParen)?;
        Ok(Statement::CreateTable(CreateTable {
            table,
            columns,
            indexes,
            range_indexes,
        }))
    }

    // -- expressions --------------------------------------------------------

    fn expr(&mut self) -> DbResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<Expr> {
        let mut left = self.and_expr()?;
        while self.accept_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> DbResult<Expr> {
        let mut left = self.not_expr()?;
        while self.accept_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> DbResult<Expr> {
        if self.accept_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> DbResult<Expr> {
        let left = self.additive()?;

        // IS [NOT] NULL
        if self.accept_kw("IS") {
            let negated = self.accept_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        // [NOT] BETWEEN / IN / LIKE
        let negated = if self.peek().is_some_and(|t| t.is_kw("NOT"))
            && self.peek2().is_some_and(|t| {
                t.is_kw("BETWEEN") || t.is_kw("IN") || t.is_kw("LIKE")
            }) {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.accept_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.accept_kw("IN") {
            self.expect(Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.additive()?);
                if !self.accept(Token::Comma) {
                    break;
                }
            }
            self.expect(Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.accept_kw("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.err("expected BETWEEN, IN or LIKE after NOT"));
        }

        let op = match self.peek() {
            Some(Token::Eq) => Some(CmpOp::Eq),
            Some(Token::NotEq) => Some(CmpOp::NotEq),
            Some(Token::Lt) => Some(CmpOp::Lt),
            Some(Token::LtEq) => Some(CmpOp::LtEq),
            Some(Token::Gt) => Some(CmpOp::Gt),
            Some(Token::GtEq) => Some(CmpOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::Cmp {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> DbResult<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Arith {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> DbResult<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::StarTok) => ArithOp::Mul,
                Some(Token::Slash) => ArithOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Arith {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> DbResult<Expr> {
        if self.accept(Token::Minus) {
            // Fold negation into numeric literals; otherwise 0 - e.
            return Ok(match self.unary()? {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                e => Expr::Arith {
                    left: Box::new(Expr::Literal(Value::Int(0))),
                    op: ArithOp::Sub,
                    right: Box::new(e),
                },
            });
        }
        if self.accept(Token::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> DbResult<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(i)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Str(s)))
            }
            Some(Token::Param(n)) => {
                self.pos += 1;
                Ok(Expr::Param(n))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                // NULL literal
                if name.eq_ignore_ascii_case("NULL") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Null));
                }
                // Aggregate functions
                let agg = match name.to_ascii_uppercase().as_str() {
                    "COUNT" => Some(AggFunc::Count),
                    "SUM" => Some(AggFunc::Sum),
                    "AVG" => Some(AggFunc::Avg),
                    "MIN" => Some(AggFunc::Min),
                    "MAX" => Some(AggFunc::Max),
                    _ => None,
                };
                if let Some(func) = agg {
                    if self.peek2() == Some(&Token::LParen) {
                        self.pos += 2; // ident + (
                        if self.accept(Token::StarTok) {
                            self.expect(Token::RParen)?;
                            return Ok(Expr::Agg {
                                func,
                                arg: None,
                                distinct: false,
                            });
                        }
                        let distinct = self.accept_kw("DISTINCT");
                        let arg = self.expr()?;
                        self.expect(Token::RParen)?;
                        return Ok(Expr::Agg {
                            func,
                            arg: Some(Box::new(arg)),
                            distinct,
                        });
                    }
                }
                // Scalar function calls: NAME(args…).
                if let Some(func) = ScalarFunc::by_name(&name) {
                    if self.peek2() == Some(&Token::LParen) {
                        self.pos += 2; // ident + (
                        let mut args = Vec::new();
                        if !self.accept(Token::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.accept(Token::Comma) {
                                    break;
                                }
                            }
                            self.expect(Token::RParen)?;
                        }
                        return Ok(Expr::Func { func, args });
                    }
                }
                Ok(Expr::Column(self.column_ref()?))
            }
            _ => Err(self.err("expected expression")),
        }
    }

    fn column_ref(&mut self) -> DbResult<ColumnRef> {
        let first = self.ident()?;
        if self.accept(Token::Dot) {
            let col = self.ident()?;
            Ok(ColumnRef {
                table: Some(first),
                column: col,
            })
        } else {
            Ok(ColumnRef {
                table: None,
                column: first,
            })
        }
    }
}

/// Keywords that can follow a table ref and therefore cannot be aliases.
fn is_clause_kw(s: &str) -> bool {
    const CLAUSES: &[&str] = &[
        "WHERE", "GROUP", "ORDER", "LIMIT", "ON", "AND", "OR", "SET", "VALUES", "INNER", "JOIN",
        "LEFT", "RIGHT", "UNION", "HAVING", "AS",
    ];
    CLAUSES.iter().any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_query() {
        // Query1 from Example 4.1 of the paper.
        let sql = "select Car.maker, Car.model, Car.price, Mileage.EPA \
                   from Car, Mileage \
                   where Car.model = Mileage.model and Car.price < 20000;";
        let stmt = parse(sql).unwrap();
        let Statement::Select(s) = stmt else {
            panic!("expected select")
        };
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.items.len(), 4);
        let w = s.where_clause.unwrap();
        assert_eq!(w.conjuncts().len(), 2);
    }

    #[test]
    fn parses_paper_polling_query() {
        let sql = "select Mileage.model, Mileage.EPA from Mileage where 'Avalon' = Mileage.model;";
        let s = parse_select(sql).unwrap();
        assert_eq!(s.from[0].table, "Mileage");
        match s.where_clause.unwrap() {
            Expr::Cmp { left, op, .. } => {
                assert_eq!(op, CmpOp::Eq);
                assert_eq!(*left, Expr::Literal(Value::Str("Avalon".into())));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_parameterized_query_type() {
        // Query type syntax from §2.3.2.
        let s = parse_select("SELECT * FROM R WHERE R.A > $1 and R.B < 200").unwrap();
        let w = s.where_clause.unwrap();
        assert_eq!(w.params(), vec![1]);
    }

    #[test]
    fn alias_parsing() {
        let s = parse_select("SELECT c.model FROM Car c WHERE c.price < 10").unwrap();
        assert_eq!(s.from[0].alias.as_deref(), Some("c"));
        assert_eq!(s.from[0].binding(), "c");
    }

    #[test]
    fn aggregates_and_group_by() {
        let s = parse_select(
            "SELECT maker, COUNT(*), AVG(price) FROM Car GROUP BY maker ORDER BY maker LIMIT 5",
        )
        .unwrap();
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.limit, Some(5));
        assert!(matches!(
            s.items[1],
            SelectItem::Expr {
                expr: Expr::Agg { arg: None, .. },
                ..
            }
        ));
    }

    #[test]
    fn insert_multi_row() {
        let st = parse("INSERT INTO Car (maker, model, price) VALUES ('a','b',1), ('c','d',2)")
            .unwrap();
        let Statement::Insert(i) = st else {
            panic!()
        };
        assert_eq!(i.rows.len(), 2);
        assert_eq!(i.columns.as_ref().unwrap().len(), 3);
    }

    #[test]
    fn update_and_delete() {
        let st = parse("UPDATE Car SET price = price * 2, maker='x' WHERE model = 'm'").unwrap();
        let Statement::Update(u) = st else {
            panic!()
        };
        assert_eq!(u.assignments.len(), 2);
        let st = parse("DELETE FROM Car").unwrap();
        assert!(matches!(
            st,
            Statement::Delete(Delete {
                where_clause: None,
                ..
            })
        ));
    }

    #[test]
    fn create_table_with_index_and_varchar_len() {
        let st =
            parse("CREATE TABLE t (id INT, name VARCHAR(64), price FLOAT, INDEX(id))").unwrap();
        let Statement::CreateTable(c) = st else {
            panic!()
        };
        assert_eq!(c.columns.len(), 3);
        assert_eq!(c.indexes, vec!["id".to_string()]);
        assert!(c.range_indexes.is_empty());
    }

    #[test]
    fn create_table_with_range_index() {
        let st = parse("CREATE TABLE t (id INT, price FLOAT, INDEX(id), RANGE INDEX(price))")
            .unwrap();
        let Statement::CreateTable(c) = st else {
            panic!()
        };
        assert_eq!(c.indexes, vec!["id".to_string()]);
        assert_eq!(c.range_indexes, vec!["price".to_string()]);
        // Round-trips through Display.
        let rebuilt = Statement::CreateTable(c);
        let again = parse(&rebuilt.to_sql()).unwrap();
        assert_eq!(rebuilt, again);
    }

    #[test]
    fn between_in_like_not() {
        let s = parse_select(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1,2,3) AND c LIKE 'x%' AND d NOT IN (4)",
        )
        .unwrap();
        assert_eq!(s.where_clause.unwrap().conjuncts().len(), 4);
    }

    #[test]
    fn precedence_or_lower_than_and() {
        let s = parse_select("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        match s.where_clause.unwrap() {
            Expr::Or(_, right) => assert!(matches!(*right, Expr::And(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_literals_fold() {
        let s = parse_select("SELECT * FROM t WHERE a > -5 AND b < -2.5").unwrap();
        let w = s.where_clause.unwrap();
        let cs = w.conjuncts();
        assert!(matches!(
            cs[0],
            Expr::Cmp { right, .. } if **right == Expr::Literal(Value::Int(-5))
        ));
    }

    #[test]
    fn arith_precedence() {
        let s = parse_select("SELECT a + b * c FROM t").unwrap();
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        match expr {
            Expr::Arith { op, right, .. } => {
                assert_eq!(*op, ArithOp::Add);
                assert!(matches!(
                    **right,
                    Expr::Arith {
                        op: ArithOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn round_trip_display_reparse() {
        let cases = [
            "SELECT * FROM Car WHERE Car.price < 20000",
            "SELECT DISTINCT maker FROM Car c WHERE c.model = 'Eclipse' ORDER BY maker DESC LIMIT 3",
            "SELECT Car.maker, COUNT(*) FROM Car, Mileage WHERE Car.model = Mileage.model GROUP BY Car.maker",
            "INSERT INTO t (a, b) VALUES (1, 'x''y')",
            "DELETE FROM t WHERE a BETWEEN 1 AND 2",
            "UPDATE t SET a = (a + 1) WHERE b IS NOT NULL",
            "SELECT * FROM R WHERE R.A > $1 AND R.B < 200",
            "SELECT maker, COUNT(*) FROM Car GROUP BY maker HAVING COUNT(*) > 2",
        ];
        for sql in cases {
            let ast1 = parse(sql).unwrap();
            let rendered = ast1.to_sql();
            let ast2 = parse(&rendered)
                .unwrap_or_else(|e| panic!("re-parse of {rendered:?} failed: {e}"));
            assert_eq!(ast1, ast2, "round trip failed for {sql}");
        }
    }

    #[test]
    fn inner_join_folds_on_into_where() {
        let s = parse_select(
            "SELECT c.maker FROM Car c INNER JOIN Mileage m ON c.model = m.model \
             WHERE c.price < 5",
        )
        .unwrap();
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[1].binding(), "m");
        let w = s.where_clause.unwrap();
        assert_eq!(w.conjuncts().len(), 2, "ON predicate AND WHERE predicate");
    }

    #[test]
    fn join_without_on_is_an_error() {
        assert!(parse("SELECT * FROM a JOIN b").is_err());
        assert!(parse("SELECT * FROM a INNER b ON a.x = b.x").is_err());
    }

    #[test]
    fn having_parses_after_group_by() {
        let s = parse_select(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a",
        )
        .unwrap();
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 1);
    }

    #[test]
    fn error_cases() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("FROBNICATE").is_err());
        assert!(parse("SELECT * FROM t extra garbage !").is_err());
    }
}

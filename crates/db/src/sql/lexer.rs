//! Hand-rolled SQL lexer.
//!
//! Produces a flat token stream with byte offsets for error messages.
//! Keywords are recognized case-insensitively; identifiers keep their
//! original spelling (column lookup is case-insensitive anyway).

use crate::error::{DbError, DbResult};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are matched by the parser via
    /// [`Token::is_kw`], so quoted identifiers are unnecessary for our subset).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal with quotes removed and `''` unescaped.
    Str(String),
    /// Positional parameter: `$3` → `Param(3)`; `?` tokens are numbered
    /// left-to-right starting at 1.
    Param(usize),
    /// `=`
    Eq,
    /// `!=` / `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*` (projection star or multiplication).
    StarTok,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
}

impl Token {
    /// Case-insensitive keyword check against an identifier token.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// A token plus the byte offset where it started.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Byte offset where the token started.
    pub offset: usize,
}

/// Tokenize `input` into a vector of spanned tokens.
pub fn tokenize(input: &str) -> DbResult<Vec<SpannedToken>> {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(input.len() / 4 + 4);
    let mut i = 0usize;
    let mut anon_param = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // SQL line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(SpannedToken {
                    token: Token::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                out.push(SpannedToken {
                    token: Token::RParen,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                out.push(SpannedToken {
                    token: Token::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' if !(i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit()) => {
                out.push(SpannedToken {
                    token: Token::Dot,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                out.push(SpannedToken {
                    token: Token::Semicolon,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                out.push(SpannedToken {
                    token: Token::Plus,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                out.push(SpannedToken {
                    token: Token::Minus,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                out.push(SpannedToken {
                    token: Token::StarTok,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                out.push(SpannedToken {
                    token: Token::Slash,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                out.push(SpannedToken {
                    token: Token::Eq,
                    offset: start,
                });
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SpannedToken {
                        token: Token::NotEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(DbError::Parse(format!("unexpected '!' at byte {start}")));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SpannedToken {
                        token: Token::LtEq,
                        offset: start,
                    });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(SpannedToken {
                        token: Token::NotEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(SpannedToken {
                        token: Token::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SpannedToken {
                        token: Token::GtEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(SpannedToken {
                        token: Token::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '?' => {
                anon_param += 1;
                out.push(SpannedToken {
                    token: Token::Param(anon_param),
                    offset: start,
                });
                i += 1;
            }
            '$' => {
                i += 1;
                let d0 = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if d0 == i {
                    return Err(DbError::Parse(format!(
                        "expected digits after '$' at byte {start}"
                    )));
                }
                let n: usize = input[d0..i]
                    .parse()
                    .map_err(|_| DbError::Parse(format!("bad parameter index at byte {start}")))?;
                if n == 0 {
                    return Err(DbError::Parse("parameter indexes are 1-based".into()));
                }
                out.push(SpannedToken {
                    token: Token::Param(n),
                    offset: start,
                });
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(DbError::Parse(format!(
                            "unterminated string starting at byte {start}"
                        )));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Strings are UTF-8; copy char-wise.
                        let ch_str = &input[i..];
                        let ch = ch_str.chars().next().unwrap();
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
                out.push(SpannedToken {
                    token: Token::Str(s),
                    offset: start,
                });
            }
            c if c.is_ascii_digit() || (c == '.' && i + 1 < bytes.len()) => {
                let mut is_float = c == '.';
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || (bytes[i] == b'.' && !is_float))
                {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                // exponent
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let save = i;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    if i < bytes.len() && bytes[i].is_ascii_digit() {
                        is_float = true;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    } else {
                        i = save; // 'e' begins an identifier, not an exponent
                    }
                }
                let text = &input[start..i];
                let token = if is_float {
                    Token::Float(text.parse().map_err(|_| {
                        DbError::Parse(format!("bad float literal '{text}' at byte {start}"))
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| {
                        DbError::Parse(format!("bad int literal '{text}' at byte {start}"))
                    })?)
                };
                out.push(SpannedToken {
                    token,
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                i += 1;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(SpannedToken {
                    token: Token::Ident(input[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(DbError::Parse(format!(
                    "unexpected character '{other}' at byte {start}"
                )));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_simple_select() {
        let t = toks("SELECT * FROM Car WHERE price >= 10.5");
        assert_eq!(t[0], Token::Ident("SELECT".into()));
        assert_eq!(t[1], Token::StarTok);
        assert_eq!(t[5], Token::Ident("price".into()));
        assert_eq!(t[6], Token::GtEq);
        assert_eq!(t[7], Token::Float(10.5));
    }

    #[test]
    fn string_escapes_and_unicode() {
        assert_eq!(toks("'O''Hara'"), vec![Token::Str("O'Hara".into())]);
        assert_eq!(toks("'héllo'"), vec![Token::Str("héllo".into())]);
    }

    #[test]
    fn params_dollar_and_question() {
        assert_eq!(
            toks("$2 ? ? $1"),
            vec![
                Token::Param(2),
                Token::Param(1),
                Token::Param(2),
                Token::Param(1)
            ]
        );
    }

    #[test]
    fn operators_all_forms() {
        assert_eq!(
            toks("<> != <= >= < > ="),
            vec![
                Token::NotEq,
                Token::NotEq,
                Token::LtEq,
                Token::GtEq,
                Token::Lt,
                Token::Gt,
                Token::Eq
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("SELECT -- everything\n1"),
            vec![Token::Ident("SELECT".into()), Token::Int(1)]
        );
    }

    #[test]
    fn negative_handled_by_parser_not_lexer() {
        assert_eq!(toks("-3"), vec![Token::Minus, Token::Int(3)]);
    }

    #[test]
    fn exponent_vs_identifier() {
        assert_eq!(toks("1e3"), vec![Token::Float(1000.0)]);
        assert_eq!(
            toks("1 e3"),
            vec![Token::Int(1), Token::Ident("e3".into())]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn qualified_name_dots() {
        assert_eq!(
            toks("Car.model"),
            vec![
                Token::Ident("Car".into()),
                Token::Dot,
                Token::Ident("model".into())
            ]
        );
    }
}

//! AST rewrites shared by the sniffer and the invalidator.
//!
//! * [`substitute_params`] — turn a query *type* plus bound values into a
//!   query *instance* (§2.3.2: `Q(V1…Vn)` → `Qᵗ(a1…an)`).
//! * [`parameterize`] — the inverse: extract the literals of a query
//!   instance, yielding the canonical query type and the parameter vector
//!   (the invalidator's query-type *discovery*, §4.1.2).

use crate::error::{DbError, DbResult};
use crate::sql::ast::{Expr, Select, SelectItem};
use crate::value::Value;

/// Replace `$n` markers in a SELECT with the given values.
pub fn substitute_params(select: &Select, params: &[Value]) -> DbResult<Select> {
    // Validate all param references first for a precise error.
    let mut max_param = 0usize;
    if let Some(w) = &select.where_clause {
        for p in w.params() {
            max_param = max_param.max(p);
        }
    }
    for item in &select.items {
        if let SelectItem::Expr { expr, .. } = item {
            for p in expr.params() {
                max_param = max_param.max(p);
            }
        }
    }
    if max_param > params.len() {
        return Err(DbError::UnboundParameter(max_param));
    }

    let subst = |e: &Expr| -> Option<Expr> {
        if let Expr::Param(i) = e {
            Some(Expr::Literal(params[*i - 1].clone()))
        } else {
            None
        }
    };
    let mut out = select.clone();
    out.where_clause = out.where_clause.as_ref().map(|w| w.transform(&subst));
    out.items = out
        .items
        .iter()
        .map(|item| match item {
            SelectItem::Expr { expr, alias } => SelectItem::Expr {
                expr: expr.transform(&subst),
                alias: alias.clone(),
            },
            other => other.clone(),
        })
        .collect();
    out.order_by = out
        .order_by
        .iter()
        .map(|k| crate::sql::ast::OrderKey {
            expr: k.expr.transform(&subst),
            ascending: k.ascending,
        })
        .collect();
    Ok(out)
}

/// Extract every literal in the WHERE clause of a query instance, replacing
/// each with a fresh `$n` marker (in pre-order). Returns the parameterized
/// SELECT and the extracted values.
///
/// Only the WHERE clause is parameterized: projection-list literals are
/// treated as structural (they don't interact with invalidation), and
/// keeping them verbatim makes the canonical type string stabler.
pub fn parameterize(select: &Select) -> (Select, Vec<Value>) {
    let mut out = select.clone();
    let mut params: Vec<Value> = Vec::new();
    if let Some(w) = &select.where_clause {
        let rewritten = parameterize_expr(w, &mut params);
        out.where_clause = Some(rewritten);
    }
    (out, params)
}

fn parameterize_expr(e: &Expr, params: &mut Vec<Value>) -> Expr {
    match e {
        Expr::Literal(v) => {
            params.push(v.clone());
            Expr::Param(params.len())
        }
        Expr::Cmp { left, op, right } => Expr::Cmp {
            left: Box::new(parameterize_expr(left, params)),
            op: *op,
            right: Box::new(parameterize_expr(right, params)),
        },
        Expr::Arith { left, op, right } => Expr::Arith {
            left: Box::new(parameterize_expr(left, params)),
            op: *op,
            right: Box::new(parameterize_expr(right, params)),
        },
        Expr::And(a, b) => Expr::And(
            Box::new(parameterize_expr(a, params)),
            Box::new(parameterize_expr(b, params)),
        ),
        Expr::Or(a, b) => Expr::Or(
            Box::new(parameterize_expr(a, params)),
            Box::new(parameterize_expr(b, params)),
        ),
        Expr::Not(x) => Expr::Not(Box::new(parameterize_expr(x, params))),
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(parameterize_expr(expr, params)),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(parameterize_expr(expr, params)),
            low: Box::new(parameterize_expr(low, params)),
            high: Box::new(parameterize_expr(high, params)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(parameterize_expr(expr, params)),
            list: list.iter().map(|x| parameterize_expr(x, params)).collect(),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(parameterize_expr(expr, params)),
            pattern: Box::new(parameterize_expr(pattern, params)),
            negated: *negated,
        },
        Expr::Func { func, args } => Expr::Func {
            func: *func,
            args: args.iter().map(|x| parameterize_expr(x, params)).collect(),
        },
        // Params in the input stay params (idempotence); columns/aggs as-is.
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_select;

    #[test]
    fn substitute_then_parameterize_round_trips() {
        let ty = parse_select("SELECT * FROM R WHERE R.A > $1 AND R.B < $2").unwrap();
        let inst = substitute_params(&ty, &[Value::Int(5), Value::Int(200)]).unwrap();
        assert_eq!(
            inst.to_string(),
            "SELECT * FROM R WHERE R.A > 5 AND R.B < 200"
        );
        let (ty2, params) = parameterize(&inst);
        assert_eq!(ty2, ty);
        assert_eq!(params, vec![Value::Int(5), Value::Int(200)]);
    }

    #[test]
    fn instances_of_same_type_collapse() {
        let a = parse_select("SELECT * FROM Car WHERE price < 20000 AND maker = 'Toyota'").unwrap();
        let b = parse_select("SELECT * FROM Car WHERE price < 99999 AND maker = 'Honda'").unwrap();
        let (ta, pa) = parameterize(&a);
        let (tb, pb) = parameterize(&b);
        assert_eq!(ta, tb, "same template");
        assert_ne!(pa, pb);
    }

    #[test]
    fn join_conditions_have_no_literals() {
        let q = parse_select(
            "SELECT Car.maker FROM Car, Mileage WHERE Car.model = Mileage.model AND Car.price < 20000",
        )
        .unwrap();
        let (ty, params) = parameterize(&q);
        assert_eq!(params, vec![Value::Int(20000)]);
        assert_eq!(
            ty.to_string(),
            "SELECT Car.maker FROM Car, Mileage WHERE Car.model = Mileage.model AND Car.price < $1"
        );
    }

    #[test]
    fn unbound_param_is_error() {
        let ty = parse_select("SELECT * FROM R WHERE R.A > $2").unwrap();
        assert!(matches!(
            substitute_params(&ty, &[Value::Int(1)]),
            Err(DbError::UnboundParameter(2))
        ));
    }

    #[test]
    fn projection_literals_left_alone() {
        let q = parse_select("SELECT 1, maker FROM Car WHERE price < 5").unwrap();
        let (ty, params) = parameterize(&q);
        assert_eq!(params.len(), 1);
        assert!(ty.to_string().starts_with("SELECT 1, maker"));
    }

    #[test]
    fn in_list_and_between_parameterized() {
        let q = parse_select("SELECT * FROM R WHERE a IN (1, 2) AND b BETWEEN 3 AND 4").unwrap();
        let (ty, params) = parameterize(&q);
        assert_eq!(
            params,
            vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)]
        );
        let back = substitute_params(&ty, &params).unwrap();
        assert_eq!(back, q);
    }
}

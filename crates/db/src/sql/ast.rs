//! Abstract syntax tree for the SQL subset.
//!
//! The subset is select-project-join with conjunctive/disjunctive predicates,
//! simple aggregates, `GROUP BY`, `ORDER BY`, `LIMIT`, plus the DML/DDL the
//! paper's workload needs (`INSERT`, `DELETE`, `UPDATE`, `CREATE TABLE`,
//! `DROP TABLE`). Every node can be rendered back to SQL text
//! ([`Statement::to_sql`]), which the invalidator uses to build polling
//! queries and canonical query-type strings.

use crate::value::Value;
use std::fmt;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `SELECT` statement.
    Select(Select),
    /// An `INSERT` statement.
    Insert(Insert),
    /// A `DELETE` statement.
    Delete(Delete),
    /// An `UPDATE` statement.
    Update(Update),
    /// A `CREATE TABLE` statement.
    CreateTable(CreateTable),
    /// A `DROP TABLE` statement (table name).
    DropTable(String),
}

/// `SELECT [DISTINCT] items FROM t1 [a1], t2 [a2] ... [WHERE ...]
/// [GROUP BY ...] [ORDER BY ...] [LIMIT n]`
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// True when `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM list (comma join).
    pub from: Vec<TableRef>,
    /// Optional WHERE predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` columns.
    pub group_by: Vec<ColumnRef>,
    /// `HAVING` predicate over the projected aggregate outputs.
    pub having: Option<Expr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// Optional `LIMIT` row count.
    pub limit: Option<u64>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// `alias.*`
    QualifiedStar(String),
    /// An expression with an optional `AS` alias.
    /// An expression with an optional `AS` alias.
    Expr {
        /// Projected expression.
        expr: Expr,
        /// Optional `AS` alias.
        alias: Option<String>,
    },
}

/// A table in the FROM list with an optional alias (comma-join syntax, as in
/// the paper's Example 4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Base table name.
    pub table: String,
    /// Optional binding alias.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is referenced by in the rest of the query.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The key expression.
    pub expr: Expr,
    /// Sort direction (`false` = DESC).
    pub ascending: bool,
}

/// A possibly-qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Base table name.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Build a reference, optionally qualified.
    pub fn new(table: Option<&str>, column: &str) -> Self {
        ColumnRef {
            table: table.map(|s| s.to_string()),
            column: column.to_string(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl CmpOp {
    /// SQL spelling of the operator/function.
    pub fn sql(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::NotEq => "<>",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
        }
    }

    /// Mirror image: `a op b` ⇔ `b op.flip() a`.
    pub fn flip(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::NotEq => CmpOp::NotEq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::LtEq => CmpOp::GtEq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::GtEq => CmpOp::LtEq,
        }
    }
}

/// Arithmetic operators (projection expressions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl ArithOp {
    /// SQL spelling of the operator/function.
    pub fn sql(&self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarFunc {
    /// `UPPER(text)` — ASCII uppercase.
    Upper,
    /// `LOWER(text)` — ASCII lowercase.
    Lower,
    /// `LENGTH(text)` — character count.
    Length,
    /// `ABS(number)` — absolute value.
    Abs,
    /// `COALESCE(a, b, …)` — first non-NULL argument.
    Coalesce,
}

impl ScalarFunc {
    /// SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            ScalarFunc::Upper => "UPPER",
            ScalarFunc::Lower => "LOWER",
            ScalarFunc::Length => "LENGTH",
            ScalarFunc::Abs => "ABS",
            ScalarFunc::Coalesce => "COALESCE",
        }
    }

    /// Look a function up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<ScalarFunc> {
        match name.to_ascii_uppercase().as_str() {
            "UPPER" => Some(ScalarFunc::Upper),
            "LOWER" => Some(ScalarFunc::Lower),
            "LENGTH" => Some(ScalarFunc::Length),
            "ABS" => Some(ScalarFunc::Abs),
            "COALESCE" => Some(ScalarFunc::Coalesce),
            _ => None,
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

impl AggFunc {
    /// SQL spelling of the operator/function.
    pub fn sql(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// Scalar/boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Constant value.
    Literal(Value),
    /// Positional parameter `$n` (1-based) or `?` (assigned left-to-right).
    Param(usize),
    /// Comparison `left op right`.
    Cmp {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Arithmetic `left op right`.
    Arith {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: ArithOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Boolean conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Boolean disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Boolean negation.
    Not(Box<Expr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Inner expression.
        expr: Box<Expr>,
        /// True for the `NOT` form.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Inner expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for the `NOT` form.
        negated: bool,
    },
    /// `expr [NOT] IN (â¦)`.
    InList {
        /// Inner expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// True for the `NOT` form.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Inner expression.
        expr: Box<Expr>,
        /// LIKE pattern (`%`, `_`).
        pattern: Box<Expr>,
        /// True for the `NOT` form.
        negated: bool,
    },
    /// Aggregate call; `arg == None` means `COUNT(*)`.
    Agg {
        /// Aggregate function.
        func: AggFunc,
        /// Aggregate argument (`None` = `COUNT(*)`).
        arg: Option<Box<Expr>>,
        /// True for `DISTINCT` aggregation.
        distinct: bool,
    },
    /// Scalar function call, e.g. `UPPER(maker)`.
    Func {
        /// The function.
        func: ScalarFunc,
        /// Arguments, in order.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Boolean AND of an iterator of expressions, `None` if empty.
    pub fn conjoin(exprs: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        exprs
            .into_iter()
            .reduce(|a, b| Expr::And(Box::new(a), Box::new(b)))
    }

    /// Split a conjunction into its top-level conjuncts (flattening nested
    /// ANDs). ORs are kept intact as single conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Collect every column referenced anywhere in the expression.
    pub fn columns(&self) -> Vec<&ColumnRef> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Column(c) = e {
                out.push(c);
            }
        });
        out
    }

    /// Collect every parameter index used.
    pub fn params(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Param(i) = e {
                out.push(*i);
            }
        });
        out
    }

    /// True if the expression contains an aggregate call.
    pub fn has_aggregate(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Agg { .. }) {
                found = true;
            }
        });
        found
    }

    /// Pre-order traversal.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Not(e) => e.visit(f),
            Expr::IsNull { expr, .. } => expr.visit(f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.visit(f);
                }
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Column(_) | Expr::Literal(_) | Expr::Param(_) => {}
        }
    }

    /// Structure-preserving transformation: rebuild the expression, replacing
    /// each node by `f(node)` bottom-up where `f` returns `Some`.
    pub fn transform(&self, f: &impl Fn(&Expr) -> Option<Expr>) -> Expr {
        let rebuilt = match self {
            Expr::Cmp { left, op, right } => Expr::Cmp {
                left: Box::new(left.transform(f)),
                op: *op,
                right: Box::new(right.transform(f)),
            },
            Expr::Arith { left, op, right } => Expr::Arith {
                left: Box::new(left.transform(f)),
                op: *op,
                right: Box::new(right.transform(f)),
            },
            Expr::And(a, b) => Expr::And(Box::new(a.transform(f)), Box::new(b.transform(f))),
            Expr::Or(a, b) => Expr::Or(Box::new(a.transform(f)), Box::new(b.transform(f))),
            Expr::Not(e) => Expr::Not(Box::new(e.transform(f))),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.transform(f)),
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(expr.transform(f)),
                low: Box::new(low.transform(f)),
                high: Box::new(high.transform(f)),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.transform(f)),
                list: list.iter().map(|e| e.transform(f)).collect(),
                negated: *negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.transform(f)),
                pattern: Box::new(pattern.transform(f)),
                negated: *negated,
            },
            Expr::Agg {
                func,
                arg,
                distinct,
            } => Expr::Agg {
                func: *func,
                arg: arg.as_ref().map(|a| Box::new(a.transform(f))),
                distinct: *distinct,
            },
            Expr::Func { func, args } => Expr::Func {
                func: *func,
                args: args.iter().map(|a| a.transform(f)).collect(),
            },
            leaf => leaf.clone(),
        };
        f(&rebuilt).unwrap_or(rebuilt)
    }
}

/// `INSERT INTO t [(cols)] VALUES (…), (…)`
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Base table name.
    pub table: String,
    /// Column list.
    pub columns: Option<Vec<String>>,
    /// Rows of value expressions.
    pub rows: Vec<Vec<Expr>>,
}

/// `DELETE FROM t [WHERE …]`
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Base table name.
    pub table: String,
    /// Optional WHERE predicate.
    pub where_clause: Option<Expr>,
}

/// `UPDATE t SET c = e, … [WHERE …]`
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Base table name.
    pub table: String,
    /// `SET column = expr` pairs.
    pub assignments: Vec<(String, Expr)>,
    /// Optional WHERE predicate.
    pub where_clause: Option<Expr>,
}

/// `CREATE TABLE t (c1 TYPE, …)` with optional `INDEX(col)` (hash) and
/// `RANGE INDEX(col)` (ordered) entries.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Base table name.
    pub table: String,
    /// Column list.
    pub columns: Vec<(String, crate::schema::ColType)>,
    /// Hash-indexed columns.
    pub indexes: Vec<String>,
    /// Ordered (B-tree) indexed columns.
    pub range_indexes: Vec<String>,
}

// ---------------------------------------------------------------------------
// SQL rendering
// ---------------------------------------------------------------------------

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(v) => f.write_str(&v.to_sql_literal()),
            Expr::Param(i) => write!(f, "${i}"),
            Expr::Cmp { left, op, right } => write!(f, "{left} {} {right}", op.sql()),
            Expr::Arith { left, op, right } => write!(f, "({left} {} {right})", op.sql()),
            Expr::And(a, b) => write!(f, "{a} AND {b}"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "{expr} {}BETWEEN {low} AND {high}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(")")
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "{expr} {}LIKE {pattern}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Agg {
                func,
                arg,
                distinct,
            } => match arg {
                Some(a) => write!(
                    f,
                    "{}({}{a})",
                    func.sql(),
                    if *distinct { "DISTINCT " } else { "" }
                ),
                None => write!(f, "{}(*)", func.sql()),
            },
            Expr::Func { func, args } => {
                write!(f, "{}(", func.sql())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match item {
                SelectItem::Star => f.write_str("*")?,
                SelectItem::QualifiedStar(t) => write!(f, "{t}.*")?,
                SelectItem::Expr { expr, alias } => {
                    write!(f, "{expr}")?;
                    if let Some(a) = alias {
                        write!(f, " AS {a}")?;
                    }
                }
            }
        }
        f.write_str(" FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(&t.table)?;
            if let Some(a) = &t.alias {
                write!(f, " {a}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, c) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{c}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, k) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}{}", k.expr, if k.ascending { "" } else { " DESC" })?;
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl Statement {
    /// Render back to SQL text. Parsing the result yields an equal AST
    /// (property-tested in the parser module).
    pub fn to_sql(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Insert(i) => {
                write!(f, "INSERT INTO {}", i.table)?;
                if let Some(cols) = &i.columns {
                    write!(f, " ({})", cols.join(", "))?;
                }
                f.write_str(" VALUES ")?;
                for (ri, row) in i.rows.iter().enumerate() {
                    if ri > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str("(")?;
                    for (ci, e) in row.iter().enumerate() {
                        if ci > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    f.write_str(")")?;
                }
                Ok(())
            }
            Statement::Delete(d) => {
                write!(f, "DELETE FROM {}", d.table)?;
                if let Some(w) = &d.where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Update(u) => {
                write!(f, "UPDATE {} SET ", u.table)?;
                for (i, (c, e)) in u.assignments.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{c} = {e}")?;
                }
                if let Some(w) = &u.where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::CreateTable(c) => {
                write!(f, "CREATE TABLE {} (", c.table)?;
                for (i, (name, ty)) in c.columns.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{name} {}", ty.sql_name())?;
                }
                for idx in &c.indexes {
                    write!(f, ", INDEX({idx})")?;
                }
                for idx in &c.range_indexes {
                    write!(f, ", RANGE INDEX({idx})")?;
                }
                f.write_str(")")
            }
            Statement::DropTable(t) => write!(f, "DROP TABLE {t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(t: Option<&str>, c: &str) -> Expr {
        Expr::Column(ColumnRef::new(t, c))
    }

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let a = col(None, "a");
        let b = col(None, "b");
        let c = col(None, "c");
        let e = Expr::And(
            Box::new(Expr::And(Box::new(a.clone()), Box::new(b.clone()))),
            Box::new(c.clone()),
        );
        let cs = e.conjuncts();
        assert_eq!(cs.len(), 3);
        assert_eq!(*cs[0], a);
        assert_eq!(*cs[2], c);
    }

    #[test]
    fn conjuncts_keep_or_whole() {
        let e = Expr::Or(Box::new(col(None, "a")), Box::new(col(None, "b")));
        assert_eq!(e.conjuncts().len(), 1);
    }

    #[test]
    fn conjoin_round_trips() {
        let parts = vec![col(None, "a"), col(None, "b"), col(None, "c")];
        let joined = Expr::conjoin(parts).unwrap();
        assert_eq!(joined.conjuncts().len(), 3);
        assert!(Expr::conjoin(std::iter::empty()).is_none());
    }

    #[test]
    fn columns_and_params_collected() {
        let e = Expr::Cmp {
            left: Box::new(col(Some("t"), "x")),
            op: CmpOp::Gt,
            right: Box::new(Expr::Param(1)),
        };
        assert_eq!(e.columns().len(), 1);
        assert_eq!(e.params(), vec![1]);
    }

    #[test]
    fn display_renders_reasonable_sql() {
        let s = Select {
            distinct: false,
            items: vec![SelectItem::Star],
            from: vec![TableRef {
                table: "Car".into(),
                alias: None,
            }],
            where_clause: Some(Expr::Cmp {
                left: Box::new(col(Some("Car"), "price")),
                op: CmpOp::Lt,
                right: Box::new(Expr::Literal(Value::Int(20000))),
            }),
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
        };
        assert_eq!(
            Statement::Select(s).to_sql(),
            "SELECT * FROM Car WHERE Car.price < 20000"
        );
    }

    #[test]
    fn cmp_flip_is_involutive_mirror() {
        for op in [
            CmpOp::Eq,
            CmpOp::NotEq,
            CmpOp::Lt,
            CmpOp::LtEq,
            CmpOp::Gt,
            CmpOp::GtEq,
        ] {
            assert_eq!(op.flip().flip(), op);
        }
    }
}

//! Deterministic fault injection for the correctness harness.
//!
//! A [`FaultPlan`] is a seeded, shareable oracle that components consult at
//! well-defined *fault sites*: the sniffer's query logger (drop / duplicate /
//! reorder log records), the invalidator's poll runner (a polling query
//! errors or times out), and the transaction guard (an injected abort
//! mid-stream). Every decision is a pure hash of `(seed, site, key)` — the
//! same plan over the same workload injects the same faults, which is what
//! makes fuzz failures replayable — and every injection is counted, so tests
//! can assert that the system both *saw* the fault and degraded
//! conservatively.
//!
//! The default plan is inert: a `FaultPlan::default()` carries no
//! configuration, every probe answers "no fault", and the hot paths pay one
//! `Option` check.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fault-site probabilities and modes. All probabilities are in `[0, 1]`.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultSpec {
    /// Seed for the per-decision hash (independent of workload seeds).
    pub seed: u64,
    /// Probability the sniffer's query logger drops a record entirely.
    pub sniffer_drop: f64,
    /// Probability the sniffer's query logger duplicates a record.
    pub sniffer_dup: f64,
    /// Deterministically reorder the query log on every drain.
    pub sniffer_reorder: bool,
    /// Probability an issued polling query fails with an error.
    pub poll_error: f64,
    /// Probability an issued polling query times out (after the modeled
    /// round trip, if one is configured).
    pub poll_timeout: f64,
    /// Probability a transaction statement aborts mid-stream.
    pub txn_abort: f64,
    /// Probability the portal process "crashes" before an action (the
    /// harness kills the portal and recovers it from the durable state).
    pub crash_restart: f64,
    /// Poll-flap burst cycle length in sync points (`0` disables flapping).
    pub poll_flap_period: u64,
    /// Leading sync points of each cycle during which *every* poll faults
    /// with an error — the bursty outage that should trip the breaker.
    pub poll_flap_burst: u64,
}

impl FaultSpec {
    /// True when no fault site can ever fire.
    pub fn is_inert(&self) -> bool {
        self.sniffer_drop == 0.0
            && self.sniffer_dup == 0.0
            && !self.sniffer_reorder
            && self.poll_error == 0.0
            && self.poll_timeout == 0.0
            && self.txn_abort == 0.0
            && self.crash_restart == 0.0
            && (self.poll_flap_period == 0 || self.poll_flap_burst == 0)
    }
}

/// How an injected poll fault presents to the invalidator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollFault {
    /// The DBMS rejected the polling query.
    Error,
    /// The polling query timed out.
    Timeout,
}

/// Cumulative injection counters (what the plan actually did).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Query-log records dropped.
    pub sniffer_dropped: u64,
    /// Query-log records duplicated.
    pub sniffer_duplicated: u64,
    /// Polling queries failed with an injected error.
    pub poll_errors: u64,
    /// Polling queries failed with an injected timeout.
    pub poll_timeouts: u64,
    /// Transaction statements aborted.
    pub txn_aborts: u64,
    /// Portal crash/restarts injected.
    pub crashes: u64,
}

#[derive(Debug, Default)]
struct FaultState {
    spec: FaultSpec,
    sniffer_dropped: AtomicU64,
    sniffer_duplicated: AtomicU64,
    poll_errors: AtomicU64,
    poll_timeouts: AtomicU64,
    txn_aborts: AtomicU64,
    crashes: AtomicU64,
    /// Keys transaction-abort decisions (one per statement executed).
    txn_stmt_seq: AtomicU64,
    /// Current sync-point ordinal; phases the poll-flap burst windows.
    /// Survives restarts because the portal persists its sync sequence.
    poll_epoch: AtomicU64,
}

/// Shareable handle to one fault configuration; clones observe the same
/// counters. `FaultPlan::default()` injects nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    state: Option<Arc<FaultState>>,
}

/// splitmix64 — a strong 64-bit mixer; decisions are uniform per key.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a hash to `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// A plan from the given spec. An inert spec yields the no-op plan.
    pub fn new(spec: FaultSpec) -> Self {
        if spec.is_inert() {
            return FaultPlan::default();
        }
        FaultPlan {
            state: Some(Arc::new(FaultState {
                spec,
                ..FaultState::default()
            })),
        }
    }

    /// The inert plan (never injects).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when at least one fault site can fire.
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    /// The configured spec (the inert default for a no-op plan).
    pub fn spec(&self) -> FaultSpec {
        self.state
            .as_ref()
            .map(|s| s.spec.clone())
            .unwrap_or_default()
    }

    /// What the plan has injected so far.
    pub fn counts(&self) -> FaultCounts {
        match &self.state {
            None => FaultCounts::default(),
            Some(s) => FaultCounts {
                sniffer_dropped: s.sniffer_dropped.load(Ordering::Relaxed),
                sniffer_duplicated: s.sniffer_duplicated.load(Ordering::Relaxed),
                poll_errors: s.poll_errors.load(Ordering::Relaxed),
                poll_timeouts: s.poll_timeouts.load(Ordering::Relaxed),
                txn_aborts: s.txn_aborts.load(Ordering::Relaxed),
                crashes: s.crashes.load(Ordering::Relaxed),
            },
        }
    }

    fn roll(state: &FaultState, site: u64, key: u64, p: f64) -> bool {
        p > 0.0 && unit(mix(state.spec.seed ^ site.wrapping_mul(0xa076_1d64_78bd_642f) ^ key)) < p
    }

    /// Sniffer site: should the query record with this id be dropped?
    /// Counts the injection when it fires.
    pub fn drop_query_record(&self, record_id: u64) -> bool {
        let Some(s) = &self.state else { return false };
        let hit = Self::roll(s, 1, record_id, s.spec.sniffer_drop);
        if hit {
            s.sniffer_dropped.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Sniffer site: should the query record with this id be duplicated?
    pub fn duplicate_query_record(&self, record_id: u64) -> bool {
        let Some(s) = &self.state else { return false };
        let hit = Self::roll(s, 2, record_id, s.spec.sniffer_dup);
        if hit {
            s.sniffer_duplicated.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Sniffer site: reorder the query log on drain?
    pub fn reorder_query_records(&self) -> bool {
        self.state
            .as_ref()
            .is_some_and(|s| s.spec.sniffer_reorder)
    }

    /// Invalidator site: does this poll attempt fault? Keyed on the poll's
    /// structural key (not a sequence counter) so the decision is identical
    /// across worker counts and across replays, plus the retry attempt
    /// number so a transient fault can clear on a later attempt. During a
    /// poll-flap burst window every attempt faults regardless of key — the
    /// sustained outage retries cannot paper over.
    pub fn poll_fault(&self, poll_key: u64, attempt: u32) -> Option<PollFault> {
        let s = self.state.as_ref()?;
        if s.spec.poll_flap_period > 0
            && s.poll_epoch.load(Ordering::Relaxed) % s.spec.poll_flap_period
                < s.spec.poll_flap_burst
        {
            s.poll_errors.fetch_add(1, Ordering::Relaxed);
            return Some(PollFault::Error);
        }
        // Attempt 0 keys exactly as before; retries re-roll under a
        // distinct derived key.
        let key = poll_key.wrapping_add((attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if Self::roll(s, 3, key, s.spec.poll_error) {
            s.poll_errors.fetch_add(1, Ordering::Relaxed);
            return Some(PollFault::Error);
        }
        if Self::roll(s, 4, key, s.spec.poll_timeout) {
            s.poll_timeouts.fetch_add(1, Ordering::Relaxed);
            return Some(PollFault::Timeout);
        }
        None
    }

    /// Advance the poll-flap phase. The portal calls this with its durable
    /// sync-point ordinal at the start of every sync point, so burst
    /// windows line up across restarts and worker counts.
    pub fn set_poll_epoch(&self, epoch: u64) {
        if let Some(s) = &self.state {
            s.poll_epoch.store(epoch, Ordering::Relaxed);
        }
    }

    /// Harness site: should the portal crash before this action? Keyed on
    /// the action index so a trace replays with identical crash points.
    pub fn crash_before_action(&self, action_index: u64) -> bool {
        let Some(s) = &self.state else { return false };
        let hit = Self::roll(s, 6, action_index, s.spec.crash_restart);
        if hit {
            s.crashes.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Database site: should this transaction statement abort? Keyed on a
    /// monotone per-plan statement sequence (deterministic for a
    /// deterministic workload).
    pub fn txn_abort(&self) -> bool {
        let Some(s) = &self.state else { return false };
        let seq = s.txn_stmt_seq.fetch_add(1, Ordering::Relaxed);
        let hit = Self::roll(s, 5, seq, s.spec.txn_abort);
        if hit {
            s.txn_aborts.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::default();
        assert!(!p.is_active());
        assert!(!p.drop_query_record(7));
        assert!(!p.duplicate_query_record(7));
        assert!(!p.reorder_query_records());
        assert_eq!(p.poll_fault(42, 0), None);
        assert!(!p.txn_abort());
        assert!(!p.crash_before_action(0));
        assert_eq!(p.counts(), FaultCounts::default());
    }

    #[test]
    fn inert_spec_collapses_to_noop() {
        assert!(!FaultPlan::new(FaultSpec::default()).is_active());
    }

    #[test]
    fn decisions_are_deterministic_per_key() {
        let spec = FaultSpec {
            seed: 99,
            sniffer_drop: 0.5,
            poll_error: 0.5,
            ..FaultSpec::default()
        };
        let a = FaultPlan::new(spec.clone());
        let b = FaultPlan::new(spec);
        for key in 0..200 {
            assert_eq!(a.drop_query_record(key), b.drop_query_record(key));
            assert_eq!(a.poll_fault(key, 0), b.poll_fault(key, 0));
            assert_eq!(a.poll_fault(key, 1), b.poll_fault(key, 1));
        }
        assert_eq!(a.counts(), b.counts());
        assert!(a.counts().sniffer_dropped > 0, "p=0.5 over 200 keys fires");
        assert!(a.counts().poll_errors > 0);
    }

    #[test]
    fn retry_attempts_reroll_transient_faults() {
        let p = FaultPlan::new(FaultSpec {
            seed: 7,
            poll_error: 0.5,
            ..FaultSpec::default()
        });
        // With p=0.5 over 200 keys some poll must fault on attempt 0 and
        // clear on a retry — that is the transience retries exploit.
        let cleared = (0..200u64).any(|k| {
            p.poll_fault(k, 0).is_some() && p.poll_fault(k, 1).is_none()
        });
        assert!(cleared, "no fault cleared on retry");
    }

    #[test]
    fn poll_flap_faults_exactly_in_burst_windows() {
        let p = FaultPlan::new(FaultSpec {
            poll_flap_period: 4,
            poll_flap_burst: 2,
            ..FaultSpec::default()
        });
        assert!(p.is_active());
        for epoch in 0..12u64 {
            p.set_poll_epoch(epoch);
            let in_burst = epoch % 4 < 2;
            assert_eq!(
                p.poll_fault(99, 0).is_some(),
                in_burst,
                "epoch {epoch} burst expectation"
            );
            // Retries cannot dodge a burst: the whole window faults.
            if in_burst {
                assert!(p.poll_fault(99, 3).is_some());
            }
        }
    }

    #[test]
    fn crash_decisions_are_deterministic_and_counted() {
        let spec = FaultSpec {
            seed: 3,
            crash_restart: 0.3,
            ..FaultSpec::default()
        };
        let a = FaultPlan::new(spec.clone());
        let b = FaultPlan::new(spec);
        let hits: Vec<u64> = (0..100).filter(|&i| a.crash_before_action(i)).collect();
        let hits_b: Vec<u64> = (0..100).filter(|&i| b.crash_before_action(i)).collect();
        assert_eq!(hits, hits_b);
        assert!(!hits.is_empty());
        assert_eq!(a.counts().crashes, hits.len() as u64);
    }

    #[test]
    fn probability_one_always_fires() {
        let p = FaultPlan::new(FaultSpec {
            txn_abort: 1.0,
            ..FaultSpec::default()
        });
        assert!(p.txn_abort());
        assert!(p.txn_abort());
        assert_eq!(p.counts().txn_aborts, 2);
    }

    #[test]
    fn clones_share_counters() {
        let p = FaultPlan::new(FaultSpec {
            sniffer_drop: 1.0,
            ..FaultSpec::default()
        });
        let q = p.clone();
        assert!(q.drop_query_record(1));
        assert_eq!(p.counts().sniffer_dropped, 1);
    }
}

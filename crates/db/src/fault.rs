//! Deterministic fault injection for the correctness harness.
//!
//! A [`FaultPlan`] is a seeded, shareable oracle that components consult at
//! well-defined *fault sites*: the sniffer's query logger (drop / duplicate /
//! reorder log records), the invalidator's poll runner (a polling query
//! errors or times out), and the transaction guard (an injected abort
//! mid-stream). Every decision is a pure hash of `(seed, site, key)` — the
//! same plan over the same workload injects the same faults, which is what
//! makes fuzz failures replayable — and every injection is counted, so tests
//! can assert that the system both *saw* the fault and degraded
//! conservatively.
//!
//! The default plan is inert: a `FaultPlan::default()` carries no
//! configuration, every probe answers "no fault", and the hot paths pay one
//! `Option` check.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fault-site probabilities and modes. All probabilities are in `[0, 1]`.
///
/// Serialization is hand-written (not derived) so reproducer JSON stays
/// compatible across releases: fields missing from an old document take
/// their defaults, and unknown fields from a newer one are ignored.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    /// Seed for the per-decision hash (independent of workload seeds).
    pub seed: u64,
    /// Probability the sniffer's query logger drops a record entirely.
    pub sniffer_drop: f64,
    /// Probability the sniffer's query logger duplicates a record.
    pub sniffer_dup: f64,
    /// Deterministically reorder the query log on every drain.
    pub sniffer_reorder: bool,
    /// Probability an issued polling query fails with an error.
    pub poll_error: f64,
    /// Probability an issued polling query times out (after the modeled
    /// round trip, if one is configured).
    pub poll_timeout: f64,
    /// Probability a transaction statement aborts mid-stream.
    pub txn_abort: f64,
    /// Probability the portal process "crashes" before an action (the
    /// harness kills the portal and recovers it from the durable state).
    pub crash_restart: f64,
    /// Poll-flap burst cycle length in sync points (`0` disables flapping).
    pub poll_flap_period: u64,
    /// Leading sync points of each cycle during which *every* poll faults
    /// with an error — the bursty outage that should trip the breaker.
    pub poll_flap_burst: u64,
    /// Probability one bus delivery attempt (edge, batch, attempt) is
    /// dropped in flight — the edge never sees the batch, the bus never
    /// sees an ack, and the at-least-once retry loop must re-send.
    pub bus_drop: f64,
    /// Probability a bus delivery is duplicated in flight (the edge
    /// applies the same sequenced batch twice; idempotent apply absorbs
    /// the second copy).
    pub bus_dup: f64,
    /// Deterministically reverse the bus send order whenever an edge has a
    /// multi-batch backlog, forcing the edge's gap buffer to engage.
    pub bus_reorder: bool,
    /// Probability an edge is unreachable for a whole partition burst
    /// window (see the two period/burst fields below).
    pub edge_partition: f64,
    /// Edge-partition cycle length in sync points (`0` disables).
    pub edge_partition_period: u64,
    /// Leading sync points of each cycle during which partitioned edges
    /// (rolled per window × edge) are unreachable.
    pub edge_partition_burst: u64,
    /// Probability an edge cache "crashes" before an action (the harness
    /// reboots the edge, which must conservatively flush pages admitted
    /// past its last acked watermark before rejoining).
    pub edge_crash: f64,
}

impl FaultSpec {
    /// True when no fault site can ever fire.
    pub fn is_inert(&self) -> bool {
        self.sniffer_drop == 0.0
            && self.sniffer_dup == 0.0
            && !self.sniffer_reorder
            && self.poll_error == 0.0
            && self.poll_timeout == 0.0
            && self.txn_abort == 0.0
            && self.crash_restart == 0.0
            && (self.poll_flap_period == 0 || self.poll_flap_burst == 0)
            && self.bus_drop == 0.0
            && self.bus_dup == 0.0
            && !self.bus_reorder
            && (self.edge_partition == 0.0
                || self.edge_partition_period == 0
                || self.edge_partition_burst == 0)
            && self.edge_crash == 0.0
    }

    /// True when any bus/edge fault site can fire (the harness attaches
    /// bus edges to the portal only for these specs, keeping every
    /// pre-existing fault class bit-identical).
    pub fn has_bus_faults(&self) -> bool {
        self.bus_drop > 0.0
            || self.bus_dup > 0.0
            || self.bus_reorder
            || (self.edge_partition > 0.0
                && self.edge_partition_period > 0
                && self.edge_partition_burst > 0)
            || self.edge_crash > 0.0
    }
}

impl serde::Serialize for FaultSpec {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("seed".to_string(), self.seed.serialize_value()),
            ("sniffer_drop".to_string(), self.sniffer_drop.serialize_value()),
            ("sniffer_dup".to_string(), self.sniffer_dup.serialize_value()),
            ("sniffer_reorder".to_string(), self.sniffer_reorder.serialize_value()),
            ("poll_error".to_string(), self.poll_error.serialize_value()),
            ("poll_timeout".to_string(), self.poll_timeout.serialize_value()),
            ("txn_abort".to_string(), self.txn_abort.serialize_value()),
            ("crash_restart".to_string(), self.crash_restart.serialize_value()),
            ("poll_flap_period".to_string(), self.poll_flap_period.serialize_value()),
            ("poll_flap_burst".to_string(), self.poll_flap_burst.serialize_value()),
            ("bus_drop".to_string(), self.bus_drop.serialize_value()),
            ("bus_dup".to_string(), self.bus_dup.serialize_value()),
            ("bus_reorder".to_string(), self.bus_reorder.serialize_value()),
            ("edge_partition".to_string(), self.edge_partition.serialize_value()),
            ("edge_partition_period".to_string(), self.edge_partition_period.serialize_value()),
            ("edge_partition_burst".to_string(), self.edge_partition_burst.serialize_value()),
            ("edge_crash".to_string(), self.edge_crash.serialize_value()),
        ])
    }
}

impl serde::Deserialize for FaultSpec {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for FaultSpec"))?;
        let mut spec = FaultSpec::default();
        for (key, val) in obj {
            let err = |e: serde::Error| serde::Error::custom(format!("FaultSpec.{key}: {e}"));
            match key.as_str() {
                "seed" => spec.seed = u64::deserialize_value(val).map_err(err)?,
                "sniffer_drop" => spec.sniffer_drop = f64::deserialize_value(val).map_err(err)?,
                "sniffer_dup" => spec.sniffer_dup = f64::deserialize_value(val).map_err(err)?,
                "sniffer_reorder" => {
                    spec.sniffer_reorder = bool::deserialize_value(val).map_err(err)?
                }
                "poll_error" => spec.poll_error = f64::deserialize_value(val).map_err(err)?,
                "poll_timeout" => spec.poll_timeout = f64::deserialize_value(val).map_err(err)?,
                "txn_abort" => spec.txn_abort = f64::deserialize_value(val).map_err(err)?,
                "crash_restart" => {
                    spec.crash_restart = f64::deserialize_value(val).map_err(err)?
                }
                "poll_flap_period" => {
                    spec.poll_flap_period = u64::deserialize_value(val).map_err(err)?
                }
                "poll_flap_burst" => {
                    spec.poll_flap_burst = u64::deserialize_value(val).map_err(err)?
                }
                "bus_drop" => spec.bus_drop = f64::deserialize_value(val).map_err(err)?,
                "bus_dup" => spec.bus_dup = f64::deserialize_value(val).map_err(err)?,
                "bus_reorder" => spec.bus_reorder = bool::deserialize_value(val).map_err(err)?,
                "edge_partition" => {
                    spec.edge_partition = f64::deserialize_value(val).map_err(err)?
                }
                "edge_partition_period" => {
                    spec.edge_partition_period = u64::deserialize_value(val).map_err(err)?
                }
                "edge_partition_burst" => {
                    spec.edge_partition_burst = u64::deserialize_value(val).map_err(err)?
                }
                "edge_crash" => spec.edge_crash = f64::deserialize_value(val).map_err(err)?,
                // Unknown fields (from a newer writer) are ignored.
                _ => {}
            }
        }
        Ok(spec)
    }
}

/// How an injected poll fault presents to the invalidator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollFault {
    /// The DBMS rejected the polling query.
    Error,
    /// The polling query timed out.
    Timeout,
}

/// Cumulative injection counters (what the plan actually did).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Query-log records dropped.
    pub sniffer_dropped: u64,
    /// Query-log records duplicated.
    pub sniffer_duplicated: u64,
    /// Polling queries failed with an injected error.
    pub poll_errors: u64,
    /// Polling queries failed with an injected timeout.
    pub poll_timeouts: u64,
    /// Transaction statements aborted.
    pub txn_aborts: u64,
    /// Portal crash/restarts injected.
    pub crashes: u64,
    /// Bus delivery attempts dropped in flight.
    pub bus_dropped: u64,
    /// Bus deliveries duplicated in flight.
    pub bus_duplicated: u64,
    /// Edge-unreachable probes answered "partitioned".
    pub edge_partitions: u64,
    /// Edge cache crash/reboots injected.
    pub edge_crashes: u64,
}

#[derive(Debug, Default)]
struct FaultState {
    spec: FaultSpec,
    sniffer_dropped: AtomicU64,
    sniffer_duplicated: AtomicU64,
    poll_errors: AtomicU64,
    poll_timeouts: AtomicU64,
    txn_aborts: AtomicU64,
    crashes: AtomicU64,
    bus_dropped: AtomicU64,
    bus_duplicated: AtomicU64,
    edge_partitions: AtomicU64,
    edge_crashes: AtomicU64,
    /// Keys transaction-abort decisions (one per statement executed).
    txn_stmt_seq: AtomicU64,
    /// Current sync-point ordinal; phases the poll-flap burst windows.
    /// Survives restarts because the portal persists its sync sequence.
    poll_epoch: AtomicU64,
}

/// Shareable handle to one fault configuration; clones observe the same
/// counters. `FaultPlan::default()` injects nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    state: Option<Arc<FaultState>>,
}

/// splitmix64 — a strong 64-bit mixer; decisions are uniform per key.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a hash to `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// A plan from the given spec. An inert spec yields the no-op plan.
    pub fn new(spec: FaultSpec) -> Self {
        if spec.is_inert() {
            return FaultPlan::default();
        }
        FaultPlan {
            state: Some(Arc::new(FaultState {
                spec,
                ..FaultState::default()
            })),
        }
    }

    /// The inert plan (never injects).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when at least one fault site can fire.
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    /// The configured spec (the inert default for a no-op plan).
    pub fn spec(&self) -> FaultSpec {
        self.state
            .as_ref()
            .map(|s| s.spec.clone())
            .unwrap_or_default()
    }

    /// What the plan has injected so far.
    pub fn counts(&self) -> FaultCounts {
        match &self.state {
            None => FaultCounts::default(),
            Some(s) => FaultCounts {
                sniffer_dropped: s.sniffer_dropped.load(Ordering::Relaxed),
                sniffer_duplicated: s.sniffer_duplicated.load(Ordering::Relaxed),
                poll_errors: s.poll_errors.load(Ordering::Relaxed),
                poll_timeouts: s.poll_timeouts.load(Ordering::Relaxed),
                txn_aborts: s.txn_aborts.load(Ordering::Relaxed),
                crashes: s.crashes.load(Ordering::Relaxed),
                bus_dropped: s.bus_dropped.load(Ordering::Relaxed),
                bus_duplicated: s.bus_duplicated.load(Ordering::Relaxed),
                edge_partitions: s.edge_partitions.load(Ordering::Relaxed),
                edge_crashes: s.edge_crashes.load(Ordering::Relaxed),
            },
        }
    }

    fn roll(state: &FaultState, site: u64, key: u64, p: f64) -> bool {
        p > 0.0 && unit(mix(state.spec.seed ^ site.wrapping_mul(0xa076_1d64_78bd_642f) ^ key)) < p
    }

    /// Sniffer site: should the query record with this id be dropped?
    /// Counts the injection when it fires.
    pub fn drop_query_record(&self, record_id: u64) -> bool {
        let Some(s) = &self.state else { return false };
        let hit = Self::roll(s, 1, record_id, s.spec.sniffer_drop);
        if hit {
            s.sniffer_dropped.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Sniffer site: should the query record with this id be duplicated?
    pub fn duplicate_query_record(&self, record_id: u64) -> bool {
        let Some(s) = &self.state else { return false };
        let hit = Self::roll(s, 2, record_id, s.spec.sniffer_dup);
        if hit {
            s.sniffer_duplicated.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Sniffer site: reorder the query log on drain?
    pub fn reorder_query_records(&self) -> bool {
        self.state
            .as_ref()
            .is_some_and(|s| s.spec.sniffer_reorder)
    }

    /// Invalidator site: does this poll attempt fault? Keyed on the poll's
    /// structural key (not a sequence counter) so the decision is identical
    /// across worker counts and across replays, plus the retry attempt
    /// number so a transient fault can clear on a later attempt. During a
    /// poll-flap burst window every attempt faults regardless of key — the
    /// sustained outage retries cannot paper over.
    pub fn poll_fault(&self, poll_key: u64, attempt: u32) -> Option<PollFault> {
        let s = self.state.as_ref()?;
        if s.spec.poll_flap_period > 0
            && s.poll_epoch.load(Ordering::Relaxed) % s.spec.poll_flap_period
                < s.spec.poll_flap_burst
        {
            s.poll_errors.fetch_add(1, Ordering::Relaxed);
            return Some(PollFault::Error);
        }
        // Attempt 0 keys exactly as before; retries re-roll under a
        // distinct derived key.
        let key = poll_key.wrapping_add((attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if Self::roll(s, 3, key, s.spec.poll_error) {
            s.poll_errors.fetch_add(1, Ordering::Relaxed);
            return Some(PollFault::Error);
        }
        if Self::roll(s, 4, key, s.spec.poll_timeout) {
            s.poll_timeouts.fetch_add(1, Ordering::Relaxed);
            return Some(PollFault::Timeout);
        }
        None
    }

    /// Advance the poll-flap phase. The portal calls this with its durable
    /// sync-point ordinal at the start of every sync point, so burst
    /// windows line up across restarts and worker counts.
    pub fn set_poll_epoch(&self, epoch: u64) {
        if let Some(s) = &self.state {
            s.poll_epoch.store(epoch, Ordering::Relaxed);
        }
    }

    /// Harness site: should the portal crash before this action? Keyed on
    /// the action index so a trace replays with identical crash points.
    pub fn crash_before_action(&self, action_index: u64) -> bool {
        let Some(s) = &self.state else { return false };
        let hit = Self::roll(s, 6, action_index, s.spec.crash_restart);
        if hit {
            s.crashes.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Database site: should this transaction statement abort? Keyed on a
    /// monotone per-plan statement sequence (deterministic for a
    /// deterministic workload).
    pub fn txn_abort(&self) -> bool {
        let Some(s) = &self.state else { return false };
        let seq = s.txn_stmt_seq.fetch_add(1, Ordering::Relaxed);
        let hit = Self::roll(s, 5, seq, s.spec.txn_abort);
        if hit {
            s.txn_aborts.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Mix an `(edge, batch seq, attempt)` delivery coordinate into one
    /// decision key. Attempt is included so a dropped send can succeed on
    /// a later retry — the transience the at-least-once loop exploits.
    fn bus_key(edge: u64, seq: u64, attempt: u32) -> u64 {
        mix(edge.wrapping_mul(0xff51_afd7_ed55_8ccd) ^ seq)
            .wrapping_add((attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Bus site: is this delivery attempt dropped in flight?
    pub fn bus_drop_delivery(&self, edge: u64, seq: u64, attempt: u32) -> bool {
        let Some(s) = &self.state else { return false };
        let hit = Self::roll(s, 7, Self::bus_key(edge, seq, attempt), s.spec.bus_drop);
        if hit {
            s.bus_dropped.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Bus site: is this delivery duplicated in flight? Keyed without the
    /// attempt so a duplicated batch stays duplicated on replay.
    pub fn bus_duplicate_delivery(&self, edge: u64, seq: u64) -> bool {
        let Some(s) = &self.state else { return false };
        let hit = Self::roll(s, 8, Self::bus_key(edge, seq, 0), s.spec.bus_dup);
        if hit {
            s.bus_duplicated.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Bus site: reverse the send order of a multi-batch backlog?
    pub fn bus_reorder_sends(&self) -> bool {
        self.state.as_ref().is_some_and(|s| s.spec.bus_reorder)
    }

    /// Bus site: is this edge unreachable right now? Partition windows are
    /// phased by the same durable sync-point epoch as poll flapping, and
    /// within each burst window the decision is rolled once per
    /// (window, edge) — so an edge stays down for the whole window (the
    /// sustained outage that must trip the partition budget) while other
    /// edges may stay up.
    pub fn edge_partitioned(&self, edge: u64) -> bool {
        let Some(s) = &self.state else { return false };
        if s.spec.edge_partition_period == 0 || s.spec.edge_partition_burst == 0 {
            return false;
        }
        let epoch = s.poll_epoch.load(Ordering::Relaxed);
        if epoch % s.spec.edge_partition_period >= s.spec.edge_partition_burst {
            return false;
        }
        let window = epoch / s.spec.edge_partition_period;
        let hit = Self::roll(
            s,
            9,
            window.wrapping_mul(0xc2b2_ae3d_27d4_eb4f) ^ edge,
            s.spec.edge_partition,
        );
        if hit {
            s.edge_partitions.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Harness site: should this edge cache crash (reboot) before this
    /// action? Keyed on (action index, edge) for replayable reboots.
    pub fn edge_crash_before_action(&self, action_index: u64, edge: u64) -> bool {
        let Some(s) = &self.state else { return false };
        let hit = Self::roll(
            s,
            10,
            mix(edge.wrapping_mul(0xff51_afd7_ed55_8ccd)) ^ action_index,
            s.spec.edge_crash,
        );
        if hit {
            s.edge_crashes.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::default();
        assert!(!p.is_active());
        assert!(!p.drop_query_record(7));
        assert!(!p.duplicate_query_record(7));
        assert!(!p.reorder_query_records());
        assert_eq!(p.poll_fault(42, 0), None);
        assert!(!p.txn_abort());
        assert!(!p.crash_before_action(0));
        assert_eq!(p.counts(), FaultCounts::default());
    }

    #[test]
    fn inert_spec_collapses_to_noop() {
        assert!(!FaultPlan::new(FaultSpec::default()).is_active());
    }

    #[test]
    fn decisions_are_deterministic_per_key() {
        let spec = FaultSpec {
            seed: 99,
            sniffer_drop: 0.5,
            poll_error: 0.5,
            ..FaultSpec::default()
        };
        let a = FaultPlan::new(spec.clone());
        let b = FaultPlan::new(spec);
        for key in 0..200 {
            assert_eq!(a.drop_query_record(key), b.drop_query_record(key));
            assert_eq!(a.poll_fault(key, 0), b.poll_fault(key, 0));
            assert_eq!(a.poll_fault(key, 1), b.poll_fault(key, 1));
        }
        assert_eq!(a.counts(), b.counts());
        assert!(a.counts().sniffer_dropped > 0, "p=0.5 over 200 keys fires");
        assert!(a.counts().poll_errors > 0);
    }

    #[test]
    fn retry_attempts_reroll_transient_faults() {
        let p = FaultPlan::new(FaultSpec {
            seed: 7,
            poll_error: 0.5,
            ..FaultSpec::default()
        });
        // With p=0.5 over 200 keys some poll must fault on attempt 0 and
        // clear on a retry — that is the transience retries exploit.
        let cleared = (0..200u64).any(|k| {
            p.poll_fault(k, 0).is_some() && p.poll_fault(k, 1).is_none()
        });
        assert!(cleared, "no fault cleared on retry");
    }

    #[test]
    fn poll_flap_faults_exactly_in_burst_windows() {
        let p = FaultPlan::new(FaultSpec {
            poll_flap_period: 4,
            poll_flap_burst: 2,
            ..FaultSpec::default()
        });
        assert!(p.is_active());
        for epoch in 0..12u64 {
            p.set_poll_epoch(epoch);
            let in_burst = epoch % 4 < 2;
            assert_eq!(
                p.poll_fault(99, 0).is_some(),
                in_burst,
                "epoch {epoch} burst expectation"
            );
            // Retries cannot dodge a burst: the whole window faults.
            if in_burst {
                assert!(p.poll_fault(99, 3).is_some());
            }
        }
    }

    #[test]
    fn crash_decisions_are_deterministic_and_counted() {
        let spec = FaultSpec {
            seed: 3,
            crash_restart: 0.3,
            ..FaultSpec::default()
        };
        let a = FaultPlan::new(spec.clone());
        let b = FaultPlan::new(spec);
        let hits: Vec<u64> = (0..100).filter(|&i| a.crash_before_action(i)).collect();
        let hits_b: Vec<u64> = (0..100).filter(|&i| b.crash_before_action(i)).collect();
        assert_eq!(hits, hits_b);
        assert!(!hits.is_empty());
        assert_eq!(a.counts().crashes, hits.len() as u64);
    }

    #[test]
    fn probability_one_always_fires() {
        let p = FaultPlan::new(FaultSpec {
            txn_abort: 1.0,
            ..FaultSpec::default()
        });
        assert!(p.txn_abort());
        assert!(p.txn_abort());
        assert_eq!(p.counts().txn_aborts, 2);
    }

    #[test]
    fn bus_spec_is_not_inert_and_decisions_are_deterministic() {
        let spec = FaultSpec {
            seed: 11,
            bus_drop: 0.5,
            bus_dup: 0.3,
            ..FaultSpec::default()
        };
        assert!(!spec.is_inert());
        assert!(spec.has_bus_faults());
        let a = FaultPlan::new(spec.clone());
        let b = FaultPlan::new(spec);
        for seq in 0..200u64 {
            for edge in 0..2u64 {
                assert_eq!(
                    a.bus_drop_delivery(edge, seq, 0),
                    b.bus_drop_delivery(edge, seq, 0)
                );
                assert_eq!(
                    a.bus_duplicate_delivery(edge, seq),
                    b.bus_duplicate_delivery(edge, seq)
                );
            }
        }
        assert_eq!(a.counts(), b.counts());
        assert!(a.counts().bus_dropped > 0);
        assert!(a.counts().bus_duplicated > 0);
    }

    #[test]
    fn dropped_delivery_can_succeed_on_retry() {
        let p = FaultPlan::new(FaultSpec {
            seed: 5,
            bus_drop: 0.5,
            ..FaultSpec::default()
        });
        let cleared = (0..200u64)
            .any(|seq| p.bus_drop_delivery(0, seq, 0) && !p.bus_drop_delivery(0, seq, 1));
        assert!(cleared, "no dropped delivery cleared on retry");
    }

    #[test]
    fn edge_partition_holds_for_whole_burst_window_per_edge() {
        let p = FaultPlan::new(FaultSpec {
            seed: 21,
            edge_partition: 0.7,
            edge_partition_period: 4,
            edge_partition_burst: 2,
            ..FaultSpec::default()
        });
        assert!(p.is_active());
        let mut any_partition = false;
        for window in 0..16u64 {
            for edge in 0..3u64 {
                // Both epochs inside the burst agree; outside never fires.
                p.set_poll_epoch(window * 4);
                let during = p.edge_partitioned(edge);
                p.set_poll_epoch(window * 4 + 1);
                assert_eq!(p.edge_partitioned(edge), during, "stable within window");
                p.set_poll_epoch(window * 4 + 2);
                assert!(!p.edge_partitioned(edge), "outside burst");
                any_partition |= during;
            }
        }
        assert!(any_partition, "p=0.7 over 48 window×edge cells fires");
    }

    #[test]
    fn edge_crash_decisions_are_per_edge_and_counted() {
        let p = FaultPlan::new(FaultSpec {
            seed: 9,
            edge_crash: 0.3,
            ..FaultSpec::default()
        });
        let hits_e0: Vec<u64> = (0..100).filter(|&i| p.edge_crash_before_action(i, 0)).collect();
        let hits_e1: Vec<u64> = (0..100).filter(|&i| p.edge_crash_before_action(i, 1)).collect();
        assert!(!hits_e0.is_empty());
        assert_ne!(hits_e0, hits_e1, "edges crash independently");
        assert_eq!(
            p.counts().edge_crashes,
            (hits_e0.len() + hits_e1.len()) as u64
        );
    }

    #[test]
    fn clones_share_counters() {
        let p = FaultPlan::new(FaultSpec {
            sniffer_drop: 1.0,
            ..FaultSpec::default()
        });
        let q = p.clone();
        assert!(q.drop_query_record(1));
        assert_eq!(p.counts().sniffer_dropped, 1);
    }
}

//! Heap tables with optional secondary indexes.
//!
//! Rows live in a slotted `Vec<Option<Row>>`; a [`RowId`] is the slot number
//! and stays stable for the lifetime of the row. Secondary indexes are hash
//! indexes (`value → row ids`) maintained on insert/delete; the planner uses
//! them for equality predicates, which is the dominant access path in the
//! paper's workload (join-attribute lookups and polling queries).

use crate::error::{DbError, DbResult};
use crate::schema::SchemaRef;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// Stable identifier of a row within one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u64);

/// An owned row of values.
pub type Row = Vec<Value>;

/// Hash index over one column.
#[derive(Debug, Default)]
struct HashIndex {
    column: usize,
    map: HashMap<Value, Vec<RowId>>,
}

impl HashIndex {
    fn insert(&mut self, rid: RowId, row: &[Value]) {
        self.map.entry(row[self.column].clone()).or_default().push(rid);
    }

    fn remove(&mut self, rid: RowId, row: &[Value]) {
        if let Some(v) = self.map.get_mut(&row[self.column]) {
            v.retain(|r| *r != rid);
            if v.is_empty() {
                self.map.remove(&row[self.column]);
            }
        }
    }

    fn lookup(&self, key: &Value) -> &[RowId] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Ordered (B-tree) index over one column, supporting range scans.
#[derive(Debug, Default)]
struct RangeIndex {
    column: usize,
    map: BTreeMap<Value, Vec<RowId>>,
}

impl RangeIndex {
    fn insert(&mut self, rid: RowId, row: &[Value]) {
        self.map.entry(row[self.column].clone()).or_default().push(rid);
    }

    fn remove(&mut self, rid: RowId, row: &[Value]) {
        if let Some(v) = self.map.get_mut(&row[self.column]) {
            v.retain(|r| *r != rid);
            if v.is_empty() {
                self.map.remove(&row[self.column]);
            }
        }
    }

    fn range(&self, low: Bound<&Value>, high: Bound<&Value>) -> Vec<RowId> {
        self.map
            .range::<Value, _>((low, high))
            .flat_map(|(_, rids)| rids.iter().copied())
            .collect()
    }
}

/// One heap table.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: SchemaRef,
    slots: Vec<Option<Row>>,
    live: usize,
    indexes: Vec<HashIndex>,
    range_indexes: Vec<RangeIndex>,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(name: impl Into<String>, schema: SchemaRef) -> Self {
        Table {
            name: name.into(),
            schema,
            slots: Vec::new(),
            live: 0,
            indexes: Vec::new(),
            range_indexes: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table’s schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Create a hash index on `column` (by name); backfills existing rows.
    /// Idempotent: creating an index that exists is a no-op.
    pub fn create_index(&mut self, column: &str) -> DbResult<()> {
        let col = self.schema.require(column)?;
        if self.indexes.iter().any(|ix| ix.column == col) {
            return Ok(());
        }
        let mut ix = HashIndex {
            column: col,
            map: HashMap::new(),
        };
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(row) = slot {
                ix.insert(RowId(i as u64), row);
            }
        }
        self.indexes.push(ix);
        Ok(())
    }

    /// Columns that have a hash index, by position.
    pub fn indexed_columns(&self) -> Vec<usize> {
        self.indexes.iter().map(|ix| ix.column).collect()
    }

    /// Create an ordered (B-tree) index on `column`; backfills existing
    /// rows. Idempotent.
    pub fn create_range_index(&mut self, column: &str) -> DbResult<()> {
        let col = self.schema.require(column)?;
        if self.range_indexes.iter().any(|ix| ix.column == col) {
            return Ok(());
        }
        let mut ix = RangeIndex {
            column: col,
            map: BTreeMap::new(),
        };
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(row) = slot {
                ix.insert(RowId(i as u64), row);
            }
        }
        self.range_indexes.push(ix);
        Ok(())
    }

    /// True if `column` (by position) has an ordered index.
    pub fn has_range_index(&self, column: usize) -> bool {
        self.range_indexes.iter().any(|ix| ix.column == column)
    }

    /// Ordered-index range scan: row ids with `column` values within the
    /// bounds, if a range index exists on that column.
    pub fn range_lookup(
        &self,
        column: usize,
        low: Bound<&Value>,
        high: Bound<&Value>,
    ) -> Option<Vec<RowId>> {
        self.range_indexes
            .iter()
            .find(|ix| ix.column == column)
            .map(|ix| ix.range(low, high))
    }

    /// Insert a row after validating it against the schema.
    pub fn insert(&mut self, row: Row) -> DbResult<RowId> {
        self.schema.check_row(&row)?;
        let rid = RowId(self.slots.len() as u64);
        for ix in &mut self.indexes {
            ix.insert(rid, &row);
        }
        for ix in &mut self.range_indexes {
            ix.insert(rid, &row);
        }
        self.slots.push(Some(row));
        self.live += 1;
        Ok(rid)
    }

    /// Delete by row id; returns the removed row if it was live.
    pub fn delete(&mut self, rid: RowId) -> Option<Row> {
        let slot = self.slots.get_mut(rid.0 as usize)?;
        let row = slot.take()?;
        for ix in &mut self.indexes {
            ix.remove(rid, &row);
        }
        for ix in &mut self.range_indexes {
            ix.remove(rid, &row);
        }
        self.live -= 1;
        Some(row)
    }

    /// Replace the row at `rid` (used by UPDATE). Indexes are maintained.
    pub fn replace(&mut self, rid: RowId, new_row: Row) -> DbResult<Option<Row>> {
        self.schema.check_row(&new_row)?;
        let Some(slot) = self.slots.get_mut(rid.0 as usize) else {
            return Ok(None);
        };
        let Some(old) = slot.take() else {
            return Ok(None);
        };
        for ix in &mut self.indexes {
            ix.remove(rid, &old);
            ix.insert(rid, &new_row);
        }
        for ix in &mut self.range_indexes {
            ix.remove(rid, &old);
            ix.insert(rid, &new_row);
        }
        *slot = Some(new_row);
        Ok(Some(old))
    }

    /// Row by id, if live.
    pub fn get(&self, rid: RowId) -> Option<&Row> {
        self.slots.get(rid.0 as usize).and_then(Option::as_ref)
    }

    /// Iterate live rows with their ids.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (RowId(i as u64), r)))
    }

    /// Index lookup: row ids whose `column` equals `key`, if an index exists.
    pub fn index_lookup(&self, column: usize, key: &Value) -> Option<&[RowId]> {
        self.indexes
            .iter()
            .find(|ix| ix.column == column)
            .map(|ix| ix.lookup(key))
    }

    /// True if `column` (by position) has a hash index.
    pub fn has_index(&self, column: usize) -> bool {
        self.indexes.iter().any(|ix| ix.column == column)
    }

    /// Materialize all live rows (test/oracle helper).
    pub fn rows(&self) -> Vec<Row> {
        self.scan().map(|(_, r)| r.clone()).collect()
    }

    /// Find the first live row equal to `row` (used for delete-by-value,
    /// which is how the update log replays deletions).
    pub fn find_equal(&self, row: &[Value]) -> Option<RowId> {
        // Prefer an index probe: any index is authoritative for its column,
        // so the first one decides.
        if let Some(ix) = self.indexes.first() {
            let key = &row[ix.column];
            return ix
                .lookup(key)
                .iter()
                .copied()
                .find(|rid| self.get(*rid).is_some_and(|r| r == row));
        }
        self.scan().find(|(_, r)| r.as_slice() == row).map(|(rid, _)| rid)
    }
}

/// Named collection of tables (the database catalog).
#[derive(Debug, Default)]
pub struct Catalog {
    tables: Vec<Table>,
}

impl Catalog {
    /// Create an empty table with the given schema.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table; errors if the name exists.
    pub fn create_table(&mut self, table: Table) -> DbResult<()> {
        if self.get(table.name()).is_some() {
            return Err(DbError::TableExists(table.name().to_string()));
        }
        self.tables.push(table);
        Ok(())
    }

    /// Remove a table by name (case-insensitive).
    pub fn drop_table(&mut self, name: &str) -> DbResult<()> {
        let before = self.tables.len();
        self.tables
            .retain(|t| !t.name.eq_ignore_ascii_case(name));
        if self.tables.len() == before {
            return Err(DbError::UnknownTable(name.to_string()));
        }
        Ok(())
    }

    /// Row by id, if live.
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Mutable lookup by name (case-insensitive).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables
            .iter_mut()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Lookup by name or `UnknownTable` error.
    pub fn require(&self, name: &str) -> DbResult<&Table> {
        self.get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Mutable lookup by name or `UnknownTable` error.
    pub fn require_mut(&mut self, name: &str) -> DbResult<&mut Table> {
        self.get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Names of all registered tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.iter().map(|t| t.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, Schema};

    fn car_table() -> Table {
        let schema = Schema::of(&[
            ("maker", ColType::Str),
            ("model", ColType::Str),
            ("price", ColType::Int),
        ]);
        Table::new("Car", schema)
    }

    fn row(maker: &str, model: &str, price: i64) -> Row {
        vec![maker.into(), model.into(), Value::Int(price)]
    }

    #[test]
    fn insert_scan_delete() {
        let mut t = car_table();
        let r1 = t.insert(row("Toyota", "Avalon", 25000)).unwrap();
        let _r2 = t.insert(row("Mitsubishi", "Eclipse", 20000)).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.delete(r1).is_some());
        assert_eq!(t.len(), 1);
        assert!(t.delete(r1).is_none(), "double delete is a no-op");
        let rows = t.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::Str("Eclipse".into()));
    }

    #[test]
    fn index_maintained_across_mutations() {
        let mut t = car_table();
        t.create_index("model").unwrap();
        let r1 = t.insert(row("Toyota", "Avalon", 25000)).unwrap();
        t.insert(row("Toyota", "Corolla", 15000)).unwrap();
        let hits = t.index_lookup(1, &Value::Str("Avalon".into())).unwrap();
        assert_eq!(hits, &[r1]);
        t.delete(r1);
        let hits = t.index_lookup(1, &Value::Str("Avalon".into())).unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn index_backfill_on_create() {
        let mut t = car_table();
        t.insert(row("a", "m1", 1)).unwrap();
        t.insert(row("b", "m1", 2)).unwrap();
        t.create_index("model").unwrap();
        assert_eq!(t.index_lookup(1, &Value::Str("m1".into())).unwrap().len(), 2);
        // idempotent
        t.create_index("model").unwrap();
        assert_eq!(t.indexed_columns(), vec![1]);
    }

    #[test]
    fn replace_updates_indexes() {
        let mut t = car_table();
        t.create_index("model").unwrap();
        let r = t.insert(row("a", "m1", 1)).unwrap();
        t.replace(r, row("a", "m2", 1)).unwrap();
        assert!(t.index_lookup(1, &Value::Str("m1".into())).unwrap().is_empty());
        assert_eq!(t.index_lookup(1, &Value::Str("m2".into())).unwrap(), &[r]);
    }

    #[test]
    fn find_equal_uses_index_and_fallback() {
        let mut t = car_table();
        let r = t.insert(row("a", "m1", 1)).unwrap();
        assert_eq!(t.find_equal(&row("a", "m1", 1)), Some(r));
        assert_eq!(t.find_equal(&row("a", "m1", 2)), None);
        t.create_index("model").unwrap();
        assert_eq!(t.find_equal(&row("a", "m1", 1)), Some(r));
    }

    #[test]
    fn catalog_case_insensitive_and_duplicates() {
        let mut c = Catalog::new();
        c.create_table(car_table()).unwrap();
        assert!(c.get("car").is_some());
        assert!(matches!(
            c.create_table(car_table()),
            Err(DbError::TableExists(_))
        ));
        c.drop_table("CAR").unwrap();
        assert!(c.get("Car").is_none());
        assert!(c.drop_table("Car").is_err());
    }

    #[test]
    fn insert_validates_schema() {
        let mut t = car_table();
        assert!(t.insert(vec![Value::Int(1), Value::Int(2), Value::Int(3)]).is_err());
        assert!(t.insert(vec!["a".into()]).is_err());
    }
}

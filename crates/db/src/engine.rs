//! The top-level [`Database`] object: parses SQL, dispatches to the
//! executor, maintains the update log, and accumulates statistics.

use crate::error::{DbError, DbResult};
use crate::eval::{bind, BindContext};
use crate::exec::{execute_select, ExecStats, QueryResult};
use crate::log::{LogOp, Lsn, UpdateLog};
use crate::schema::{ColumnDef, Schema};
use crate::sql::ast::{Expr, Statement};
use crate::sql::parser::parse;
use crate::table::{Catalog, Row, Table};
use crate::value::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// SELECT result.
    Rows(QueryResult),
    /// Number of rows affected by DML, or 0 for DDL.
    Affected(usize),
}

impl ExecOutcome {
    /// Unwrap a SELECT result.
    pub fn rows(self) -> QueryResult {
        match self {
            ExecOutcome::Rows(r) => r,
            ExecOutcome::Affected(n) => panic!("expected rows, got Affected({n})"),
        }
    }

    /// Unwrap a DML/DDL row count.
    pub fn affected(self) -> usize {
        match self {
            ExecOutcome::Affected(n) => n,
            ExecOutcome::Rows(_) => panic!("expected affected count, got rows"),
        }
    }
}

/// Cumulative engine statistics (a point-in-time snapshot; see
/// [`Database::stats`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct DbStats {
    /// SELECT statements executed.
    pub selects: u64,
    /// Rows inserted.
    pub inserts: u64,
    /// Rows deleted.
    pub deletes: u64,
    /// Rows updated.
    pub updates: u64,
    /// Transactions opened via [`Database::begin`].
    pub txn_begins: u64,
    /// Transactions committed.
    pub txn_commits: u64,
    /// Transactions aborted (explicit rollback or drop without commit).
    pub txn_aborts: u64,
    /// Accumulated executor work counters.
    pub exec: ExecStats,
}

/// Interior-mutable statistics cells: every counter is a relaxed atomic so
/// the read-only query path ([`Database::query`] and friends, which take
/// `&self`) can account its work without exclusive access. Concurrent
/// pollers — the invalidator's sharded sync-point pipeline — therefore
/// never serialize on statistics.
#[derive(Debug, Default)]
pub(crate) struct StatsCells {
    selects: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
    updates: AtomicU64,
    txn_begins: AtomicU64,
    txn_commits: AtomicU64,
    txn_aborts: AtomicU64,
    rows_scanned: AtomicU64,
    rows_joined: AtomicU64,
    rows_output: AtomicU64,
    index_probes: AtomicU64,
    seq_scans: AtomicU64,
}

impl StatsCells {
    fn add_exec(&self, s: &ExecStats) {
        self.rows_scanned.fetch_add(s.rows_scanned, Ordering::Relaxed);
        self.rows_joined.fetch_add(s.rows_joined, Ordering::Relaxed);
        self.rows_output.fetch_add(s.rows_output, Ordering::Relaxed);
        self.index_probes.fetch_add(s.index_probes, Ordering::Relaxed);
        self.seq_scans.fetch_add(s.seq_scans, Ordering::Relaxed);
    }

    fn snapshot(&self) -> DbStats {
        DbStats {
            selects: self.selects.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            txn_begins: self.txn_begins.load(Ordering::Relaxed),
            txn_commits: self.txn_commits.load(Ordering::Relaxed),
            txn_aborts: self.txn_aborts.load(Ordering::Relaxed),
            exec: ExecStats {
                rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
                rows_joined: self.rows_joined.load(Ordering::Relaxed),
                rows_output: self.rows_output.load(Ordering::Relaxed),
                index_probes: self.index_probes.load(Ordering::Relaxed),
                seq_scans: self.seq_scans.load(Ordering::Relaxed),
            },
        }
    }
}

/// A parsed, reusable statement (see [`Database::prepare`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedStatement {
    stmt: Statement,
}

impl PreparedStatement {
    /// The underlying parsed statement.
    pub fn statement(&self) -> &Statement {
        &self.stmt
    }
}

/// An in-memory relational database with an inspectable update log.
#[derive(Debug, Default)]
pub struct Database {
    catalog: Catalog,
    log: UpdateLog,
    stats: StatsCells,
    fault: crate::fault::FaultPlan,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// The table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (transaction rollback machinery).
    pub(crate) fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The update log (the invalidator reads this).
    pub fn update_log(&self) -> &UpdateLog {
        &self.log
    }

    /// Mutable log access (truncation by the log owner).
    pub fn update_log_mut(&mut self) -> &mut UpdateLog {
        &mut self.log
    }

    /// Cumulative statistics (a consistent-enough relaxed snapshot).
    pub fn stats(&self) -> DbStats {
        self.stats.snapshot()
    }

    /// Install a fault-injection plan (harness only; the default plan is
    /// inert). Transactions consult it for injected mid-stream aborts.
    pub fn set_fault_plan(&mut self, plan: crate::fault::FaultPlan) {
        self.fault = plan;
    }

    /// The installed fault plan (inert unless [`Database::set_fault_plan`]
    /// was called).
    pub fn fault_plan(&self) -> &crate::fault::FaultPlan {
        &self.fault
    }

    /// Same-crate instrumentation hooks: the transaction guard counts
    /// begins/commits/aborts through `&self` so it composes with the
    /// read-only query path.
    pub(crate) fn note_txn_begin(&self) {
        self.stats.txn_begins.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_txn_commit(&self) {
        self.stats.txn_commits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_txn_abort(&self) {
        self.stats.txn_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Execute one SQL statement without parameters.
    pub fn execute(&mut self, sql: &str) -> DbResult<ExecOutcome> {
        self.execute_with_params(sql, &[])
    }

    /// Execute one SQL statement with positional parameters (`$1`… / `?`).
    pub fn execute_with_params(&mut self, sql: &str, params: &[Value]) -> DbResult<ExecOutcome> {
        let stmt = parse(sql)?;
        self.execute_statement(&stmt, params)
    }

    /// Execute a pre-parsed statement.
    pub fn execute_statement(
        &mut self,
        stmt: &Statement,
        params: &[Value],
    ) -> DbResult<ExecOutcome> {
        match stmt {
            Statement::Select(s) => {
                let mut stats = ExecStats::default();
                let result = execute_select(&self.catalog, s, params, &mut stats)?;
                self.stats.selects.fetch_add(1, Ordering::Relaxed);
                self.stats.add_exec(&stats);
                Ok(ExecOutcome::Rows(result))
            }
            Statement::Insert(ins) => {
                let rows = self.eval_insert_rows(&ins.table, ins.columns.as_deref(), &ins.rows, params)?;
                let n = rows.len();
                let table = self.catalog.require_mut(&ins.table)?;
                let table_name = table.name().to_string();
                for row in rows {
                    table.insert(row.clone())?;
                    self.log.append(&table_name, LogOp::Insert(row));
                }
                self.stats.inserts.fetch_add(n as u64, Ordering::Relaxed);
                Ok(ExecOutcome::Affected(n))
            }
            Statement::Delete(del) => {
                let table = self.catalog.require(&del.table)?;
                let ctx = BindContext::new(vec![(
                    del.table.clone(),
                    table.schema().clone(),
                )]);
                let pred = match &del.where_clause {
                    Some(w) => Some(bind(w, &ctx, params)?),
                    None => None,
                };
                let victims: Vec<_> = table
                    .scan()
                    .filter(|(_, row)| {
                        pred.as_ref()
                            .map(|p| p.eval_predicate(&[row]))
                            .unwrap_or(true)
                    })
                    .map(|(rid, row)| (rid, row.clone()))
                    .collect();
                self.stats.rows_scanned.fetch_add(table.len() as u64, Ordering::Relaxed);
                let table_name = table.name().to_string();
                let table = self.catalog.require_mut(&del.table)?;
                let n = victims.len();
                for (rid, row) in victims {
                    table.delete(rid);
                    self.log.append(&table_name, LogOp::Delete(row));
                }
                self.stats.deletes.fetch_add(n as u64, Ordering::Relaxed);
                Ok(ExecOutcome::Affected(n))
            }
            Statement::Update(upd) => {
                let table = self.catalog.require(&upd.table)?;
                let ctx = BindContext::new(vec![(
                    upd.table.clone(),
                    table.schema().clone(),
                )]);
                let pred = match &upd.where_clause {
                    Some(w) => Some(bind(w, &ctx, params)?),
                    None => None,
                };
                let assignments: Vec<(usize, crate::eval::BoundExpr)> = upd
                    .assignments
                    .iter()
                    .map(|(col, e)| {
                        Ok((table.schema().require(col)?, bind(e, &ctx, params)?))
                    })
                    .collect::<DbResult<_>>()?;
                let changes: Vec<_> = table
                    .scan()
                    .filter(|(_, row)| {
                        pred.as_ref()
                            .map(|p| p.eval_predicate(&[row]))
                            .unwrap_or(true)
                    })
                    .map(|(rid, row)| {
                        let mut new_row = row.clone();
                        for (ci, e) in &assignments {
                            new_row[*ci] = e.eval(&[row]);
                        }
                        (rid, row.clone(), new_row)
                    })
                    .collect();
                self.stats.rows_scanned.fetch_add(table.len() as u64, Ordering::Relaxed);
                let table_name = table.name().to_string();
                let table = self.catalog.require_mut(&upd.table)?;
                let n = changes.len();
                for (rid, old, new) in changes {
                    table.replace(rid, new.clone())?;
                    // An UPDATE is a delete + insert in the log (Δ⁻ then Δ⁺).
                    self.log.append(&table_name, LogOp::Delete(old));
                    self.log.append(&table_name, LogOp::Insert(new));
                }
                self.stats.updates.fetch_add(n as u64, Ordering::Relaxed);
                Ok(ExecOutcome::Affected(n))
            }
            Statement::CreateTable(ct) => {
                let schema = Arc::new(Schema::new(
                    ct.columns
                        .iter()
                        .map(|(n, t)| ColumnDef::new(n.clone(), *t))
                        .collect(),
                ));
                let mut table = Table::new(ct.table.clone(), schema);
                for idx in &ct.indexes {
                    table.create_index(idx)?;
                }
                for idx in &ct.range_indexes {
                    table.create_range_index(idx)?;
                }
                self.catalog.create_table(table)?;
                Ok(ExecOutcome::Affected(0))
            }
            Statement::DropTable(name) => {
                self.catalog.drop_table(name)?;
                Ok(ExecOutcome::Affected(0))
            }
        }
    }

    /// Parse once, execute many times — avoids repeated parsing for the
    /// templated servlet queries that dominate the workload.
    pub fn prepare(&self, sql: &str) -> DbResult<PreparedStatement> {
        Ok(PreparedStatement { stmt: parse(sql)? })
    }

    /// Execute a prepared statement with positional parameters.
    pub fn execute_prepared(
        &mut self,
        prepared: &PreparedStatement,
        params: &[Value],
    ) -> DbResult<ExecOutcome> {
        self.execute_statement(&prepared.stmt, params)
    }

    /// Plan description for a SELECT (no execution).
    pub fn explain(&self, sql: &str) -> DbResult<String> {
        match parse(sql)? {
            Statement::Select(s) => crate::exec::explain_select(&self.catalog, &s, &[]),
            other => Ok(format!("{other:?}")),
        }
    }

    /// Run a SELECT through the read-only query path. Takes `&self`: any
    /// number of pollers (the invalidator's sharded sync-point workers, web
    /// connections holding a read lock) can execute concurrently, with
    /// statistics accounted through relaxed atomics. Non-SELECT statements
    /// are rejected with [`DbError::Unsupported`] rather than executed.
    pub fn query(&self, sql: &str) -> DbResult<QueryResult> {
        self.query_with_params(sql, &[])
    }

    /// Read-only SELECT with positional parameters (`$1`… / `?`).
    pub fn query_with_params(&self, sql: &str, params: &[Value]) -> DbResult<QueryResult> {
        let stmt = parse(sql)?;
        self.query_statement(&stmt, params)
    }

    /// Read-only SELECT from a prepared statement — the hot path for
    /// templated polling queries issued during a sync point.
    pub fn query_prepared(
        &self,
        prepared: &PreparedStatement,
        params: &[Value],
    ) -> DbResult<QueryResult> {
        self.query_statement(&prepared.stmt, params)
    }

    fn query_statement(&self, stmt: &Statement, params: &[Value]) -> DbResult<QueryResult> {
        match stmt {
            Statement::Select(s) => {
                let mut stats = ExecStats::default();
                let result = execute_select(&self.catalog, s, params, &mut stats)?;
                self.stats.selects.fetch_add(1, Ordering::Relaxed);
                self.stats.add_exec(&stats);
                Ok(result)
            }
            other => Err(DbError::Unsupported(format!(
                "read-only query path accepts only SELECT, got {other:?}"
            ))),
        }
    }

    /// Current log high-water mark (next LSN).
    pub fn high_water(&self) -> Lsn {
        self.log.high_water()
    }

    /// Direct row insertion bypassing SQL (bulk loading).
    pub fn insert_row(&mut self, table: &str, row: Row) -> DbResult<()> {
        let t = self.catalog.require_mut(table)?;
        let name = t.name().to_string();
        t.insert(row.clone())?;
        self.log.append(&name, LogOp::Insert(row));
        self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Delete one row by value (used by workload generators); returns
    /// whether a row was found.
    pub fn delete_row_equal(&mut self, table: &str, row: &[Value]) -> DbResult<bool> {
        let t = self.catalog.require_mut(table)?;
        let name = t.name().to_string();
        match t.find_equal(row) {
            Some(rid) => {
                let removed = t.delete(rid).expect("rid came from find_equal");
                self.log.append(&name, LogOp::Delete(removed));
                self.stats.deletes.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn eval_insert_rows(
        &self,
        table: &str,
        columns: Option<&[String]>,
        exprs: &[Vec<Expr>],
        params: &[Value],
    ) -> DbResult<Vec<Row>> {
        let t = self.catalog.require(table)?;
        let schema = t.schema().clone();
        // Empty context: INSERT values may not reference columns.
        let ctx = BindContext::new(vec![]);
        let mut out = Vec::with_capacity(exprs.len());
        for row_exprs in exprs {
            let values: Vec<Value> = row_exprs
                .iter()
                .map(|e| Ok(bind(e, &ctx, params)?.eval(&[])))
                .collect::<DbResult<_>>()?;
            let row = match columns {
                None => values,
                Some(cols) => {
                    if cols.len() != values.len() {
                        return Err(DbError::ArityMismatch {
                            expected: cols.len(),
                            got: values.len(),
                        });
                    }
                    let mut row = vec![Value::Null; schema.len()];
                    for (c, v) in cols.iter().zip(values) {
                        row[schema.require(c)?] = v;
                    }
                    row
                }
            };
            out.push(row);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Example 4.1 schema.
    pub fn example_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT, INDEX(model))")
            .unwrap();
        db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT, INDEX(model))")
            .unwrap();
        db.execute(
            "INSERT INTO Car VALUES ('Toyota','Avalon',25000), \
             ('Mitsubishi','Eclipse',20000), ('Honda','Civic',18000)",
        )
        .unwrap();
        db.execute("INSERT INTO Mileage VALUES ('Avalon', 28.0), ('Civic', 36.5)")
            .unwrap();
        db
    }

    #[test]
    fn select_star() {
        let db = example_db();
        let r = db.query("SELECT * FROM Car").unwrap();
        assert_eq!(r.columns, vec!["maker", "model", "price"]);
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn filtered_select_with_params() {
        let db = example_db();
        let r = db
            .query_with_params(
                "SELECT model FROM Car WHERE price <= $1",
                &[Value::Int(20000)],
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn paper_join_query() {
        let db = example_db();
        let r = db
            .query(
                "select Car.maker, Car.model, Car.price, Mileage.EPA \
                 from Car, Mileage \
                 where Car.model = Mileage.model and Car.price < 20000",
            )
            .unwrap();
        // Only Civic joins and is under 20000.
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][1], Value::Str("Civic".into()));
        assert_eq!(r.rows[0][3], Value::Float(36.5));
    }

    #[test]
    fn insert_affects_join_like_example_4_1() {
        let mut db = example_db();
        let q = "select Car.maker, Car.model, Car.price, Mileage.EPA \
                 from Car, Mileage \
                 where Car.model = Mileage.model and Car.price < 20000";
        let before = db.query(q).unwrap();
        // (Mitsubishi, Eclipse, 20000) is not < 20000 → no impact.
        db.execute("INSERT INTO Car VALUES ('Mitsubishi','Eclipse',20000)")
            .unwrap();
        assert_eq!(db.query(q).unwrap(), before);
        // (Dodge, Avalon, 15000) satisfies price and joins with Mileage.
        db.execute("INSERT INTO Car VALUES ('Dodge','Avalon',15000)")
            .unwrap();
        assert_eq!(db.query(q).unwrap().rows.len(), before.rows.len() + 1);
    }

    #[test]
    fn update_logs_delete_then_insert() {
        let mut db = example_db();
        let hw = db.high_water();
        db.execute("UPDATE Car SET price = 26000 WHERE model = 'Avalon'")
            .unwrap();
        let recs = db.update_log().pull_since(hw);
        assert_eq!(recs.len(), 2);
        assert!(matches!(&recs[0].op, LogOp::Delete(r) if r[2] == Value::Int(25000)));
        assert!(matches!(&recs[1].op, LogOp::Insert(r) if r[2] == Value::Int(26000)));
    }

    #[test]
    fn delete_with_and_without_where() {
        let mut db = example_db();
        assert_eq!(
            db.execute("DELETE FROM Car WHERE maker = 'Toyota'")
                .unwrap()
                .affected(),
            1
        );
        assert_eq!(db.execute("DELETE FROM Car").unwrap().affected(), 2);
        assert_eq!(db.query("SELECT * FROM Car").unwrap().rows.len(), 0);
    }

    #[test]
    fn aggregates_group_by_order() {
        let mut db = example_db();
        db.execute("INSERT INTO Car VALUES ('Toyota','Corolla',17000)")
            .unwrap();
        let r = db
            .query("SELECT maker, COUNT(*), MIN(price) FROM Car GROUP BY maker ORDER BY maker")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[2][0], Value::Str("Toyota".into()));
        assert_eq!(r.rows[2][1], Value::Int(2));
        assert_eq!(r.rows[2][2], Value::Int(17000));
    }

    #[test]
    fn count_on_empty_table() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        let r = db.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(0)]]);
        let r = db.query("SELECT a, COUNT(*) FROM t GROUP BY a").unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn order_by_desc_and_limit() {
        let db = example_db();
        let r = db
            .query("SELECT model, price FROM Car ORDER BY price DESC LIMIT 2")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Str("Avalon".into()));
    }

    #[test]
    fn distinct_dedupes() {
        let mut db = example_db();
        db.execute("INSERT INTO Car VALUES ('Toyota','Supra',45000)")
            .unwrap();
        let r = db.query("SELECT DISTINCT maker FROM Car").unwrap();
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let mut db = example_db();
        db.execute("INSERT INTO Car (model, maker) VALUES ('Yaris','Toyota')")
            .unwrap();
        let r = db
            .query("SELECT price FROM Car WHERE model = 'Yaris'")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Null);
    }

    #[test]
    fn errors_surface() {
        let mut db = example_db();
        assert!(matches!(
            db.query("SELECT * FROM Nope"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            db.query("SELECT nope FROM Car"),
            Err(DbError::UnknownColumn(_))
        ));
        assert!(matches!(
            db.execute("CREATE TABLE Car (x INT)"),
            Err(DbError::TableExists(_))
        ));
        assert!(matches!(
            db.query("SELECT model FROM Car, Mileage"),
            Err(DbError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn delete_row_equal_roundtrip() {
        let mut db = example_db();
        assert!(db
            .delete_row_equal("Car", &["Toyota".into(), "Avalon".into(), Value::Int(25000)])
            .unwrap());
        assert!(!db
            .delete_row_equal("Car", &["Toyota".into(), "Avalon".into(), Value::Int(25000)])
            .unwrap());
    }

    #[test]
    fn stats_accumulate() {
        let db = example_db();
        let s0 = db.stats().selects;
        db.query("SELECT * FROM Car").unwrap();
        assert_eq!(db.stats().selects, s0 + 1);
        assert!(db.stats().exec.work() > 0);
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let db = example_db();
        let a = db
            .query("SELECT model FROM Car ORDER BY price")
            .unwrap()
            .fingerprint();
        let b = db
            .query("SELECT model FROM Car ORDER BY price DESC")
            .unwrap()
            .fingerprint();
        assert_ne!(a, b);
    }

    #[test]
    fn index_probe_used_for_equality() {
        let db = example_db();
        db.query("SELECT * FROM Car WHERE model = 'Avalon'").unwrap();
        assert!(db.stats().exec.index_probes > 0);
        assert_eq!(db.stats().exec.rows_scanned, 0, "no full scan needed");
    }

    fn range_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT, s TEXT, RANGE INDEX(a))").unwrap();
        for i in 0..100 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 's{i}')")).unwrap();
        }
        db
    }

    #[test]
    fn range_index_used_for_inequalities() {
        let db = range_db();
        let r = db.query("SELECT a FROM t WHERE a < 10").unwrap();
        assert_eq!(r.rows.len(), 10);
        assert_eq!(db.stats().exec.rows_scanned, 0, "range scan, no seq scan");
        assert_eq!(db.stats().exec.index_probes, 10);

        let r = db.query("SELECT a FROM t WHERE a >= 95").unwrap();
        assert_eq!(r.rows.len(), 5);
        let r = db.query("SELECT a FROM t WHERE a BETWEEN 40 AND 49").unwrap();
        assert_eq!(r.rows.len(), 10);
        let r = db.query("SELECT a FROM t WHERE a = 7").unwrap();
        assert_eq!(r.rows.len(), 1, "equality also served by the range index");
        assert_eq!(db.stats().exec.rows_scanned, 0);
    }

    #[test]
    fn range_index_results_match_seq_scan() {
        let with_ix = range_db();
        let mut without = Database::new();
        without.execute("CREATE TABLE t (a INT, s TEXT)").unwrap();
        for i in 0..100 {
            without
                .execute(&format!("INSERT INTO t VALUES ({i}, 's{i}')"))
                .unwrap();
        }
        for q in [
            "SELECT * FROM t WHERE a < 17 ORDER BY a",
            "SELECT * FROM t WHERE a > 90 ORDER BY a",
            "SELECT * FROM t WHERE 50 <= a AND a <= 52 ORDER BY a",
            "SELECT * FROM t WHERE a BETWEEN 98 AND 200 ORDER BY a",
        ] {
            assert_eq!(with_ix.query(q).unwrap(), without.query(q).unwrap(), "{q}");
        }
    }

    #[test]
    fn range_index_maintained_across_dml() {
        let mut db = range_db();
        db.execute("DELETE FROM t WHERE a < 50").unwrap();
        db.execute("UPDATE t SET a = 1 WHERE a = 99").unwrap();
        let r = db.query("SELECT a FROM t WHERE a < 10").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn prepared_statements_round_trip() {
        let mut db = example_db();
        let stmt = db
            .prepare("SELECT model FROM Car WHERE price <= $1")
            .unwrap();
        let r1 = db
            .execute_prepared(&stmt, &[Value::Int(20000)])
            .unwrap()
            .rows();
        assert_eq!(r1.rows.len(), 2);
        let r2 = db
            .execute_prepared(&stmt, &[Value::Int(18500)])
            .unwrap()
            .rows();
        assert_eq!(r2.rows.len(), 1);
        assert!(db.prepare("SELECT nonsense FROM").is_err());
    }

    #[test]
    fn having_filters_groups() {
        let mut db = example_db();
        db.execute("INSERT INTO Car VALUES ('Toyota','Corolla',17000)").unwrap();
        let r = db
            .query("SELECT maker, COUNT(*) FROM Car GROUP BY maker HAVING COUNT(*) >= 2")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Str("Toyota".into()));
        // Alias form.
        let r = db
            .query("SELECT maker, COUNT(*) AS n FROM Car GROUP BY maker HAVING n >= 2 ORDER BY maker")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        // Grouped column in HAVING.
        let r = db
            .query("SELECT maker, COUNT(*) FROM Car GROUP BY maker HAVING maker = 'Honda'")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][1], Value::Int(1));
    }

    #[test]
    fn having_errors_are_typed() {
        let db = example_db();
        assert!(matches!(
            db.query("SELECT maker FROM Car HAVING maker = 'x'"),
            Err(DbError::Unsupported(_))
        ));
        // Unprojected aggregate in HAVING is rejected, not silently wrong.
        assert!(matches!(
            db.query("SELECT maker, COUNT(*) FROM Car GROUP BY maker HAVING SUM(price) > 1"),
            Err(DbError::Unsupported(_))
        ));
    }

    #[test]
    fn inner_join_on_is_sugar_for_comma_join() {
        let db = example_db();
        let a = db
            .query(
                "SELECT Car.maker, Mileage.EPA FROM Car INNER JOIN Mileage \
                 ON Car.model = Mileage.model WHERE Car.price < 20000 ORDER BY Car.maker",
            )
            .unwrap();
        let b = db
            .query(
                "SELECT Car.maker, Mileage.EPA FROM Car, Mileage \
                 WHERE Car.model = Mileage.model AND Car.price < 20000 ORDER BY Car.maker",
            )
            .unwrap();
        assert_eq!(a, b);
        assert!(!a.rows.is_empty());
    }

    #[test]
    fn chained_joins_with_aliases() {
        let mut db = example_db();
        db.execute("CREATE TABLE Dealer (model TEXT, city TEXT)").unwrap();
        db.execute("INSERT INTO Dealer VALUES ('Civic','Austin')").unwrap();
        let r = db
            .query(
                "SELECT c.maker, d.city FROM Car c \
                 JOIN Mileage m ON c.model = m.model \
                 JOIN Dealer d ON c.model = d.model",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][1], Value::Str("Austin".into()));
    }

    #[test]
    fn scalar_functions_evaluate() {
        let mut db = example_db();
        let r = db
            .query("SELECT UPPER(maker), LENGTH(model) FROM Car WHERE model = 'Civic'")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Str("HONDA".into()));
        assert_eq!(r.rows[0][1], Value::Int(5));

        let r = db
            .query("SELECT model FROM Car WHERE LOWER(maker) = 'toyota'")
            .unwrap();
        assert_eq!(r.rows.len(), 1);

        let r = db.query("SELECT ABS(0 - price) FROM Car WHERE model = 'Civic'").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(18000));

        db.execute("INSERT INTO Car (maker, model) VALUES ('X','NoPrice')").unwrap();
        let r = db
            .query("SELECT COALESCE(price, 0 - 1) FROM Car WHERE model = 'NoPrice'")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(-1));

        // NULL propagates; type mismatch yields NULL (→ false in WHERE).
        let r = db
            .query("SELECT model FROM Car WHERE UPPER(price) = 'X'")
            .unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn scalar_functions_round_trip_through_display() {
        let db = example_db();
        let plan = db.explain("SELECT UPPER(maker) FROM Car WHERE LENGTH(model) > 4");
        assert!(plan.is_ok());
        use crate::sql::parser::parse;
        let sql = "SELECT UPPER(maker) FROM Car WHERE COALESCE(price, 0) > 5";
        let ast = parse(sql).unwrap();
        assert_eq!(parse(&ast.to_sql()).unwrap(), ast);
    }

    #[test]
    fn explain_reports_access_paths() {
        let db = example_db();
        let plan = db
            .explain("SELECT * FROM Car, Mileage WHERE Car.model = Mileage.model AND Car.model = 'x'")
            .unwrap();
        assert!(plan.contains("INDEX PROBE (model) Car"), "{plan}");
        assert!(plan.contains("HASH JOIN"), "{plan}");

        let db2 = {
            let mut d = Database::new();
            d.execute("CREATE TABLE t (a INT, RANGE INDEX(a))").unwrap();
            d
        };
        let plan = db2
            .explain("SELECT a, COUNT(*) FROM t WHERE a < 5 GROUP BY a ORDER BY a LIMIT 3")
            .unwrap();
        assert!(plan.contains("RANGE SCAN (a)"), "{plan}");
        assert!(plan.contains("AGGREGATE"), "{plan}");
        assert!(plan.contains("SORT"), "{plan}");
        assert!(plan.contains("LIMIT"), "{plan}");

        let plan = db.explain("SELECT * FROM Car WHERE price > 1").unwrap();
        assert!(plan.contains("SEQ SCAN"), "{plan}");
    }
}

//! Error type shared by the whole engine.

use crate::schema::ColType;
use std::fmt;

/// Any error the engine can produce: parse, bind, type, or execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Lexer/parser error with position info baked into the message.
    Parse(String),
    /// Referenced table does not exist.
    UnknownTable(String),
    /// Referenced column does not exist (possibly qualified).
    UnknownColumn(String),
    /// Column name matches more than one table in the FROM list.
    AmbiguousColumn(String),
    /// Table already exists on CREATE.
    TableExists(String),
    /// INSERT arity differs from the schema.
    /// INSERT/parameter arity differs from what the schema requires.
    ArityMismatch {
        /// Values required.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// Value does not conform to the declared column type.
    TypeMismatch {
        /// Column whose declared type was violated.
        column: String,
        /// Declared column type.
        expected: ColType,
        /// Type name of the offending value.
        got: &'static str,
    },
    /// A `$n` / `?` parameter had no binding.
    UnboundParameter(usize),
    /// Statement kind not supported by the executor (kept for forward compat).
    Unsupported(String),
    /// An injected fault fired at this site (fault-injection harness only).
    Faulted(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            DbError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            DbError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: expected {expected} values, got {got}")
            }
            DbError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch for column {column}: expected {expected}, got {got}"
            ),
            DbError::UnboundParameter(i) => write!(f, "unbound parameter ${i}"),
            DbError::Unsupported(m) => write!(f, "unsupported: {m}"),
            DbError::Faulted(m) => write!(f, "injected fault: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Crate-wide result alias.
pub type DbResult<T> = Result<T, DbError>;

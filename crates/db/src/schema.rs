//! Table schemas: column names, declared types, and lookup helpers.

use crate::error::DbError;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Declared column type. The engine stores [`Value`]s dynamically but
/// validates inserts against the declared type (NULL is always accepted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 64-bit integer column.
    Int,
    /// 64-bit float column.
    Float,
    /// UTF-8 text column.
    Str,
}

impl ColType {
    /// Does `v` conform to this declared type? Ints are accepted where a
    /// float is declared (widening), mirroring common SQL behaviour.
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColType::Int, Value::Int(_))
                | (ColType::Float, Value::Float(_) | Value::Int(_))
                | (ColType::Str, Value::Str(_))
        )
    }

    /// Keyword used by `CREATE TABLE` round-tripping.
    pub fn sql_name(&self) -> &'static str {
        match self {
            ColType::Int => "INT",
            ColType::Float => "FLOAT",
            ColType::Str => "TEXT",
        }
    }
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: ColType,
}

impl ColumnDef {
    /// Build a schema from column definitions.
    pub fn new(name: impl Into<String>, ty: ColType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of columns. Shared (`Arc`) between a table and every row
/// batch produced from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from column definitions.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Schema { columns }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(cols: &[(&str, ColType)]) -> SchemaRef {
        Arc::new(Schema::new(
            cols.iter()
                .map(|(n, t)| ColumnDef::new(*n, *t))
                .collect(),
        ))
    }

    /// Columns, in declaration order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Case-insensitive column lookup, as SQL identifiers are.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Like [`Schema::index_of`] but with a typed error.
    pub fn require(&self, name: &str) -> Result<usize, DbError> {
        self.index_of(name)
            .ok_or_else(|| DbError::UnknownColumn(name.to_string()))
    }

    /// Column definition at `idx`.
    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    /// Validate a row against declared types and arity.
    pub fn check_row(&self, row: &[Value]) -> Result<(), DbError> {
        if row.len() != self.columns.len() {
            return Err(DbError::ArityMismatch {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for (col, v) in self.columns.iter().zip(row) {
            if !col.ty.admits(v) {
                return Err(DbError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty,
                    got: v.type_name(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", ColType::Int),
            ColumnDef::new("Price", ColType::Float),
            ColumnDef::new("name", ColType::Str),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.index_of("PRICE"), Some(1));
        assert_eq!(s.index_of("price"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn check_row_accepts_widening_and_null() {
        let s = schema();
        s.check_row(&[Value::Int(1), Value::Int(2), Value::Null])
            .expect("int widens to float; null ok");
    }

    #[test]
    fn check_row_rejects_bad_type_and_arity() {
        let s = schema();
        assert!(matches!(
            s.check_row(&[Value::Str("x".into()), Value::Int(2), Value::Null]),
            Err(DbError::TypeMismatch { .. })
        ));
        assert!(matches!(
            s.check_row(&[Value::Int(1)]),
            Err(DbError::ArityMismatch { .. })
        ));
    }
}

//! Single-writer transactions.
//!
//! The engine applies statements immediately; a [`Transaction`] remembers
//! the update-log position at `begin` and, on rollback, undoes everything
//! after it (re-inserting deleted rows, deleting inserted rows) and rewinds
//! the log — so log consumers (the invalidator!) only ever observe
//! *committed* changes. Holding `&mut Database` makes the transaction the
//! sole writer for its lifetime, which is exactly the isolation level the
//! paper's workload needs (backend update processes apply atomic business
//! operations like "insert the car and its mileage record together").
//!
//! Dropping a transaction without calling [`Transaction::commit`] rolls it
//! back.

use crate::engine::{Database, ExecOutcome};
use crate::error::DbResult;
use crate::log::{LogOp, Lsn};
use crate::value::Value;

/// An open transaction. Created by [`Database::begin`].
pub struct Transaction<'a> {
    db: &'a mut Database,
    start_lsn: Lsn,
    finished: bool,
}

impl Database {
    /// Begin a transaction. The returned guard is the only writer until it
    /// commits, rolls back, or is dropped (drop = rollback).
    pub fn begin(&mut self) -> Transaction<'_> {
        let start_lsn = self.high_water();
        self.note_txn_begin();
        Transaction {
            db: self,
            start_lsn,
            finished: false,
        }
    }
}

impl Transaction<'_> {
    /// Consult the database's fault plan before a statement runs. An
    /// injected abort surfaces as [`DbError::Faulted`]; the caller is
    /// expected to roll back (or drop the guard, which rolls back), so the
    /// update log never exposes the partial transaction.
    fn check_injected_abort(&self) -> DbResult<()> {
        if self.db.fault_plan().txn_abort() {
            return Err(crate::error::DbError::Faulted(
                "transaction aborted mid-stream".into(),
            ));
        }
        Ok(())
    }

    /// Execute a statement inside the transaction.
    pub fn execute(&mut self, sql: &str) -> DbResult<ExecOutcome> {
        self.check_injected_abort()?;
        self.db.execute(sql)
    }

    /// Execute with positional parameters.
    pub fn execute_with_params(&mut self, sql: &str, params: &[Value]) -> DbResult<ExecOutcome> {
        self.check_injected_abort()?;
        self.db.execute_with_params(sql, params)
    }

    /// Run a SELECT inside the transaction (sees its own writes).
    pub fn query(&mut self, sql: &str) -> DbResult<crate::exec::QueryResult> {
        self.db.query(sql)
    }

    /// Make the transaction's changes permanent. Returns the inclusive LSN
    /// range the transaction appended to the update log (`None` if it wrote
    /// nothing) — the handle downstream provenance keys eject chains on.
    pub fn commit(mut self) -> Option<(Lsn, Lsn)> {
        self.finished = true;
        self.db.note_txn_commit();
        let end = self.db.high_water();
        (end > self.start_lsn).then(|| (self.start_lsn, end - 1))
    }

    /// Undo every change made since `begin`.
    pub fn rollback(mut self) -> DbResult<()> {
        self.finished = true;
        self.rollback_inner()
    }

    fn rollback_inner(&mut self) -> DbResult<()> {
        self.db.note_txn_abort();
        // Collect the records to undo (newest first).
        let records: Vec<(String, LogOp)> = self
            .db
            .update_log()
            .pull_since(self.start_lsn)
            .iter()
            .rev()
            .map(|r| (r.table.clone(), r.op.clone()))
            .collect();
        for (table, op) in records {
            match op {
                LogOp::Insert(row) => {
                    // Remove exactly one copy of the inserted row.
                    let t = self.db.catalog_mut().require_mut(&table)?;
                    if let Some(rid) = t.find_equal(&row) {
                        t.delete(rid);
                    }
                }
                LogOp::Delete(row) => {
                    let t = self.db.catalog_mut().require_mut(&table)?;
                    t.insert(row)?;
                }
            }
        }
        // Rewind the log: the aborted records were never committed.
        self.db.update_log_mut().rewind_to(self.start_lsn);
        Ok(())
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if !self.finished {
            // Best-effort rollback on drop; schema errors cannot occur when
            // undoing rows that were just present.
            let _ = self.rollback_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT, INDEX(model))")
            .unwrap();
        db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT)").unwrap();
        db.execute("INSERT INTO Car VALUES ('Honda','Civic',18000)").unwrap();
        db
    }

    #[test]
    fn commit_keeps_changes_and_log() {
        let mut db = db();
        let hw = db.high_water();
        let mut tx = db.begin();
        tx.execute("INSERT INTO Car VALUES ('Kia','Rio',12000)").unwrap();
        tx.execute("INSERT INTO Mileage VALUES ('Rio', 33.0)").unwrap();
        assert_eq!(tx.commit(), Some((hw, hw + 1)), "committed LSN range");
        assert_eq!(db.query("SELECT * FROM Car").unwrap().rows.len(), 2);
        assert_eq!(db.update_log().pull_since(hw).len(), 2);
    }

    #[test]
    fn empty_commit_reports_no_lsn_range() {
        let mut db = db();
        let tx = db.begin();
        assert_eq!(tx.commit(), None);
    }

    #[test]
    fn rollback_restores_state_and_rewinds_log() {
        let mut db = db();
        let before = db.query("SELECT * FROM Car ORDER BY model").unwrap();
        let hw = db.high_water();
        let tx_result = {
            let mut tx = db.begin();
            tx.execute("INSERT INTO Car VALUES ('Kia','Rio',12000)").unwrap();
            tx.execute("UPDATE Car SET price = 99999 WHERE model = 'Civic'").unwrap();
            tx.execute("DELETE FROM Car WHERE model = 'Civic'").unwrap();
            // Transaction sees its own writes.
            assert_eq!(tx.query("SELECT * FROM Car").unwrap().rows.len(), 1);
            tx.rollback()
        };
        tx_result.unwrap();
        assert_eq!(db.query("SELECT * FROM Car ORDER BY model").unwrap(), before);
        assert_eq!(
            db.update_log().pull_since(hw).len(),
            0,
            "aborted records are not visible to log consumers"
        );
        assert_eq!(db.high_water(), hw, "LSNs rewound");
    }

    #[test]
    fn drop_without_commit_rolls_back() {
        let mut db = db();
        {
            let mut tx = db.begin();
            tx.execute("DELETE FROM Car").unwrap();
            // dropped here
        }
        assert_eq!(db.query("SELECT * FROM Car").unwrap().rows.len(), 1);
    }

    #[test]
    fn rollback_preserves_index_consistency() {
        let mut db = db();
        {
            let mut tx = db.begin();
            tx.execute("UPDATE Car SET model = 'CivicX' WHERE model = 'Civic'")
                .unwrap();
        } // rollback on drop
        // Index must still find the original value.
        let r = db
            .query("SELECT * FROM Car WHERE model = 'Civic'")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        let r = db
            .query("SELECT * FROM Car WHERE model = 'CivicX'")
            .unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn injected_abort_rolls_back_cleanly() {
        use crate::fault::{FaultPlan, FaultSpec};
        let mut db = db();
        let hw = db.high_water();
        db.set_fault_plan(FaultPlan::new(FaultSpec {
            txn_abort: 1.0,
            ..FaultSpec::default()
        }));
        {
            let mut tx = db.begin();
            let err = tx.execute("INSERT INTO Car VALUES ('Kia','Rio',12000)");
            assert!(matches!(err, Err(crate::error::DbError::Faulted(_))));
            // dropped → rollback
        }
        assert_eq!(db.fault_plan().counts().txn_aborts, 1);
        assert_eq!(db.high_water(), hw, "log never exposed the aborted txn");
        assert_eq!(db.query("SELECT * FROM Car").unwrap().rows.len(), 1);
    }

    #[test]
    fn sequential_transactions_interleave_cleanly() {
        let mut db = db();
        {
            let mut tx = db.begin();
            tx.execute("INSERT INTO Car VALUES ('A','a',1)").unwrap();
            tx.commit();
        }
        {
            let mut tx = db.begin();
            tx.execute("INSERT INTO Car VALUES ('B','b',2)").unwrap();
            // rolled back
        }
        {
            let mut tx = db.begin();
            tx.execute("INSERT INTO Car VALUES ('C','c',3)").unwrap();
            tx.commit();
        }
        let r = db.query("SELECT maker FROM Car ORDER BY maker").unwrap();
        let makers: Vec<String> = r.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(makers, vec!["A", "C", "Honda"]);
        // Log contains exactly the committed inserts (plus seeding).
        assert_eq!(db.update_log().len(), 3);
    }
}

//! Name resolution and expression evaluation.
//!
//! Expressions are *bound* once per query against the FROM-list schemas
//! (string lookups resolved to `(table_no, column_no)` pairs), then evaluated
//! per row without any string hashing — the hot path of the executor.

use crate::error::{DbError, DbResult};
use crate::schema::SchemaRef;
use crate::sql::ast::{AggFunc, ArithOp, CmpOp, ColumnRef, Expr};
use crate::table::Row;
use crate::value::Value;

/// The binding environment: one entry per FROM-list table, in order.
#[derive(Debug, Clone)]
pub struct BindContext {
    /// `(binding name, schema)` — binding name is the alias if present.
    pub tables: Vec<(String, SchemaRef)>,
}

impl BindContext {
    /// Build a context from FROM-list bindings, in order.
    pub fn new(tables: Vec<(String, SchemaRef)>) -> Self {
        BindContext { tables }
    }

    /// Resolve a possibly-qualified column to `(table_no, col_no)`.
    pub fn resolve(&self, c: &ColumnRef) -> DbResult<(usize, usize)> {
        match &c.table {
            Some(t) => {
                let (ti, (_, schema)) = self
                    .tables
                    .iter()
                    .enumerate()
                    .find(|(_, (name, _))| name.eq_ignore_ascii_case(t))
                    .ok_or_else(|| DbError::UnknownTable(t.clone()))?;
                Ok((ti, schema.require(&c.column)?))
            }
            None => {
                let mut found = None;
                for (ti, (_, schema)) in self.tables.iter().enumerate() {
                    if let Some(ci) = schema.index_of(&c.column) {
                        if found.is_some() {
                            return Err(DbError::AmbiguousColumn(c.column.clone()));
                        }
                        found = Some((ti, ci));
                    }
                }
                found.ok_or_else(|| DbError::UnknownColumn(c.column.clone()))
            }
        }
    }
}

/// A fully resolved expression. Mirrors [`Expr`] minus aggregates (the
/// executor strips aggregates before binding; see `exec`).
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// Resolved column `(table_no, column_no)`.
    /// Resolved column `(table_no, column_no)`.
    Column {
        /// FROM-list position.
        table: usize,
        /// Column position within the table.
        column: usize,
    },
    /// Constant value (parameters are substituted at bind time).
    Literal(Value),
    /// Comparison `left op right`.
    Cmp {
        /// Left operand.
        left: Box<BoundExpr>,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Arithmetic `left op right`.
    Arith {
        /// Left operand.
        left: Box<BoundExpr>,
        /// Operator.
        op: ArithOp,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Boolean conjunction (NULL collapses to false).
    And(Box<BoundExpr>, Box<BoundExpr>),
    /// Boolean disjunction (NULL collapses to false).
    Or(Box<BoundExpr>, Box<BoundExpr>),
    /// Boolean negation.
    Not(Box<BoundExpr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Inner expression.
        expr: Box<BoundExpr>,
        /// True for the `NOT` form.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Inner expression.
        expr: Box<BoundExpr>,
        /// Lower bound (inclusive).
        low: Box<BoundExpr>,
        /// Upper bound (inclusive).
        high: Box<BoundExpr>,
        /// True for the `NOT` form.
        negated: bool,
    },
    /// `expr [NOT] IN (â¦)`.
    InList {
        /// Inner expression.
        expr: Box<BoundExpr>,
        /// Candidate values.
        list: Vec<BoundExpr>,
        /// True for the `NOT` form.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Inner expression.
        expr: Box<BoundExpr>,
        /// LIKE pattern (`%`, `_`).
        pattern: Box<BoundExpr>,
        /// True for the `NOT` form.
        negated: bool,
    },
    /// Scalar function call.
    Func {
        /// The function.
        func: crate::sql::ast::ScalarFunc,
        /// Arguments, in order.
        args: Vec<BoundExpr>,
    },
}

/// Bind `expr` against `ctx`, substituting `params` for `$n` markers.
/// Aggregate nodes are rejected here; the executor handles them separately.
pub fn bind(expr: &Expr, ctx: &BindContext, params: &[Value]) -> DbResult<BoundExpr> {
    Ok(match expr {
        Expr::Column(c) => {
            let (table, column) = ctx.resolve(c)?;
            BoundExpr::Column { table, column }
        }
        Expr::Literal(v) => BoundExpr::Literal(v.clone()),
        Expr::Param(i) => BoundExpr::Literal(
            params
                .get(i - 1)
                .cloned()
                .ok_or(DbError::UnboundParameter(*i))?,
        ),
        Expr::Cmp { left, op, right } => BoundExpr::Cmp {
            left: Box::new(bind(left, ctx, params)?),
            op: *op,
            right: Box::new(bind(right, ctx, params)?),
        },
        Expr::Arith { left, op, right } => BoundExpr::Arith {
            left: Box::new(bind(left, ctx, params)?),
            op: *op,
            right: Box::new(bind(right, ctx, params)?),
        },
        Expr::And(a, b) => BoundExpr::And(
            Box::new(bind(a, ctx, params)?),
            Box::new(bind(b, ctx, params)?),
        ),
        Expr::Or(a, b) => BoundExpr::Or(
            Box::new(bind(a, ctx, params)?),
            Box::new(bind(b, ctx, params)?),
        ),
        Expr::Not(e) => BoundExpr::Not(Box::new(bind(e, ctx, params)?)),
        Expr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(bind(expr, ctx, params)?),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => BoundExpr::Between {
            expr: Box::new(bind(expr, ctx, params)?),
            low: Box::new(bind(low, ctx, params)?),
            high: Box::new(bind(high, ctx, params)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => BoundExpr::InList {
            expr: Box::new(bind(expr, ctx, params)?),
            list: list
                .iter()
                .map(|e| bind(e, ctx, params))
                .collect::<DbResult<_>>()?,
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => BoundExpr::Like {
            expr: Box::new(bind(expr, ctx, params)?),
            pattern: Box::new(bind(pattern, ctx, params)?),
            negated: *negated,
        },
        Expr::Func { func, args } => BoundExpr::Func {
            func: *func,
            args: args
                .iter()
                .map(|a| bind(a, ctx, params))
                .collect::<DbResult<_>>()?,
        },
        Expr::Agg { .. } => {
            return Err(DbError::Unsupported(
                "aggregate in non-aggregate position".into(),
            ))
        }
    })
}

impl BoundExpr {
    /// Evaluate against one row per FROM table.
    pub fn eval(&self, rows: &[&Row]) -> Value {
        match self {
            BoundExpr::Column { table, column } => rows[*table][*column].clone(),
            BoundExpr::Literal(v) => v.clone(),
            BoundExpr::Cmp { left, op, right } => {
                let l = left.eval(rows);
                let r = right.eval(rows);
                match l.sql_cmp(&r) {
                    None => Value::Null,
                    Some(ord) => Value::Int(i64::from(match op {
                        CmpOp::Eq => ord.is_eq(),
                        CmpOp::NotEq => ord.is_ne(),
                        CmpOp::Lt => ord.is_lt(),
                        CmpOp::LtEq => ord.is_le(),
                        CmpOp::Gt => ord.is_gt(),
                        CmpOp::GtEq => ord.is_ge(),
                    })),
                }
            }
            BoundExpr::Arith { left, op, right } => {
                arith(&left.eval(rows), *op, &right.eval(rows))
            }
            BoundExpr::And(a, b) => {
                // Collapsed three-valued logic: NULL acts as false.
                if truthy(&a.eval(rows)) && truthy(&b.eval(rows)) {
                    Value::Int(1)
                } else {
                    Value::Int(0)
                }
            }
            BoundExpr::Or(a, b) => {
                if truthy(&a.eval(rows)) || truthy(&b.eval(rows)) {
                    Value::Int(1)
                } else {
                    Value::Int(0)
                }
            }
            BoundExpr::Not(e) => Value::Int(i64::from(!truthy(&e.eval(rows)))),
            BoundExpr::IsNull { expr, negated } => {
                Value::Int(i64::from(expr.eval(rows).is_null() != *negated))
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(rows);
                let lo = low.eval(rows);
                let hi = high.eval(rows);
                let inside = matches!(v.sql_cmp(&lo), Some(o) if o.is_ge())
                    && matches!(v.sql_cmp(&hi), Some(o) if o.is_le());
                Value::Int(i64::from(inside != *negated))
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(rows);
                let found = list
                    .iter()
                    .any(|e| v.sql_eq(&e.eval(rows)).unwrap_or(false));
                Value::Int(i64::from(found != *negated))
            }
            BoundExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(rows);
                let p = pattern.eval(rows);
                match (v, p) {
                    (Value::Str(s), Value::Str(pat)) => {
                        Value::Int(i64::from(like_match(&s, &pat) != *negated))
                    }
                    _ => Value::Int(0),
                }
            }
            BoundExpr::Func { func, args } => {
                use crate::sql::ast::ScalarFunc;
                match func {
                    ScalarFunc::Coalesce => {
                        for a in args {
                            let v = a.eval(rows);
                            if !v.is_null() {
                                return v;
                            }
                        }
                        Value::Null
                    }
                    _ => {
                        let v = args.first().map(|a| a.eval(rows)).unwrap_or(Value::Null);
                        match (func, v) {
                            (_, Value::Null) => Value::Null,
                            (ScalarFunc::Upper, Value::Str(s)) => {
                                Value::Str(s.to_ascii_uppercase())
                            }
                            (ScalarFunc::Lower, Value::Str(s)) => {
                                Value::Str(s.to_ascii_lowercase())
                            }
                            (ScalarFunc::Length, Value::Str(s)) => {
                                Value::Int(s.chars().count() as i64)
                            }
                            (ScalarFunc::Abs, Value::Int(i)) => Value::Int(i.abs()),
                            (ScalarFunc::Abs, Value::Float(f)) => Value::Float(f.abs()),
                            // Type mismatches yield NULL (collapses to false
                            // in predicates, consistent with the engine).
                            _ => Value::Null,
                        }
                    }
                }
            }
        }
    }

    /// Evaluate as a predicate: NULL and non-true collapse to `false`.
    pub fn eval_predicate(&self, rows: &[&Row]) -> bool {
        truthy(&self.eval(rows))
    }
}

/// SQL truthiness: nonzero numbers are true, everything else false.
pub fn truthy(v: &Value) -> bool {
    match v {
        Value::Int(i) => *i != 0,
        Value::Float(f) => *f != 0.0,
        _ => false,
    }
}

/// Arithmetic with Int/Float coercion; NULL propagates; division by zero
/// yields NULL (closest safe analogue to a SQL error in this engine).
pub fn arith(l: &Value, op: ArithOp, r: &Value) -> Value {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => match op {
            ArithOp::Add => Value::Int(a.wrapping_add(*b)),
            ArithOp::Sub => Value::Int(a.wrapping_sub(*b)),
            ArithOp::Mul => Value::Int(a.wrapping_mul(*b)),
            ArithOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.wrapping_div(*b))
                }
            }
        },
        (Value::Null, _) | (_, Value::Null) => Value::Null,
        (a, b) => {
            let (x, y) = match (to_f64(a), to_f64(b)) {
                (Some(x), Some(y)) => (x, y),
                _ => return Value::Null,
            };
            match op {
                ArithOp::Add => Value::Float(x + y),
                ArithOp::Sub => Value::Float(x - y),
                ArithOp::Mul => Value::Float(x * y),
                ArithOp::Div => {
                    if y == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(x / y)
                    }
                }
            }
        }
    }
}

fn to_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// SQL LIKE with `%` (any run) and `_` (any single char). Iterative
/// two-pointer algorithm, O(|s|·|p|) worst case.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star, mut star_si) = (None::<usize>, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_si = si;
            pi += 1;
        } else if let Some(sp) = star {
            pi = sp + 1;
            star_si += 1;
            si = star_si;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// Streaming aggregate accumulator.
#[derive(Debug, Clone)]
pub struct AggState {
    func: AggFunc,
    count: u64,
    sum: f64,
    all_int: bool,
    min: Option<Value>,
    max: Option<Value>,
    distinct: Option<std::collections::HashSet<Value>>,
}

impl AggState {
    /// Build a context from FROM-list bindings, in order.
    pub fn new(func: AggFunc, distinct: bool) -> Self {
        AggState {
            func,
            count: 0,
            sum: 0.0,
            all_int: true,
            min: None,
            max: None,
            distinct: distinct.then(std::collections::HashSet::new),
        }
    }

    /// Feed one input value. `None` means `COUNT(*)` (no argument).
    pub fn update(&mut self, v: Option<&Value>) {
        match v {
            None => self.count += 1, // COUNT(*)
            Some(Value::Null) => {}  // SQL aggregates skip NULLs
            Some(v) => {
                if let Some(seen) = &mut self.distinct {
                    if !seen.insert(v.clone()) {
                        return;
                    }
                }
                self.count += 1;
                match v {
                    Value::Int(i) => self.sum += *i as f64,
                    Value::Float(f) => {
                        self.sum += f;
                        self.all_int = false;
                    }
                    _ => self.all_int = false,
                }
                if self.min.as_ref().is_none_or(|m| v < m) {
                    self.min = Some(v.clone());
                }
                if self.max.as_ref().is_none_or(|m| v > m) {
                    self.max = Some(v.clone());
                }
            }
        }
    }

    /// Final value of the aggregate.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.all_int {
                    Value::Int(self.sum as i64)
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, Schema};
    use crate::sql::parser::parse_select;

    fn ctx() -> BindContext {
        BindContext::new(vec![
            (
                "Car".to_string(),
                Schema::of(&[
                    ("maker", ColType::Str),
                    ("model", ColType::Str),
                    ("price", ColType::Int),
                ]),
            ),
            (
                "Mileage".to_string(),
                Schema::of(&[("model", ColType::Str), ("EPA", ColType::Float)]),
            ),
        ])
    }

    fn eval_where(sql: &str, rows: &[&Row], params: &[Value]) -> bool {
        let sel = parse_select(sql).unwrap();
        let bound = bind(&sel.where_clause.unwrap(), &ctx(), params).unwrap();
        bound.eval_predicate(rows)
    }

    #[test]
    fn qualified_and_unqualified_resolution() {
        let c = ctx();
        assert_eq!(
            c.resolve(&ColumnRef::new(Some("Mileage"), "EPA")).unwrap(),
            (1, 1)
        );
        assert_eq!(c.resolve(&ColumnRef::new(None, "price")).unwrap(), (0, 2));
        assert!(matches!(
            c.resolve(&ColumnRef::new(None, "model")),
            Err(DbError::AmbiguousColumn(_))
        ));
        assert!(c.resolve(&ColumnRef::new(Some("Nope"), "x")).is_err());
    }

    #[test]
    fn join_predicate_evaluates() {
        let car: Row = vec!["Toyota".into(), "Avalon".into(), Value::Int(25000)];
        let mil: Row = vec!["Avalon".into(), Value::Float(28.0)];
        assert!(eval_where(
            "SELECT * FROM Car, Mileage WHERE Car.model = Mileage.model AND Car.price < 30000",
            &[&car, &mil],
            &[]
        ));
        assert!(!eval_where(
            "SELECT * FROM Car, Mileage WHERE Car.model = Mileage.model AND Car.price < 20000",
            &[&car, &mil],
            &[]
        ));
    }

    #[test]
    fn params_substitute() {
        let car: Row = vec!["Toyota".into(), "Avalon".into(), Value::Int(25000)];
        let mil: Row = vec!["Avalon".into(), Value::Float(28.0)];
        assert!(eval_where(
            "SELECT * FROM Car, Mileage WHERE Car.maker = $1",
            &[&car, &mil],
            &["Toyota".into()]
        ));
        let sel = parse_select("SELECT * FROM Car WHERE maker = $2").unwrap();
        let err = bind(&sel.where_clause.unwrap(), &ctx(), &["x".into()]);
        assert!(matches!(err, Err(DbError::UnboundParameter(2))));
    }

    #[test]
    fn null_collapses_to_false() {
        let car: Row = vec![Value::Null, "Avalon".into(), Value::Int(25000)];
        let mil: Row = vec!["Avalon".into(), Value::Float(28.0)];
        assert!(!eval_where(
            "SELECT * FROM Car, Mileage WHERE Car.maker = 'Toyota'",
            &[&car, &mil],
            &[]
        ));
        assert!(eval_where(
            "SELECT * FROM Car, Mileage WHERE Car.maker IS NULL",
            &[&car, &mil],
            &[]
        ));
    }

    #[test]
    fn like_semantics() {
        assert!(like_match("Avalon", "Ava%"));
        assert!(like_match("Avalon", "%lon"));
        assert!(like_match("Avalon", "A_alon"));
        assert!(like_match("Avalon", "%"));
        assert!(!like_match("Avalon", "Ava"));
        assert!(!like_match("", "_"));
        assert!(like_match("", "%"));
        assert!(like_match("abc", "%b%"));
        assert!(!like_match("abc", "%d%"));
    }

    #[test]
    fn arith_division_by_zero_is_null() {
        assert_eq!(
            arith(&Value::Int(4), ArithOp::Div, &Value::Int(0)),
            Value::Null
        );
        assert_eq!(
            arith(&Value::Float(4.0), ArithOp::Div, &Value::Float(0.0)),
            Value::Null
        );
        assert_eq!(
            arith(&Value::Int(5), ArithOp::Div, &Value::Int(2)),
            Value::Int(2)
        );
        assert_eq!(
            arith(&Value::Int(5), ArithOp::Add, &Value::Float(0.5)),
            Value::Float(5.5)
        );
    }

    #[test]
    fn aggregate_states() {
        let mut c = AggState::new(AggFunc::Count, false);
        c.update(None);
        c.update(None);
        assert_eq!(c.finish(), Value::Int(2));

        let mut s = AggState::new(AggFunc::Sum, false);
        for v in [Value::Int(1), Value::Null, Value::Int(4)] {
            s.update(Some(&v));
        }
        assert_eq!(s.finish(), Value::Int(5), "NULLs skipped");

        let mut a = AggState::new(AggFunc::Avg, false);
        a.update(Some(&Value::Int(1)));
        a.update(Some(&Value::Int(2)));
        assert_eq!(a.finish(), Value::Float(1.5));

        let empty = AggState::new(AggFunc::Sum, false);
        assert_eq!(empty.finish(), Value::Null);

        let mut mx = AggState::new(AggFunc::Max, false);
        mx.update(Some(&Value::Str("a".into())));
        mx.update(Some(&Value::Str("z".into())));
        assert_eq!(mx.finish(), Value::Str("z".into()));
    }

    #[test]
    fn distinct_aggregates_dedupe() {
        let mut c = AggState::new(AggFunc::Count, true);
        for v in [Value::Int(1), Value::Int(1), Value::Int(2)] {
            c.update(Some(&v));
        }
        assert_eq!(c.finish(), Value::Int(2));
    }
}

//! Runtime values stored in tables and produced by queries.
//!
//! The engine is dynamically typed at the cell level: every cell holds a
//! [`Value`]. Comparisons between `Int` and `Float` coerce to `f64`, which is
//! what the invalidator relies on when it substitutes logged literals back
//! into predicates.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single cell value.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum Value {
    /// SQL NULL. Compares equal only to itself for grouping/hashing purposes,
    /// but predicate evaluation treats comparisons with NULL as false
    /// (three-valued logic collapsed to false, which is all the engine needs).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float with total ordering (`f64::total_cmp`).
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Type name used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
        }
    }

    /// True if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used for Int/Float coercion.
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL or the types
    /// are incomparable (e.g. int vs. string); predicate evaluation maps
    /// `None` to "not satisfied".
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Some(x.total_cmp(&y)),
                _ => None,
            },
        }
    }

    /// SQL equality: `None`-aware wrapper over [`Value::sql_cmp`].
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Render as a SQL literal (strings quoted and escaped). This is what the
    /// invalidator uses to build polling queries, so it must round-trip
    /// through the parser.
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                // Ensure a decimal point so the parser reads it back as Float.
                let s = format!("{f}");
                if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                    s
                } else {
                    format!("{s}.0")
                }
            }
            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            // Cross-type numeric equality so hash-join keys behave like
            // predicate evaluation.
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64).total_cmp(b) == Ordering::Equal
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order used by ORDER BY and BTree indexes:
    /// `Null < numbers < strings`, numbers compared as f64.
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 1 && rank(b) == 1 => {
                a.as_f64().unwrap().total_cmp(&b.as_f64().unwrap())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash ints through f64 bits so Int(2) and Float(2.0), which
            // compare equal, also hash equal.
            Value::Int(i) => (*i as f64).to_bits().hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_ne!(Value::Int(2), Value::Float(2.5));
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
    }

    #[test]
    fn null_comparisons_are_none() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn string_vs_number_incomparable_in_sql() {
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_ranks_types() {
        let mut vs = vec![
            Value::Str("a".into()),
            Value::Int(5),
            Value::Null,
            Value::Float(1.5),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Float(1.5),
                Value::Int(5),
                Value::Str("a".into())
            ]
        );
    }

    #[test]
    fn sql_literal_round_trip_quoting() {
        assert_eq!(Value::Str("O'Hara".into()).to_sql_literal(), "'O''Hara'");
        assert_eq!(Value::Int(-3).to_sql_literal(), "-3");
        assert_eq!(Value::Float(2.0).to_sql_literal(), "2.0");
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Str("x".into()).to_string(), "x");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}

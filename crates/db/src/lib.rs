#![warn(missing_docs)]

//! # cacheportal-db
//!
//! In-memory relational engine substrate for the CachePortal reproduction.
//!
//! The paper deployed Oracle 8i; the invalidator only needs three things from
//! the DBMS: (1) execute SQL queries, (2) answer polling queries, and
//! (3) expose an update log. This crate provides all three, with a SQL
//! subset (select-project-join, conjunctive predicates, aggregates,
//! `GROUP BY` / `ORDER BY` / `LIMIT`, DML, DDL), hash indexes, and honest
//! work accounting that the simulator maps to service times.
//!
//! ```
//! use cacheportal_db::engine::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT)").unwrap();
//! db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',25000)").unwrap();
//! let r = db.query("SELECT model FROM Car WHERE price > 20000").unwrap();
//! assert_eq!(r.rows.len(), 1);
//! ```

pub mod engine;
pub mod error;
pub mod eval;
pub mod fault;
pub mod exec;
pub mod log;
pub mod schema;
pub mod sql;
pub mod table;
pub mod txn;
pub mod value;

pub use engine::{Database, ExecOutcome, PreparedStatement};
pub use fault::{FaultCounts, FaultPlan, FaultSpec, PollFault};
pub use txn::Transaction;
pub use error::{DbError, DbResult};
pub use exec::QueryResult;
pub use log::{LogOp, LogRecord, Lsn, UpdateLog};
pub use value::Value;

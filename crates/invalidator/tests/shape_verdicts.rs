//! Shape-aware verdict properties against a brute-force oracle, one suite
//! per query shape (TopK / Aggregate / LikeSeek / InList):
//!
//! * **Safety (zero staleness)**: recompute every registered instance before
//!   and after a random update batch; if the result changed, the sync
//!   report MUST name the instance's page. Shape rules are never allowed to
//!   produce a false NoImpact.
//! * **Precision (on ⊆ off)**: replay the same workload through two
//!   invalidators, shape rules on and off; the on-arm may only eject a
//!   subset of what the off-arm ejects.
//! * **Boundary crossing**: deterministic top-k cases — insert just below,
//!   at, and above the registered boundary.

use cacheportal_db::{Database, QueryResult};
use cacheportal_invalidator::{Invalidator, InvalidatorConfig};
use cacheportal_sniffer::QiUrlMap;
use cacheportal_web::PageKey;
use proptest::prelude::*;

fn build_db(rows: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE R (g INT, v INT, s TEXT, INDEX(g))")
        .unwrap();
    for (g, v) in rows {
        db.execute(&format!("INSERT INTO R VALUES ({g}, {v}, 's{v}')"))
            .unwrap();
    }
    db
}

/// One registered instance per shape under test; `p` picks the parameter.
fn instance_sql(kind: u8, p: i64) -> String {
    match kind % 5 {
        // TopK: bounded ordered page per group (k in 1..=3 from p).
        0 => format!(
            "SELECT g, v FROM R WHERE g = {} ORDER BY v DESC LIMIT {}",
            p % 5,
            1 + p.rem_euclid(3)
        ),
        // Grouped aggregate (deterministic order: GROUP BY ⊆ ORDER BY).
        1 => "SELECT g, COUNT(*), SUM(v) FROM R GROUP BY g ORDER BY g".to_string(),
        // Global aggregate over one group.
        2 => format!("SELECT COUNT(*), SUM(v) FROM R WHERE g = {}", p % 5),
        // LIKE with a literal prefix.
        3 => format!("SELECT g, v, s FROM R WHERE s LIKE 's{}%' ORDER BY g, v, s", p % 10),
        // IN-list over groups.
        _ => format!(
            "SELECT g, v FROM R WHERE g IN ({}, {}, 7) ORDER BY g, v",
            p % 5,
            (p + 2) % 5
        ),
    }
}

#[derive(Debug, Clone)]
enum Update {
    Insert(i64, i64),
    DeleteGroup(i64),
    /// Delete one exact row and reinsert it in the same batch: when the row
    /// existed exactly once this is value-preserving for every aggregate
    /// (net zero per group) — the workload that exercises the skip path.
    Touch(i64, i64),
}

fn update_strategy() -> impl Strategy<Value = Update> {
    prop_oneof![
        (0i64..5, 0i64..20).prop_map(|(g, v)| Update::Insert(g, v)),
        (0i64..5).prop_map(Update::DeleteGroup),
        (0i64..5, 0i64..20).prop_map(|(g, v)| Update::Touch(g, v)),
    ]
}

fn apply(db: &mut Database, u: &Update) {
    match u {
        Update::Insert(g, v) => {
            db.execute(&format!("INSERT INTO R VALUES ({g}, {v}, 's{v}')"))
                .unwrap();
        }
        Update::DeleteGroup(g) => {
            db.execute(&format!("DELETE FROM R WHERE g = {g}")).unwrap();
        }
        Update::Touch(g, v) => {
            db.execute(&format!("DELETE FROM R WHERE g = {g} AND v = {v}"))
                .unwrap();
            db.execute(&format!("INSERT INTO R VALUES ({g}, {v}, 's{v}')"))
                .unwrap();
        }
    }
}

fn new_invalidator(db: &Database, map: &QiUrlMap, shape_rules: bool) -> Invalidator {
    let mut cfg = InvalidatorConfig::default();
    cfg.shape_rules = shape_rules;
    let mut inv = Invalidator::new(cfg);
    inv.start_from(db.high_water());
    inv.run_sync_point(db, map).unwrap();
    inv
}

/// Safety + precision for one shape class over randomized workloads. Both
/// arms consume the same database log through their own cursors.
fn run_shape_oracle(
    kind: u8,
    rows: Vec<(i64, i64)>,
    instances: Vec<i64>,
    batches: Vec<Vec<Update>>,
) -> Result<(), TestCaseError> {
    let mut db = build_db(&rows);
    let map = QiUrlMap::new();
    let mut queries: Vec<(PageKey, String)> = Vec::new();
    for (i, p) in instances.iter().enumerate() {
        let sql = instance_sql(kind, *p);
        let page = PageKey::raw(format!("page{i}"));
        map.insert(sql.clone(), page.clone(), "s".into());
        queries.push((page, sql));
    }
    let mut inv_on = new_invalidator(&db, &map, true);
    let mut inv_off = new_invalidator(&db, &map, false);

    for batch in &batches {
        let before: Vec<QueryResult> = queries
            .iter()
            .map(|(_, sql)| db.query(sql).unwrap())
            .collect();
        for u in batch {
            apply(&mut db, u);
        }
        let on = inv_on.run_sync_point(&db, &map).unwrap();
        let off = inv_off.run_sync_point(&db, &map).unwrap();
        let after: Vec<QueryResult> = queries
            .iter()
            .map(|(_, sql)| db.query(sql).unwrap())
            .collect();

        for (i, (page, sql)) in queries.iter().enumerate() {
            if before[i] != after[i] {
                prop_assert!(
                    on.pages.contains(page),
                    "SAFETY violated (shape rules on): result of {sql} changed \
                     but {page} not named; batch {batch:?}"
                );
            }
        }
        for page in &on.pages {
            prop_assert!(
                off.pages.contains(page),
                "PRECISION violated: shape-on ejected {page} but shape-off \
                 kept it; batch {batch:?}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every shape class: verdicts are never falsely NoImpact, and the
    /// shape-aware arm never ejects more than the conventional arm.
    #[test]
    fn shape_verdicts_are_safe_and_subset_of_conventional(
        kind in 0u8..5,
        rows in prop::collection::vec((0i64..5, 0i64..20), 0..25),
        instances in prop::collection::vec(0i64..20, 1..6),
        batches in prop::collection::vec(
            prop::collection::vec(update_strategy(), 1..5),
            1..4,
        ),
    ) {
        run_shape_oracle(kind, rows, instances, batches)?;
    }
}

/// Deterministic top-k boundary crossing: insert just below, at, and above
/// the boundary, checking the verdict against the recompute oracle each
/// time.
#[test]
fn topk_boundary_crossing_below_at_above() {
    let mut db = build_db(&[(1, 40), (1, 30), (1, 5)]);
    let map = QiUrlMap::new();
    let sql = "SELECT g, v FROM R WHERE g = 1 ORDER BY v DESC LIMIT 2";
    let page = PageKey::raw("topk");
    map.insert(sql.into(), page.clone(), "s".into());
    let mut inv = new_invalidator(&db, &map, true);

    // Just below the boundary (30): top-2 unchanged, page stays cached.
    let before = db.query(sql).unwrap();
    db.execute("INSERT INTO R VALUES (1, 29, 's29')").unwrap();
    let r = inv.run_sync_point(&db, &map).unwrap();
    assert_eq!(before, db.query(sql).unwrap(), "oracle: result unchanged");
    assert!(r.pages.is_empty(), "below-boundary insert must not eject");
    assert_eq!(r.shape_topk_skipped, 1);

    // At the boundary (ties conservative): ejected even though the engine
    // keeps the earlier row — a tie cannot be proven safe from the key.
    db.execute("INSERT INTO R VALUES (1, 30, 's30')").unwrap();
    let r = inv.run_sync_point(&db, &map).unwrap();
    assert!(r.pages.contains(&page), "tie with the boundary must eject");

    // Above the boundary: enters the top-2, result changes, must eject.
    let before = db.query(sql).unwrap();
    db.execute("INSERT INTO R VALUES (1, 50, 's50')").unwrap();
    let r = inv.run_sync_point(&db, &map).unwrap();
    assert_ne!(before, db.query(sql).unwrap(), "oracle: result changed");
    assert!(r.pages.contains(&page), "above-boundary insert must eject");
}

/// Fixed-seed precision regression (satellite): replay one workload per
/// shape with shape rules on vs off; the on-arm ejects a subset, with a
/// strict improvement on TopK and Aggregate (the shapes with decision
/// rules) and byte-identical ejects on LIKE/IN (index tiers only skip
/// work, never change verdicts).
#[test]
fn precision_regression_per_shape() {
    // (kind, instance params, workload): each workload contains at least
    // one update the shape rule can prove harmless.
    let shapes: [(u8, Vec<i64>, Vec<Update>, bool); 4] = [
        // TopK: k=2 over group 1; the (1,2) insert is far below the
        // boundary and the touch of (1,19) is invisible to the top-2.
        (0, vec![1], vec![Update::Insert(1, 2), Update::Insert(0, 3)], true),
        // Aggregates (grouped + global): a touch nets to zero.
        (1, vec![0], vec![Update::Touch(2, 10)], true),
        // LIKE: no shape verdict — arms must agree exactly.
        (3, vec![2, 12], vec![Update::Insert(2, 12), Update::DeleteGroup(4)], false),
        // IN-list: same.
        (4, vec![1, 3], vec![Update::Insert(1, 9), Update::DeleteGroup(3)], false),
    ];
    for (kind, params, workload, expect_strict) in shapes {
        let mut db = build_db(&[(0, 7), (1, 40), (1, 30), (2, 10), (3, 9), (4, 1)]);
        let map = QiUrlMap::new();
        for (i, p) in params.iter().enumerate() {
            map.insert(
                instance_sql(kind, *p),
                PageKey::raw(format!("k{kind}p{i}")),
                "s".into(),
            );
        }
        let mut inv_on = new_invalidator(&db, &map, true);
        let mut inv_off = new_invalidator(&db, &map, false);
        for u in &workload {
            apply(&mut db, u);
        }
        let on = inv_on.run_sync_point(&db, &map).unwrap();
        let off = inv_off.run_sync_point(&db, &map).unwrap();
        assert!(
            on.pages.is_subset(&off.pages),
            "shape {kind}: on-arm must eject a subset (on {:?}, off {:?})",
            on.pages,
            off.pages
        );
        if expect_strict {
            assert!(
                on.pages.len() < off.pages.len(),
                "shape {kind}: expected a strict precision improvement \
                 (on {:?}, off {:?})",
                on.pages,
                off.pages
            );
        } else {
            assert_eq!(
                on.pages, off.pages,
                "shape {kind}: index-tier shapes must not change verdicts"
            );
        }
    }
}

/// A value-preserving aggregate batch is skipped, but the skipped pages are
/// reported in `netted_pages` so the orchestrator can guard-eject any of
/// them admitted mid-window (the endpoint-states proof does not cover pages
/// generated between the mutations that cancel out). With shape rules off
/// there is no netting shortcut and nothing to report.
#[test]
fn netted_aggregate_batches_are_reported_for_the_guard() {
    let mut db = build_db(&[(0, 5)]);
    let map = QiUrlMap::new();
    let sql = "SELECT COUNT(*), SUM(v) FROM R WHERE g = 0";
    let page = PageKey::raw("agg");
    map.insert(sql.into(), page.clone(), "s".into());
    let mut inv_on = new_invalidator(&db, &map, true);
    let mut inv_off = new_invalidator(&db, &map, false);

    // Insert + delete of the same row inside one window: net zero per
    // group, so the aggregate rule keeps the page.
    db.execute("INSERT INTO R VALUES (0, 7, 's7')").unwrap();
    db.execute("DELETE FROM R WHERE g = 0 AND v = 7").unwrap();

    let on = inv_on.run_sync_point(&db, &map).unwrap();
    assert!(on.pages.is_empty(), "netted batch must not eject");
    assert_eq!(on.shape_agg_skipped, 1);
    assert!(
        on.netted_pages.contains(&page),
        "the kept page must be reported for the mid-window guard: {:?}",
        on.netted_pages
    );

    let off = inv_off.run_sync_point(&db, &map).unwrap();
    assert!(off.netted_pages.is_empty(), "no shortcut, nothing to guard");

    // A batch the rule must eject reports the page as ejected, not netted.
    db.execute("INSERT INTO R VALUES (0, 9, 's9')").unwrap();
    let on = inv_on.run_sync_point(&db, &map).unwrap();
    assert!(on.pages.contains(&page));
    assert!(on.netted_pages.is_empty(), "ejected pages are filtered out");
}

//! Invalidator-level property tests against a brute-force oracle: for every
//! registered query instance, recompute the result before and after a
//! random update batch.
//!
//! * **Safety**: if the result changed, the instance's pages MUST be named
//!   by the sync report (any policy).
//! * **Precision**: with the Exact policy and an insert-only batch, a named
//!   page's result MUST actually have changed (no over-invalidation).

use cacheportal_db::{Database, QueryResult};
use cacheportal_invalidator::{InvalidationPolicy, Invalidator, InvalidatorConfig};
use cacheportal_sniffer::QiUrlMap;
use cacheportal_web::PageKey;
use proptest::prelude::*;

/// Build the database; returns it with seeding already consumed.
fn build_db(r_rows: &[(i64, i64)], s_rows: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE R (g INT, v INT, INDEX(g))").unwrap();
    db.execute("CREATE TABLE S (g INT, w INT, INDEX(g))").unwrap();
    for (g, v) in r_rows {
        db.insert_row("R", vec![(*g).into(), (*v).into()]).unwrap();
    }
    for (g, w) in s_rows {
        db.insert_row("S", vec![(*g).into(), (*w).into()]).unwrap();
    }
    db
}

/// The instance SQL shapes under test; `param` fills the `{}`.
fn instance_sql(kind: u8, param: i64) -> String {
    match kind % 4 {
        0 => format!("SELECT g, v FROM R WHERE g = {param} ORDER BY v"),
        1 => format!("SELECT g, w FROM S WHERE w < {param} ORDER BY g, w"),
        2 => format!(
            "SELECT R.v, S.w FROM R, S WHERE R.g = S.g AND R.v > {param} ORDER BY R.v, S.w"
        ),
        _ => format!("SELECT COUNT(*) FROM R WHERE v >= {param}"),
    }
}

#[derive(Debug, Clone)]
enum Update {
    InsertR(i64, i64),
    InsertS(i64, i64),
    DeleteRg(i64),
    DeleteSg(i64),
}

fn update_strategy() -> impl Strategy<Value = Update> {
    prop_oneof![
        (0i64..5, 0i64..20).prop_map(|(g, v)| Update::InsertR(g, v)),
        (0i64..5, 0i64..20).prop_map(|(g, w)| Update::InsertS(g, w)),
        (0i64..5).prop_map(Update::DeleteRg),
        (0i64..5).prop_map(Update::DeleteSg),
    ]
}

fn insert_only_strategy() -> impl Strategy<Value = Update> {
    prop_oneof![
        (0i64..5, 0i64..20).prop_map(|(g, v)| Update::InsertR(g, v)),
        (0i64..5, 0i64..20).prop_map(|(g, w)| Update::InsertS(g, w)),
    ]
}

fn apply(db: &mut Database, u: &Update) {
    match u {
        Update::InsertR(g, v) => {
            db.execute(&format!("INSERT INTO R VALUES ({g}, {v})")).unwrap();
        }
        Update::InsertS(g, w) => {
            db.execute(&format!("INSERT INTO S VALUES ({g}, {w})")).unwrap();
        }
        Update::DeleteRg(g) => {
            db.execute(&format!("DELETE FROM R WHERE g = {g}")).unwrap();
        }
        Update::DeleteSg(g) => {
            db.execute(&format!("DELETE FROM S WHERE g = {g}")).unwrap();
        }
    }
}

fn run_oracle(
    r_rows: Vec<(i64, i64)>,
    s_rows: Vec<(i64, i64)>,
    instances: Vec<(u8, i64)>,
    updates: Vec<Update>,
    policy: InvalidationPolicy,
    check_precision: bool,
) -> Result<(), TestCaseError> {
    let mut db = build_db(&r_rows, &s_rows);
    let map = QiUrlMap::new();
    let mut queries: Vec<(PageKey, String)> = Vec::new();
    for (i, (kind, param)) in instances.iter().enumerate() {
        let sql = instance_sql(*kind, *param);
        let page = PageKey::raw(format!("page{i}"));
        map.insert(sql.clone(), page.clone(), "s".into());
        queries.push((page, sql));
    }
    let mut cfg = InvalidatorConfig::default();
    cfg.policy.default_policy = policy;
    let mut inv = Invalidator::new(cfg);
    inv.start_from(db.high_water());
    // Register everything (no updates yet).
    inv.run_sync_point(&db, &map).unwrap();

    // Snapshot, mutate, snapshot.
    let before: Vec<QueryResult> = queries
        .iter()
        .map(|(_, sql)| db.query(sql).unwrap())
        .collect();
    for u in &updates {
        apply(&mut db, u);
    }
    let report = inv.run_sync_point(&db, &map).unwrap();
    let after: Vec<QueryResult> = queries
        .iter()
        .map(|(_, sql)| db.query(sql).unwrap())
        .collect();

    for (i, (page, sql)) in queries.iter().enumerate() {
        let changed = before[i] != after[i];
        if changed {
            prop_assert!(
                report.pages.contains(page),
                "SAFETY violated under {policy:?}: result of {sql} changed but {page} not named"
            );
        } else if check_precision {
            prop_assert!(
                !report.pages.contains(page),
                "PRECISION violated: {sql} unchanged but {page} named (insert-only batch)"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Safety for every policy under arbitrary insert/delete batches.
    #[test]
    fn changed_results_are_always_named(
        r_rows in prop::collection::vec((0i64..5, 0i64..20), 0..25),
        s_rows in prop::collection::vec((0i64..5, 0i64..20), 0..25),
        instances in prop::collection::vec((0u8..4, 0i64..20), 1..8),
        updates in prop::collection::vec(update_strategy(), 1..12),
        policy_pick in 0u8..3,
    ) {
        let policy = [
            InvalidationPolicy::Exact,
            InvalidationPolicy::Conservative,
            InvalidationPolicy::TableLevel,
        ][policy_pick as usize];
        run_oracle(r_rows, s_rows, instances, updates, policy, false)?;
    }

    /// Precision of Exact for insert-only batches: named ⇒ changed.
    #[test]
    fn exact_names_only_changed_results_for_inserts(
        r_rows in prop::collection::vec((0i64..5, 0i64..20), 0..25),
        s_rows in prop::collection::vec((0i64..5, 0i64..20), 0..25),
        instances in prop::collection::vec((0u8..4, 0i64..20), 1..8),
        updates in prop::collection::vec(insert_only_strategy(), 1..12),
    ) {
        run_oracle(
            r_rows,
            s_rows,
            instances,
            updates,
            InvalidationPolicy::Exact,
            true,
        )?;
    }
}

//! Eviction ↔ predicate-index coherence (ISSUE 8 satellite).
//!
//! Interleaves `register_instance` / `remove_pages` / probes and asserts
//! the incrementally-maintained predicate index stays coherent with the
//! instance registry: a probe never yields a dropped instance, never
//! misses a live one, and always matches a **naive rebuild** — a fresh
//! registry re-registered from the live instance set, whose index is
//! therefore trivially correct.

use cacheportal_db::{Database, LogOp, LogRecord, Value};
use cacheportal_invalidator::delta::DeltaSet;
use cacheportal_invalidator::predicate_index::Probe;
use cacheportal_invalidator::query_type::{QueryTypeId, Registry};
use cacheportal_web::PageKey;
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap, HashSet};

/// The three shapes under test: equality tier, range tier, and a join
/// whose `U` occurrence is residual (so deltas on `U` must force a scan).
const TYPE_SQL: [fn(i64) -> String; 3] = [
    |p| format!("SELECT v FROM T WHERE T.k = {p}"),
    |p| format!("SELECT k FROM T WHERE T.v < {p}"),
    |p| format!("SELECT T.v FROM T, U WHERE T.k = U.k AND T.v < {p}"),
];

#[derive(Debug, Clone)]
enum Op {
    Register { ty: usize, param: i64, page: u8 },
    Remove { pages: Vec<u8> },
    Probe { tuples: Vec<(i64, i64)>, on_u: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0usize..3, -8i64..8, any::<u8>())
            .prop_map(|(ty, param, page)| Op::Register { ty, param, page }),
        2 => proptest::collection::vec(any::<u8>(), 1..6)
            .prop_map(|pages| Op::Remove { pages }),
        3 => (proptest::collection::vec((-8i64..8, -8i64..8), 1..4), any::<bool>())
            .prop_map(|(tuples, on_u)| Op::Probe { tuples, on_u }),
    ]
}

fn db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE T (k INT, v INT)").unwrap();
    db.execute("CREATE TABLE U (k INT, w INT)").unwrap();
    db
}

fn fresh_registry() -> (Registry, Vec<QueryTypeId>) {
    let mut reg = Registry::new();
    let ids = vec![
        reg.register_type_sql("SELECT v FROM T WHERE T.k = $1").unwrap(),
        reg.register_type_sql("SELECT k FROM T WHERE T.v < $1").unwrap(),
        reg.register_type_sql("SELECT T.v FROM T, U WHERE T.k = U.k AND T.v < $1")
            .unwrap(),
    ];
    (reg, ids)
}

fn deltas(tuples: &[(i64, i64)], on_u: bool) -> DeltaSet {
    let table = if on_u { "U" } else { "T" };
    let records: Vec<LogRecord> = tuples
        .iter()
        .enumerate()
        .map(|(i, (a, b))| LogRecord {
            lsn: i as u64 + 1,
            table: table.to_string(),
            op: LogOp::Insert(vec![Value::Int(*a), Value::Int(*b)]),
        })
        .collect();
    DeltaSet::from_records(&records)
}

/// Normalize a probe for comparison: `Scan` or the candidate param set.
fn normalize(p: Probe) -> Option<BTreeSet<Vec<Value>>> {
    match p {
        Probe::Scan => None,
        Probe::Candidates(c) => Some(c.into_iter().collect()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_index_matches_naive_rebuild(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        let db = db();
        let (mut reg, ids) = fresh_registry();
        // Shadow model of the live instances: (type, param) → pages.
        let mut model: HashMap<(usize, i64), HashSet<u8>> = HashMap::new();

        for op in &ops {
            match op {
                Op::Register { ty, param, page } => {
                    reg.register_instance(
                        &TYPE_SQL[*ty](*param),
                        PageKey::raw(&format!("p{page}")),
                    )
                    .unwrap();
                    model.entry((*ty, *param)).or_default().insert(*page);
                }
                Op::Remove { pages } => {
                    let gone: HashSet<PageKey> =
                        pages.iter().map(|p| PageKey::raw(&format!("p{p}"))).collect();
                    reg.remove_pages(&gone);
                    model.retain(|_, ps| {
                        ps.retain(|p| !pages.contains(p));
                        !ps.is_empty()
                    });
                }
                Op::Probe { tuples, on_u } => {
                    // Naive rebuild: a fresh registry fed only the live
                    // instances. Its index never saw a removal, so it is
                    // correct by construction.
                    let (mut rebuilt, rebuilt_ids) = fresh_registry();
                    for ((ty, param), pages) in &model {
                        for page in pages {
                            rebuilt
                                .register_instance(
                                    &TYPE_SQL[*ty](*param),
                                    PageKey::raw(&format!("p{page}")),
                                )
                                .unwrap();
                        }
                    }
                    let d = deltas(tuples, *on_u);
                    for ty in 0..3 {
                        let live = normalize(reg.probe_index(ids[ty], &d, &db));
                        let naive =
                            normalize(rebuilt.probe_index(rebuilt_ids[ty], &d, &db));
                        prop_assert_eq!(
                            &live, &naive,
                            "type {} diverged from naive rebuild (deltas on {})",
                            ty, if *on_u { "U" } else { "T" }
                        );
                        // Candidates must all be live instances of the type
                        // (a dropped instance must never resurface).
                        if let Some(cands) = &live {
                            for params in cands {
                                let p = match params[0] {
                                    Value::Int(i) => i,
                                    ref v => panic!("unexpected param {v:?}"),
                                };
                                prop_assert!(
                                    model.contains_key(&(ty, p)),
                                    "probe yielded dropped instance {:?} of type {}",
                                    params, ty
                                );
                            }
                        }
                    }
                }
            }
            // The cached live-instance counter stays exact (the O(1)
            // total_instances satellite; debug builds also cross-check
            // internally via debug_assert).
            prop_assert_eq!(reg.total_instances(), model.len());
        }
    }
}

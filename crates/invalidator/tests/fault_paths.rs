//! Fault-path equivalence for the parallel invalidator.
//!
//! A failing poll must degrade *conservatively* — the instance is assumed
//! affected ([`VerdictKind::PollFault`]) — and the degradation must be
//! deterministic across worker counts: fault decisions key on the poll's
//! structural key, not on shard scheduling, so `workers = 4` with a failing
//! poll on one shard produces exactly the verdicts of `workers = 1`. And a
//! fault may only *add* invalidations: no page ejected by a fault-free run
//! may survive under faults (never downgrade Invalidate → NoInvalidate).

use cacheportal_db::{Database, FaultPlan, FaultSpec};
use cacheportal_invalidator::{
    InvalidationReport, Invalidator, InvalidatorConfig, PolicyConfig, VerdictKind,
};
use cacheportal_sniffer::QiUrlMap;
use cacheportal_web::PageKey;
use std::collections::BTreeSet;

/// Join-heavy instance shapes: joins force residual polling queries, which
/// is the only site poll faults can hit.
fn instance_sql(kind: u8, param: i64) -> String {
    match kind % 3 {
        0 => format!("SELECT R.v, S.w FROM R, S WHERE R.g = S.g AND R.v < {param}"),
        1 => format!("SELECT S.w, T.u FROM S, T WHERE S.g = T.g AND S.w < {param}"),
        _ => format!("SELECT R.v, T.u FROM R, T WHERE R.g = T.g AND T.u < {param}"),
    }
}

fn build_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE R (g INT, v INT)").unwrap();
    db.execute("CREATE TABLE S (g INT, w INT)").unwrap();
    db.execute("CREATE TABLE T (g INT, u INT)").unwrap();
    for i in 0..12i64 {
        let (g, v) = (i % 5, i * 3 % 20);
        db.execute(&format!("INSERT INTO R VALUES ({g}, {v})")).unwrap();
        db.execute(&format!("INSERT INTO S VALUES ({g}, {v})")).unwrap();
        db.execute(&format!("INSERT INTO T VALUES ({g}, {v})")).unwrap();
    }
    db
}

/// Run the fixed workload at `workers` with the given fault plan and return
/// the update batch's report.
fn run(workers: usize, fault: FaultPlan) -> InvalidationReport {
    let mut db = build_db();
    let map = QiUrlMap::new();
    for i in 0..8u8 {
        map.insert(
            instance_sql(i % 3, (i as i64 * 5) % 20),
            PageKey::raw(format!("page{i}")),
            "s".into(),
        );
    }
    let mut inv = Invalidator::new(InvalidatorConfig {
        policy: PolicyConfig::default(),
        workers,
        fault,
        ..InvalidatorConfig::default()
    });
    inv.start_from(db.high_water());
    inv.run_sync_point(&db, &map).unwrap();
    for sql in [
        "INSERT INTO R VALUES (1, 4)",
        "INSERT INTO S VALUES (2, 9)",
        "DELETE FROM T WHERE g = 3",
        "INSERT INTO T VALUES (4, 1)",
        "DELETE FROM S WHERE g = 0",
    ] {
        db.execute(sql).unwrap();
    }
    inv.run_sync_point(&db, &map).unwrap()
}

/// Everything the fault-equivalence guarantee covers.
fn digest(report: &InvalidationReport) -> (Vec<String>, Vec<String>, String) {
    let verdicts: Vec<String> = report
        .verdicts
        .iter()
        .map(|v| {
            let mut pages: Vec<&str> = v.pages.iter().map(|p| p.as_str()).collect();
            pages.sort_unstable();
            format!("{}|{:?}|{}|{pages:?}", v.type_sql, v.params, v.cause.kind.as_str())
        })
        .collect();
    let mut pages: Vec<String> = report.pages.iter().map(|p| p.as_str().to_string()).collect();
    pages.sort_unstable();
    let counters = format!(
        "issued={} from_cache={} faulted={} poll_faults={} invalidated={} checked={}",
        report.polls.issued,
        report.polls.from_cache,
        report.polls.faulted,
        report.poll_faults,
        report.invalidated_instances,
        report.checked_instances,
    );
    (verdicts, pages, counters)
}

fn half_error_plan() -> FaultPlan {
    FaultPlan::new(FaultSpec {
        seed: 11,
        poll_error: 0.5,
        ..FaultSpec::default()
    })
}

#[test]
fn faulted_run_actually_faults_and_reports_poll_fault_verdicts() {
    let report = run(1, half_error_plan());
    assert!(report.polls.faulted > 0, "p=0.5 over this workload must fault");
    assert!(report.poll_faults > 0);
    assert!(
        report
            .verdicts
            .iter()
            .any(|v| v.cause.kind == VerdictKind::PollFault),
        "a faulted poll must surface as a poll-fault verdict"
    );
    // Every poll-fault verdict names the failed poll in its detail.
    for v in &report.verdicts {
        if v.cause.kind == VerdictKind::PollFault {
            assert!(v.cause.detail.contains("conservative fallback"));
        }
    }
}

#[test]
fn workers4_with_failing_polls_matches_workers1() {
    let seq = run(1, half_error_plan());
    let par = run(4, half_error_plan());
    assert_eq!(
        digest(&seq),
        digest(&par),
        "fault decisions key on poll content, not shard scheduling"
    );
    for workers in [2, 3, 8] {
        assert_eq!(digest(&seq), digest(&run(workers, half_error_plan())));
    }
}

#[test]
fn faults_never_downgrade_invalidate_to_no_invalidate() {
    let clean = run(4, FaultPlan::none());
    for (seed, p_err, p_to) in [(11u64, 0.5, 0.0), (7, 0.0, 0.5), (23, 1.0, 0.0), (3, 0.3, 0.3)] {
        let faulted = run(
            4,
            FaultPlan::new(FaultSpec {
                seed,
                poll_error: p_err,
                poll_timeout: p_to,
                ..FaultSpec::default()
            }),
        );
        let clean_pages: BTreeSet<String> =
            clean.pages.iter().map(|p| p.as_str().to_string()).collect();
        let faulted_pages: BTreeSet<String> =
            faulted.pages.iter().map(|p| p.as_str().to_string()).collect();
        assert!(
            faulted_pages.is_superset(&clean_pages),
            "seed={seed}: faults dropped ejects {:?}",
            clean_pages.difference(&faulted_pages).collect::<Vec<_>>()
        );
    }
}

#[test]
fn every_poll_failing_still_completes_the_sync_point() {
    let report = run(
        4,
        FaultPlan::new(FaultSpec {
            seed: 1,
            poll_error: 1.0,
            ..FaultSpec::default()
        }),
    );
    assert_eq!(report.polls.issued, 0, "no poll can succeed at p=1.0");
    assert!(report.poll_faults > 0);
    // The run degraded to per-instance conservative ejects instead of
    // erroring out of run_sync_point.
    assert!(report.invalidated_instances > 0);
}

#[test]
fn timeout_faults_behave_like_errors_for_verdicts() {
    let errs = run(
        1,
        FaultPlan::new(FaultSpec {
            seed: 5,
            poll_error: 1.0,
            ..FaultSpec::default()
        }),
    );
    let timeouts = run(
        1,
        FaultPlan::new(FaultSpec {
            seed: 5,
            poll_timeout: 1.0,
            ..FaultSpec::default()
        }),
    );
    assert_eq!(digest(&errs), digest(&timeouts));
}

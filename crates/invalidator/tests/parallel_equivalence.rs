//! Property tests for the sharded analysis pipeline: a sync point run with
//! `workers = 4` must produce *identical* invalidation outcomes to the
//! sequential path — same verdicts in the same order, same ejected pages,
//! and same poll statistics (the dedup cache guarantees exactly-once poll
//! execution across shards, so even Issued/FromCache attribution agrees).

use cacheportal_db::Database;
use cacheportal_invalidator::{
    InvalidationReport, Invalidator, InvalidatorConfig, PolicyConfig,
};
use cacheportal_sniffer::QiUrlMap;
use cacheportal_web::PageKey;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Update {
    InsertR(i64, i64),
    InsertS(i64, i64),
    InsertT(i64, i64),
    DeleteRg(i64),
    DeleteSg(i64),
}

fn update_strategy() -> impl Strategy<Value = Update> {
    prop_oneof![
        (0i64..5, 0i64..20).prop_map(|(g, v)| Update::InsertR(g, v)),
        (0i64..5, 0i64..20).prop_map(|(g, w)| Update::InsertS(g, w)),
        (0i64..5, 0i64..20).prop_map(|(g, u)| Update::InsertT(g, u)),
        (0i64..5).prop_map(Update::DeleteRg),
        (0i64..5).prop_map(Update::DeleteSg),
    ]
}

/// The instance SQL shapes; joins force residual polling queries, which is
/// where the cross-shard dedup cache actually gets exercised.
fn instance_sql(kind: u8, param: i64) -> String {
    match kind % 4 {
        0 => format!("SELECT R.v, S.w FROM R, S WHERE R.g = S.g AND R.v < {param}"),
        1 => format!("SELECT S.w, T.u FROM S, T WHERE S.g = T.g AND S.w < {param}"),
        2 => format!("SELECT R.v, T.u FROM R, T WHERE R.g = T.g AND T.u < {param}"),
        _ => format!("SELECT g, v FROM R WHERE v >= {param} ORDER BY g, v"),
    }
}

fn build_db(rows: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE R (g INT, v INT)").unwrap();
    db.execute("CREATE TABLE S (g INT, w INT)").unwrap();
    db.execute("CREATE TABLE T (g INT, u INT)").unwrap();
    for (g, v) in rows {
        db.execute(&format!("INSERT INTO R VALUES ({g}, {v})")).unwrap();
        db.execute(&format!("INSERT INTO S VALUES ({g}, {v})")).unwrap();
        db.execute(&format!("INSERT INTO T VALUES ({g}, {v})")).unwrap();
    }
    db
}

fn apply(db: &mut Database, u: &Update) {
    match u {
        Update::InsertR(g, v) => {
            db.execute(&format!("INSERT INTO R VALUES ({g}, {v})")).unwrap();
        }
        Update::InsertS(g, w) => {
            db.execute(&format!("INSERT INTO S VALUES ({g}, {w})")).unwrap();
        }
        Update::InsertT(g, u) => {
            db.execute(&format!("INSERT INTO T VALUES ({g}, {u})")).unwrap();
        }
        Update::DeleteRg(g) => {
            db.execute(&format!("DELETE FROM R WHERE g = {g}")).unwrap();
        }
        Update::DeleteSg(g) => {
            db.execute(&format!("DELETE FROM S WHERE g = {g}")).unwrap();
        }
    }
}

/// Replay the identical workload at the given worker count and return the
/// sync report for the update batch.
fn run_with_workers(
    rows: &[(i64, i64)],
    instances: &[(u8, i64)],
    updates: &[Update],
    workers: usize,
) -> InvalidationReport {
    let mut db = build_db(rows);
    let map = QiUrlMap::new();
    for (i, (kind, param)) in instances.iter().enumerate() {
        map.insert(
            instance_sql(*kind, *param),
            PageKey::raw(format!("page{i}")),
            "s".into(),
        );
    }
    let mut inv = Invalidator::new(InvalidatorConfig {
        policy: PolicyConfig::default(),
        workers,
        ..InvalidatorConfig::default()
    });
    inv.start_from(db.high_water());
    inv.run_sync_point(&db, &map).unwrap();
    for u in updates {
        apply(&mut db, u);
    }
    inv.run_sync_point(&db, &map).unwrap()
}

/// Everything the equivalence guarantee covers, in comparable form.
fn digest(report: &InvalidationReport) -> (Vec<String>, Vec<String>, String) {
    let verdicts: Vec<String> = report
        .verdicts
        .iter()
        .map(|v| {
            let mut pages: Vec<&str> = v.pages.iter().map(|p| p.as_str()).collect();
            pages.sort_unstable();
            format!(
                "{}|{:?}|{}|{pages:?}",
                v.type_sql,
                v.params,
                v.cause.kind.as_str()
            )
        })
        .collect();
    let mut pages: Vec<String> = report
        .pages
        .iter()
        .map(|p| p.as_str().to_string())
        .collect();
    pages.sort_unstable();
    let counters = format!(
        "issued={} from_cache={} from_index={} guard={} invalidated={} checked={} tuples={} consumed={}",
        report.polls.issued,
        report.polls.from_cache,
        report.polls.from_index,
        report.polls.delete_guard_hits,
        report.invalidated_instances,
        report.checked_instances,
        report.tuples_analyzed,
        report.records_consumed,
    );
    (verdicts, pages, counters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// workers=4 ≡ workers=1: same verdicts (same order), same ejected
    /// pages, same poll statistics, for arbitrary mixed update batches.
    #[test]
    fn sharded_analysis_matches_sequential(
        rows in prop::collection::vec((0i64..5, 0i64..20), 0..20),
        instances in prop::collection::vec((0u8..4, 0i64..20), 1..10),
        updates in prop::collection::vec(update_strategy(), 1..15),
    ) {
        let seq = run_with_workers(&rows, &instances, &updates, 1);
        let par = run_with_workers(&rows, &instances, &updates, 4);
        prop_assert_eq!(digest(&seq), digest(&par));
        // The parallel run reports its actual shard fan-out.
        prop_assert_eq!(seq.workers, 1);
        prop_assert!(par.workers >= 1);
    }
}

/// Deterministic regression: a fixed workload where every verdict kind the
/// dedup cache can produce (Issued, FromCache) appears, checked at every
/// supported worker count — including counts above the candidate-type
/// count (clamped) and a poll RTT that forces real cross-shard overlap.
#[test]
fn all_worker_counts_agree_on_fixed_workload() {
    let rows: Vec<(i64, i64)> = (0..12).map(|i| (i % 5, i * 3 % 20)).collect();
    let instances: Vec<(u8, i64)> = (0..8).map(|i| (i as u8 % 4, (i * 5) as i64 % 20)).collect();
    let updates: Vec<Update> = vec![
        Update::InsertR(1, 4),
        Update::InsertS(1, 4),
        Update::InsertT(2, 7),
        Update::DeleteRg(3),
        Update::InsertR(1, 4), // duplicate tuple: exercises the dedup cache
        Update::DeleteSg(0),
        Update::InsertT(4, 1),
    ];
    let baseline = digest(&run_with_workers(&rows, &instances, &updates, 1));
    for workers in [2, 3, 4, 8, 16] {
        let report = run_with_workers(&rows, &instances, &updates, workers);
        assert_eq!(
            baseline,
            digest(&report),
            "workers={workers} diverged from the sequential path"
        );
    }
}

//! Predicate index over registered query instances — sublinear
//! invalidation (ROADMAP open item #1).
//!
//! The analysis stage decides affectedness per (delta tuple × bound query
//! instance). Without help that is a scan over **every** registered
//! instance of each candidate type, so sync latency grows O(cached QIs)
//! even when an update touches a handful of pages. This module maps an
//! updated tuple *directly* to the instances it can possibly affect:
//!
//! * **Equality tier** — a `col = $k` conjunct hashes instances by their
//!   bound parameter (`HashMap<Value, postings>`); a delta tuple probes
//!   with its column value.
//! * **Range tier** — `col < $k` / `<=` / `>` / `>=` and the
//!   param-bounded side of `col BETWEEN $i AND $j` keep instances in a
//!   `BTreeMap<Value, postings>` ordered by the bound parameter; a delta
//!   tuple probes the half-open interval of parameters its value can
//!   satisfy.
//! * **IN-set tier** — a `col IN ($i, $j, …)` conjunct (all list elements
//!   parameters) hashes each instance under *every* list value; a delta
//!   tuple probes with its column value, exactly like the equality tier.
//! * **LIKE-prefix tier** — a `col LIKE $k` conjunct whose bound pattern
//!   has a non-empty literal prefix (the characters before the first
//!   `%`/`_`) hashes the instance under that prefix; a delta tuple probes
//!   every prefix of its string value. A pattern can only match a string
//!   that starts with the pattern's literal prefix, so the probe is a
//!   sound superset; patterns with an empty literal prefix (or non-string
//!   bound patterns) fall into the always-scanned bucket.
//! * **Residual tier** — everything the classifier cannot prove
//!   (column-to-column joins on that occurrence, disjunctions,
//!   arithmetic, `NOT` forms, unqualified columns in multi-table
//!   queries) falls back to today's full scan. The index may only *skip*
//!   work, never change verdicts.
//!
//! # Soundness
//!
//! An instance may be skipped for a sync point only when its indexed
//! conjunct is **false under SQL semantics** for every delta tuple of
//! every touched occurrence. A false conjunct is fully bound after
//! occurrence substitution, so `tuple_residual` would return `NoImpact`
//! for that tuple — the scan would not have polled, marked, or ejected
//! anything for it. Probes are deliberately *supersets* wherever `Value`'s
//! total order and SQL comparison could disagree:
//!
//! * `Value`'s `Ord`/`Eq`/`Hash` agree with [`sql_cmp`] on every pair SQL
//!   can satisfy (numbers compare as `f64` by `total_cmp` in both, strings
//!   compare as strings in both). Pairs SQL can *never* satisfy (NULLs,
//!   string-vs-number) are allowed to over-match — over-inclusion is
//!   sound, the scan re-checks every candidate.
//! * A NULL tuple value satisfies no comparison, so it probes nothing.
//! * Types under the `TableLevel` policy never consult the index (the
//!   policy invalidates every instance regardless of predicates), and a
//!   type whose FROM tables no longer resolve falls back to the scan so
//!   its `BindFailure` fail-safe verdicts are emitted identically.
//!
//! [`sql_cmp`]: cacheportal_db::Value::sql_cmp

use cacheportal_db::sql::ast::{CmpOp, ColumnRef, Expr, Select, TableRef};
use cacheportal_db::{Database, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Bound::{Excluded, Unbounded};

use crate::delta::DeltaSet;

/// Comparison shape of one indexable conjunct, normalized so the column
/// is on the left (`$k op col` is stored flipped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IndexOp {
    /// `col = $k`
    Eq,
    /// `col < $k`
    Lt,
    /// `col <= $k`
    Le,
    /// `col > $k`
    Gt,
    /// `col >= $k`
    Ge,
}

/// One classified conjunct: which column of the occurrence, which
/// comparison, and which parameter slot it binds.
#[derive(Debug, Clone)]
struct OccPlan {
    /// Column name (matched case-insensitively against the live schema at
    /// probe time, exactly as the analysis binder would).
    column: String,
    /// Normalized comparison.
    op: IndexOp,
    /// 0-based index into the instance's parameter vector.
    param: usize,
}

/// Per-FROM-occurrence index structure.
#[derive(Debug)]
enum OccIndex {
    /// No provably-safe indexable conjunct on this occurrence: deltas
    /// touching it scan every instance (the residual tier).
    Residual,
    /// Equality postings keyed by the bound parameter.
    Eq {
        plan: OccPlan,
        map: HashMap<Value, Vec<u32>>,
    },
    /// Range postings ordered by the bound parameter.
    Range {
        plan: OccPlan,
        map: BTreeMap<Value, Vec<u32>>,
    },
    /// IN-list postings: each instance keyed under every bound list value.
    InSet {
        column: String,
        /// 0-based parameter slots of the list elements.
        params: Vec<usize>,
        map: HashMap<Value, Vec<u32>>,
    },
    /// LIKE postings keyed by the bound pattern's literal prefix.
    LikePrefix {
        column: String,
        /// 0-based parameter slot of the pattern.
        param: usize,
        map: HashMap<String, Vec<u32>>,
    },
}

impl OccIndex {
    /// Indexed column name, `None` for the residual tier.
    fn column(&self) -> Option<&str> {
        match self {
            OccIndex::Residual => None,
            OccIndex::Eq { plan, .. } | OccIndex::Range { plan, .. } => Some(&plan.column),
            OccIndex::InSet { column, .. } | OccIndex::LikePrefix { column, .. } => Some(column),
        }
    }

    /// Parameter slots this occurrence structure reads at insert time.
    fn param_slots(&self, out: &mut Vec<usize>) {
        match self {
            OccIndex::Residual => {}
            OccIndex::Eq { plan, .. } | OccIndex::Range { plan, .. } => out.push(plan.param),
            OccIndex::InSet { params, .. } => out.extend_from_slice(params),
            OccIndex::LikePrefix { param, .. } => out.push(*param),
        }
    }
}

/// Literal prefix of a LIKE pattern: the characters before the first
/// wildcard (`%` or `_`). A pattern can only match strings starting with
/// this prefix, because the leading literal characters must match exactly.
fn like_literal_prefix(pattern: &str) -> &str {
    match pattern.find(['%', '_']) {
        Some(i) => &pattern[..i],
        None => pattern,
    }
}

/// What a probe yields for one (type, delta batch) pair.
#[derive(Debug)]
pub enum Probe {
    /// The index cannot narrow this type for this batch (residual
    /// occurrence touched, schema drift, defensive fallback): scan all
    /// registered instances, exactly as before.
    Scan,
    /// Sound superset of the instances any delta tuple can affect, as
    /// bound parameter vectors (unsorted; the caller sorts with the same
    /// comparator the scan uses).
    Candidates(Vec<Vec<Value>>),
}

/// The per-type predicate index: occurrence structures plus a slot arena
/// interning the live instances' parameter vectors.
#[derive(Debug)]
pub struct TypeIndex {
    occs: Vec<OccIndex>,
    /// Slot → parameter vector (`None` = freed).
    params_of: Vec<Option<Vec<Value>>>,
    free: Vec<u32>,
    /// Defensive bucket: instances whose parameters could not be placed
    /// in an occurrence structure. Always included in candidates.
    unclassified: BTreeSet<u32>,
    live: usize,
}

impl TypeIndex {
    /// Classify one parameterized SELECT at type-intern time.
    pub fn plan(select: &Select) -> TypeIndex {
        let mut occs: Vec<OccIndex> = (0..select.from.len()).map(|_| OccIndex::Residual).collect();
        if let Some(w) = &select.where_clause {
            for conjunct in w.conjuncts() {
                let Some((occ, classified)) = classify_conjunct(conjunct, &select.from) else {
                    continue;
                };
                // Tier preference per occurrence: point probes beat set
                // probes beat interval probes beat prefix probes
                // (Eq > InSet > Range > LikePrefix); first winner per tier
                // is kept for determinism.
                let rank = |o: &OccIndex| match o {
                    OccIndex::Residual => 0u8,
                    OccIndex::LikePrefix { .. } => 1,
                    OccIndex::Range { .. } => 2,
                    OccIndex::InSet { .. } => 3,
                    OccIndex::Eq { .. } => 4,
                };
                let candidate = classified.into_occ();
                if rank(&candidate) > rank(&occs[occ]) {
                    occs[occ] = candidate;
                }
            }
        }
        TypeIndex {
            occs,
            params_of: Vec::new(),
            free: Vec::new(),
            unclassified: BTreeSet::new(),
            live: 0,
        }
    }

    /// Live instances interned in this type's index.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Whether every occurrence is residual (the index can never narrow
    /// this type).
    pub fn is_fully_residual(&self) -> bool {
        self.occs.iter().all(|o| o.column().is_none())
    }

    /// Intern one newly-registered instance; returns its slot.
    pub fn insert(&mut self, params: &[Value]) -> u32 {
        let slot = match self.free.pop() {
            Some(s) => {
                self.params_of[s as usize] = Some(params.to_vec());
                s
            }
            None => {
                self.params_of.push(Some(params.to_vec()));
                (self.params_of.len() - 1) as u32
            }
        };
        self.live += 1;
        // A plan's parameter slots always exist for instances registered
        // through the owning type's template; anything else — including a
        // LIKE pattern with no usable literal prefix — is defensively
        // routed to the always-scanned bucket.
        let mut slots_needed = Vec::new();
        for occ in &self.occs {
            occ.param_slots(&mut slots_needed);
        }
        let mut placeable = slots_needed.iter().all(|p| *p < params.len());
        if placeable {
            for occ in &self.occs {
                if let OccIndex::LikePrefix { param, .. } = occ {
                    match &params[*param] {
                        Value::Str(s) if !like_literal_prefix(s).is_empty() => {}
                        _ => placeable = false,
                    }
                }
            }
        }
        if !placeable {
            self.unclassified.insert(slot);
            return slot;
        }
        for occ in &mut self.occs {
            match occ {
                OccIndex::Residual => {}
                OccIndex::Eq { plan, map } => {
                    map.entry(params[plan.param].clone()).or_default().push(slot);
                }
                OccIndex::Range { plan, map } => {
                    map.entry(params[plan.param].clone()).or_default().push(slot);
                }
                OccIndex::InSet { params: slots, map, .. } => {
                    for v in distinct_values(slots, params) {
                        map.entry(v.clone()).or_default().push(slot);
                    }
                }
                OccIndex::LikePrefix { param, map, .. } => {
                    let Value::Str(s) = &params[*param] else {
                        unreachable!("checked placeable above");
                    };
                    map.entry(like_literal_prefix(s).to_string())
                        .or_default()
                        .push(slot);
                }
            }
        }
        slot
    }

    /// Drop one instance (eviction via `remove_pages`).
    pub fn remove(&mut self, slot: u32, params: &[Value]) {
        if self
            .params_of
            .get(slot as usize)
            .map(Option::is_none)
            .unwrap_or(true)
        {
            return; // already freed (defensive)
        }
        self.params_of[slot as usize] = None;
        self.free.push(slot);
        self.live -= 1;
        if self.unclassified.remove(&slot) {
            return;
        }
        fn unpost<K: std::hash::Hash + Eq + Clone, S: std::hash::BuildHasher>(
            map: &mut HashMap<K, Vec<u32>, S>,
            key: &K,
            slot: u32,
        ) {
            if let Some(postings) = map.get_mut(key) {
                postings.retain(|s| *s != slot);
                if postings.is_empty() {
                    map.remove(key);
                }
            }
        }
        for occ in &mut self.occs {
            match occ {
                OccIndex::Residual => {}
                OccIndex::Eq { plan, map } => unpost(map, &params[plan.param], slot),
                OccIndex::Range { plan, map } => {
                    if let Some(postings) = map.get_mut(&params[plan.param]) {
                        postings.retain(|s| *s != slot);
                        if postings.is_empty() {
                            map.remove(&params[plan.param]);
                        }
                    }
                }
                OccIndex::InSet { params: slots, map, .. } => {
                    for v in distinct_values(slots, params) {
                        unpost(map, v, slot);
                    }
                }
                OccIndex::LikePrefix { param, map, .. } => {
                    if let Value::Str(s) = &params[*param] {
                        unpost(map, &like_literal_prefix(s).to_string(), slot);
                    }
                }
            }
        }
    }

    /// Map one delta batch to candidate instances. `from` is the type's
    /// FROM list; `db` provides the live schema for column positions.
    pub fn probe(&self, from: &[TableRef], deltas: &DeltaSet, db: &Database) -> Probe {
        // BindFailure parity: if any FROM table is gone, the scan path
        // marks every instance affected (fail safe). The index must not
        // skip those instances, so it stands aside entirely.
        for tref in from {
            if db.catalog().get(&tref.table).is_none() {
                return Probe::Scan;
            }
        }
        let mut slots: BTreeSet<u32> = self.unclassified.clone();
        for (occ, tref) in from.iter().enumerate() {
            let Some(delta) = deltas.for_table(&tref.table) else {
                continue;
            };
            let Some(col_name) = self.occs[occ].column() else {
                return Probe::Scan; // residual occurrence touched
            };
            // Resolve the column against the live schema, exactly as the
            // binder would; drift (column dropped/renamed) falls back to
            // the scan so error/verdict behavior matches it.
            let table = db.catalog().get(&tref.table).expect("checked above");
            let Ok(col) = table.schema().require(col_name) else {
                return Probe::Scan;
            };
            let occ_index = &self.occs[occ];
            for row in delta.inserted.iter().chain(delta.deleted.iter()) {
                let Some(v) = row.get(col) else {
                    // Row narrower than the live schema (schema drift
                    // mid-batch): let the scan decide.
                    return Probe::Scan;
                };
                if matches!(v, Value::Null) {
                    continue; // NULL satisfies no comparison, IN, or LIKE
                }
                match occ_index {
                    OccIndex::Residual => unreachable!("column() was Some"),
                    OccIndex::Eq { map, .. } | OccIndex::InSet { map, .. } => {
                        if let Some(postings) = map.get(v) {
                            slots.extend(postings.iter().copied());
                        }
                    }
                    OccIndex::LikePrefix { map, .. } => {
                        // A pattern matches `s` only if its literal prefix
                        // is a prefix of `s`; probe every char-boundary
                        // prefix (non-empty; empty-prefix patterns live in
                        // the unclassified bucket). Non-string values never
                        // satisfy LIKE, so they probe nothing.
                        if let Value::Str(s) = v {
                            for (i, _) in s.char_indices().skip(1) {
                                if let Some(postings) = map.get(&s[..i]) {
                                    slots.extend(postings.iter().copied());
                                }
                            }
                            if !s.is_empty() {
                                if let Some(postings) = map.get(s.as_str()) {
                                    slots.extend(postings.iter().copied());
                                }
                            }
                        }
                    }
                    OccIndex::Range { plan, map } => {
                        // Parameters p whose conjunct `v op p` can hold:
                        //   col <  $k  →  p > v
                        //   col <= $k  →  p >= v
                        //   col >  $k  →  p < v
                        //   col >= $k  →  p <= v
                        // `Value`'s total order matches SQL on every
                        // satisfiable pair, so these ranges are supersets.
                        let matched = match plan.op {
                            IndexOp::Lt => map.range((Excluded(v), Unbounded)),
                            IndexOp::Le => map.range::<Value, _>((
                                std::ops::Bound::Included(v),
                                Unbounded,
                            )),
                            IndexOp::Gt => map.range::<Value, _>((
                                Unbounded,
                                std::ops::Bound::Excluded(v),
                            )),
                            IndexOp::Ge => map.range::<Value, _>((
                                Unbounded,
                                std::ops::Bound::Included(v),
                            )),
                            IndexOp::Eq => unreachable!("Eq stored in Eq map"),
                        };
                        for (_, postings) in matched {
                            slots.extend(postings.iter().copied());
                        }
                    }
                }
            }
        }
        let candidates: Vec<Vec<Value>> = slots
            .iter()
            .filter_map(|s| self.params_of[*s as usize].clone())
            .collect();
        Probe::Candidates(candidates)
    }
}

/// Distinct bound values among the given parameter slots (IN-lists may
/// repeat a value; postings must carry each slot once per key).
fn distinct_values<'a>(slots: &[usize], params: &'a [Value]) -> Vec<&'a Value> {
    let mut out: Vec<&Value> = Vec::with_capacity(slots.len());
    for s in slots {
        let v = &params[*s];
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// Classification outcome of one WHERE conjunct before its empty
/// occurrence structure is built.
enum Classified {
    /// `col op $k` / `$k op col` / param-bounded BETWEEN side.
    Cmp(OccPlan),
    /// `col IN ($i, $j, …)` with every element a parameter.
    InSet { column: String, params: Vec<usize> },
    /// `col LIKE $k` (pattern is per-instance; prefix extracted at insert).
    Like { column: String, param: usize },
}

impl Classified {
    fn into_occ(self) -> OccIndex {
        match self {
            Classified::Cmp(plan) if plan.op == IndexOp::Eq => {
                OccIndex::Eq { plan, map: HashMap::new() }
            }
            Classified::Cmp(plan) => OccIndex::Range { plan, map: BTreeMap::new() },
            Classified::InSet { column, params } => {
                OccIndex::InSet { column, params, map: HashMap::new() }
            }
            Classified::Like { column, param } => {
                OccIndex::LikePrefix { column, param, map: HashMap::new() }
            }
        }
    }
}

/// Classify one WHERE conjunct if it has a provably-safe indexable shape:
/// `col op $k` / `$k op col` / `col BETWEEN $i AND $j` (param-bounded
/// side) / `col IN ($i, …)` / `col LIKE $k`, where `col` resolves to
/// exactly the occurrence the engine's binder would pick.
fn classify_conjunct(e: &Expr, from: &[TableRef]) -> Option<(usize, Classified)> {
    let (col, op, param) = match e {
        Expr::Cmp { left, op, right } => match (&**left, &**right) {
            (Expr::Column(c), Expr::Param(k)) => (c, *op, *k),
            (Expr::Param(k), Expr::Column(c)) => (c, op.flip(), *k),
            _ => return None,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            let Expr::Column(c) = &**expr else {
                return None;
            };
            // BETWEEN is `col >= low AND col <= high`; either
            // param-bounded side alone is a sound one-sided filter.
            if let Expr::Param(k) = &**low {
                return occ_of(c, from).map(|occ| {
                    (occ, Classified::Cmp(OccPlan {
                        column: c.column.clone(),
                        op: IndexOp::Ge,
                        param: *k - 1,
                    }))
                });
            }
            if let Expr::Param(k) = &**high {
                return occ_of(c, from).map(|occ| {
                    (occ, Classified::Cmp(OccPlan {
                        column: c.column.clone(),
                        op: IndexOp::Le,
                        param: *k - 1,
                    }))
                });
            }
            return None;
        }
        Expr::InList {
            expr,
            list,
            negated: false,
        } => {
            let Expr::Column(c) = &**expr else {
                return None;
            };
            if list.is_empty() {
                return None;
            }
            let mut params = Vec::with_capacity(list.len());
            for item in list {
                let Expr::Param(k) = item else {
                    return None;
                };
                params.push(*k - 1);
            }
            let occ = occ_of(c, from)?;
            return Some((occ, Classified::InSet { column: c.column.clone(), params }));
        }
        Expr::Like {
            expr,
            pattern,
            negated: false,
        } => {
            let Expr::Column(c) = &**expr else {
                return None;
            };
            let Expr::Param(k) = &**pattern else {
                return None;
            };
            let occ = occ_of(c, from)?;
            return Some((occ, Classified::Like { column: c.column.clone(), param: *k - 1 }));
        }
        _ => return None,
    };
    let iop = match op {
        CmpOp::Eq => IndexOp::Eq,
        CmpOp::Lt => IndexOp::Lt,
        CmpOp::LtEq => IndexOp::Le,
        CmpOp::Gt => IndexOp::Gt,
        CmpOp::GtEq => IndexOp::Ge,
        CmpOp::NotEq => return None,
    };
    let occ = occ_of(col, from)?;
    Some((occ, Classified::Cmp(OccPlan { column: col.column.clone(), op: iop, param: param - 1 })))
}

/// Resolve a column reference to its FROM occurrence the same way the
/// engine's binder does: a qualified name takes the *first* binding that
/// matches case-insensitively; an unqualified name is only unambiguous
/// (without a schema) when the FROM list has a single occurrence.
fn occ_of(c: &ColumnRef, from: &[TableRef]) -> Option<usize> {
    match &c.table {
        Some(q) => from.iter().position(|t| t.binding().eq_ignore_ascii_case(q)),
        None => {
            if from.len() == 1 {
                Some(0)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cacheportal_db::sql::parser::parse_select;
    use cacheportal_db::sql::rewrite::parameterize;
    use cacheportal_db::{LogOp, LogRecord};

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE item (id INT, k INT, v INT)").unwrap();
        db.execute("CREATE TABLE other (k INT, w INT)").unwrap();
        db
    }

    fn type_of(sql: &str) -> (Select, TypeIndex) {
        let sel = parse_select(sql).unwrap();
        let (template, _) = parameterize(&sel);
        let tix = TypeIndex::plan(&template);
        (template, tix)
    }

    fn deltas_for(table: &str, rows: Vec<Vec<Value>>) -> DeltaSet {
        let records: Vec<LogRecord> = rows
            .into_iter()
            .enumerate()
            .map(|(i, row)| LogRecord {
                lsn: i as u64 + 1,
                table: table.to_string(),
                op: LogOp::Insert(row),
            })
            .collect();
        DeltaSet::from_records(&records)
    }

    fn candidates(p: Probe) -> Vec<Vec<Value>> {
        match p {
            Probe::Candidates(mut c) => {
                c.sort_unstable();
                c
            }
            Probe::Scan => panic!("expected candidates, got scan fallback"),
        }
    }

    #[test]
    fn equality_tier_probes_point_values() {
        let db = db();
        let (template, mut tix) = type_of("SELECT v FROM item WHERE item.k = 7");
        for k in 0..100 {
            tix.insert(&[Value::Int(k)]);
        }
        let d = deltas_for("item", vec![vec![Value::Int(1), Value::Int(42), Value::Int(0)]]);
        let got = candidates(tix.probe(&template.from, &d, &db));
        assert_eq!(got, vec![vec![Value::Int(42)]]);
    }

    #[test]
    fn range_tier_probes_intervals() {
        let db = db();
        // `v < $1` — instances with parameter p are affected when tuple
        // value t satisfies t < p, i.e. p in (t, ∞).
        let (template, mut tix) = type_of("SELECT id FROM item WHERE item.v < 50");
        for p in [10, 20, 30] {
            tix.insert(&[Value::Int(p)]);
        }
        let d = deltas_for("item", vec![vec![Value::Int(1), Value::Int(0), Value::Int(15)]]);
        let got = candidates(tix.probe(&template.from, &d, &db));
        assert_eq!(got, vec![vec![Value::Int(20)], vec![Value::Int(30)]]);

        // Boundary: t == p must be excluded for strict <.
        let d = deltas_for("item", vec![vec![Value::Int(1), Value::Int(0), Value::Int(20)]]);
        let got = candidates(tix.probe(&template.from, &d, &db));
        assert_eq!(got, vec![vec![Value::Int(30)]]);
    }

    #[test]
    fn between_indexes_the_param_bounded_low_side() {
        let db = db();
        let (template, mut tix) = type_of("SELECT id FROM item WHERE item.v BETWEEN 10 AND 20");
        // col >= $low: tuple t probes p <= t.
        tix.insert(&[Value::Int(10), Value::Int(20)]);
        tix.insert(&[Value::Int(100), Value::Int(200)]);
        let d = deltas_for("item", vec![vec![Value::Int(1), Value::Int(0), Value::Int(15)]]);
        let got = candidates(tix.probe(&template.from, &d, &db));
        assert_eq!(got, vec![vec![Value::Int(10), Value::Int(20)]]);
    }

    #[test]
    fn cross_type_numeric_equality_matches() {
        let db = db();
        let (template, mut tix) = type_of("SELECT v FROM item WHERE item.k = 7");
        tix.insert(&[Value::Float(42.0)]);
        let d = deltas_for("item", vec![vec![Value::Int(1), Value::Int(42), Value::Int(0)]]);
        let got = candidates(tix.probe(&template.from, &d, &db));
        assert_eq!(got, vec![vec![Value::Float(42.0)]], "Int(42) must find Float(42.0)");
    }

    #[test]
    fn null_tuple_value_probes_nothing() {
        let db = db();
        let (template, mut tix) = type_of("SELECT v FROM item WHERE item.k = 7");
        tix.insert(&[Value::Int(1)]);
        tix.insert(&[Value::Null]);
        let d = deltas_for("item", vec![vec![Value::Int(1), Value::Null, Value::Int(0)]]);
        let got = candidates(tix.probe(&template.from, &d, &db));
        assert!(got.is_empty(), "NULL satisfies no comparison: {got:?}");
    }

    #[test]
    fn join_occurrence_without_conjunct_is_residual() {
        let db = db();
        let (template, tix) =
            type_of("SELECT item.v FROM item, other WHERE item.k = other.k AND item.v < 5");
        // Deltas on `other` touch a residual occurrence → scan.
        let d = deltas_for("other", vec![vec![Value::Int(1), Value::Int(2)]]);
        assert!(matches!(tix.probe(&template.from, &d, &db), Probe::Scan));
        // Deltas on `item` touch the range-indexed occurrence → narrowed.
        let d = deltas_for("item", vec![vec![Value::Int(1), Value::Int(0), Value::Int(9)]]);
        assert!(matches!(tix.probe(&template.from, &d, &db), Probe::Candidates(_)));
    }

    #[test]
    fn unqualified_column_in_join_is_residual() {
        let (_, tix) = type_of("SELECT item.v FROM item, other WHERE v < 5");
        assert!(tix.is_fully_residual());
    }

    #[test]
    fn dropped_table_falls_back_to_scan_for_bindfailure_parity() {
        let mut db = db();
        let (template, mut tix) = type_of("SELECT v FROM item WHERE item.k = 7");
        tix.insert(&[Value::Int(1)]);
        let d = deltas_for("item", vec![vec![Value::Int(1), Value::Int(1), Value::Int(0)]]);
        assert!(matches!(tix.probe(&template.from, &d, &db), Probe::Candidates(_)));
        db.execute("DROP TABLE item").unwrap();
        assert!(matches!(tix.probe(&template.from, &d, &db), Probe::Scan));
    }

    #[test]
    fn remove_frees_slot_and_postings() {
        let db = db();
        let (template, mut tix) = type_of("SELECT v FROM item WHERE item.k = 7");
        let s1 = tix.insert(&[Value::Int(1)]);
        let s2 = tix.insert(&[Value::Int(2)]);
        assert_ne!(s1, s2);
        tix.remove(s1, &[Value::Int(1)]);
        assert_eq!(tix.live(), 1);
        let d = deltas_for("item", vec![vec![Value::Int(1), Value::Int(1), Value::Int(0)]]);
        assert!(candidates(tix.probe(&template.from, &d, &db)).is_empty());
        // The freed slot is recycled.
        let s3 = tix.insert(&[Value::Int(3)]);
        assert_eq!(s3, s1);
    }

    fn str_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE item (id INT, name TEXT)").unwrap();
        db
    }

    #[test]
    fn in_list_tier_probes_each_value() {
        let db = db();
        let (template, mut tix) = type_of("SELECT v FROM item WHERE item.k IN (1, 2)");
        assert!(!tix.is_fully_residual());
        tix.insert(&[Value::Int(10), Value::Int(20)]);
        tix.insert(&[Value::Int(30), Value::Int(40)]);
        // Duplicate list values must not duplicate postings.
        tix.insert(&[Value::Int(10), Value::Int(10)]);
        let d = deltas_for("item", vec![vec![Value::Int(1), Value::Int(20), Value::Int(0)]]);
        let got = candidates(tix.probe(&template.from, &d, &db));
        assert_eq!(got, vec![vec![Value::Int(10), Value::Int(20)]]);
        let d = deltas_for("item", vec![vec![Value::Int(1), Value::Int(10), Value::Int(0)]]);
        let got = candidates(tix.probe(&template.from, &d, &db));
        assert_eq!(
            got,
            vec![
                vec![Value::Int(10), Value::Int(10)],
                vec![Value::Int(10), Value::Int(20)]
            ]
        );
        let d = deltas_for("item", vec![vec![Value::Int(1), Value::Int(99), Value::Int(0)]]);
        assert!(candidates(tix.probe(&template.from, &d, &db)).is_empty());
    }

    #[test]
    fn like_prefix_tier_probes_string_prefixes() {
        let db = str_db();
        let (template, mut tix) = type_of("SELECT id FROM item WHERE item.name LIKE 'ab%'");
        assert!(!tix.is_fully_residual());
        tix.insert(&[Value::Str("ab%".into())]);
        tix.insert(&[Value::Str("abc%".into())]);
        tix.insert(&[Value::Str("x_y".into())]);
        // Pattern with no literal prefix: always-scanned bucket.
        tix.insert(&[Value::Str("%z".into())]);
        let d = deltas_for("item", vec![vec![Value::Int(1), Value::Str("abcd".into())]]);
        let got = candidates(tix.probe(&template.from, &d, &db));
        // 'ab%' (prefix "ab") and 'abc%' (prefix "abc") both prefix "abcd";
        // '%z' rides along from the unclassified bucket; 'x_y' is excluded.
        assert_eq!(
            got,
            vec![
                vec![Value::Str("%z".into())],
                vec![Value::Str("ab%".into())],
                vec![Value::Str("abc%".into())]
            ]
        );
        // Non-string tuple values never satisfy LIKE: only the bucket rides.
        let d = deltas_for("item", vec![vec![Value::Int(1), Value::Int(7)]]);
        let got = candidates(tix.probe(&template.from, &d, &db));
        assert_eq!(got, vec![vec![Value::Str("%z".into())]]);
    }

    #[test]
    fn like_and_in_removal_maintains_postings() {
        let sdb = str_db();
        let (template, mut tix) = type_of("SELECT id FROM item WHERE item.name LIKE 'ab%'");
        let s1 = tix.insert(&[Value::Str("ab%".into())]);
        tix.remove(s1, &[Value::Str("ab%".into())]);
        assert_eq!(tix.live(), 0);
        let d = deltas_for("item", vec![vec![Value::Int(1), Value::Str("abcd".into())]]);
        assert!(candidates(tix.probe(&template.from, &d, &sdb)).is_empty());

        let idb = db();
        let (template, mut tix) = type_of("SELECT v FROM item WHERE item.k IN (1, 2)");
        let s1 = tix.insert(&[Value::Int(5), Value::Int(6)]);
        tix.remove(s1, &[Value::Int(5), Value::Int(6)]);
        let d = deltas_for("item", vec![vec![Value::Int(1), Value::Int(5), Value::Int(0)]]);
        assert!(candidates(tix.probe(&template.from, &d, &idb)).is_empty());
    }

    #[test]
    fn eq_preferred_over_in_over_range_over_like() {
        // Same occurrence with IN and range: IN wins.
        let (_, tix) = type_of("SELECT v FROM item WHERE item.k IN (1,2) AND item.k < 9");
        assert!(matches!(tix.occs[0], OccIndex::InSet { .. }));
        // Eq beats IN.
        let (_, tix) = type_of("SELECT v FROM item WHERE item.k IN (1,2) AND item.k = 3");
        assert!(matches!(tix.occs[0], OccIndex::Eq { .. }));
        // Range beats LikePrefix.
        let (_, tix) =
            type_of("SELECT id FROM item WHERE item.name LIKE 'a%' AND item.name < 'zz'");
        assert!(matches!(tix.occs[0], OccIndex::Range { .. }));
    }

    #[test]
    fn negated_like_and_in_stay_residual() {
        let (_, tix) = type_of("SELECT id FROM item WHERE item.name NOT LIKE 'ab%'");
        assert!(tix.is_fully_residual());
        let (_, tix) = type_of("SELECT v FROM item WHERE item.k NOT IN (1, 2)");
        assert!(tix.is_fully_residual());
    }

    #[test]
    fn flipped_param_side_classifies() {
        let db = db();
        // `$1 > col` ≡ `col < $1` — the flip path.
        let (template, mut tix) = type_of("SELECT id FROM item WHERE 50 > item.v");
        tix.insert(&[Value::Int(30)]);
        tix.insert(&[Value::Int(5)]);
        let d = deltas_for("item", vec![vec![Value::Int(1), Value::Int(0), Value::Int(10)]]);
        let got = candidates(tix.probe(&template.from, &d, &db));
        assert_eq!(got, vec![vec![Value::Int(30)]]);
    }
}

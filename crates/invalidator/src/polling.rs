//! Polling-query execution and the information management module (§4.2.3,
//! §4.3).
//!
//! Polling queries are deduplicated within a synchronization point (the
//! paper's grouping of related instances/updates: instances of one type and
//! correlated delta tuples frequently produce the *same* residual SQL).
//! Definite answers can also come from **maintained indexes** — the paper's
//! "external indexes kept within the invalidator" — which are join-attribute
//! multisets kept current from the update deltas, trading invalidator memory
//! for DBMS load.

use crate::analysis::{analyze_tuple, BoundInstance, PollingQuery, TupleImpact};
use crate::delta::DeltaSet;
use cacheportal_db::sql::ast::{CmpOp, Expr, Statement};
use cacheportal_db::sql::parser::parse;
use cacheportal_db::{Database, DbError, DbResult, FaultPlan, PollFault, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One maintained join-attribute index.
#[derive(Debug)]
pub struct MaintainedIndex {
    /// Lower-cased table name.
    pub table: String,
    /// Column name (case preserved for display; matched case-insensitively).
    pub column: String,
    column_idx: usize,
    /// Multiset of values currently in the column.
    counts: HashMap<Value, i64>,
}

impl MaintainedIndex {
    /// Number of distinct values (the paper's "size of the join index").
    pub fn distinct_values(&self) -> usize {
        self.counts.len()
    }

    fn contains(&self, v: &Value) -> bool {
        self.counts.get(v).copied().unwrap_or(0) > 0
    }
}

/// Statistics for the polling subsystem.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PollStats {
    /// Polling queries actually sent to the DBMS.
    pub issued: u64,
    /// Polls answered from the per-sync-point dedup cache.
    pub from_cache: u64,
    /// Polls answered definitively by a maintained index.
    pub from_index: u64,
    /// Poll results flipped to "affected" by the correlated-delete guard.
    pub delete_guard_hits: u64,
    /// Polls that failed with an injected fault (error or timeout). Each
    /// failed attempt counts; faulted answers are never cached, so the
    /// count is a pure function of the workload — identical across worker
    /// counts.
    pub faulted: u64,
    /// Retry attempts made after a transient poll fault. A poll only
    /// surfaces as failed once its retry allowance is exhausted.
    pub retries: u64,
}

/// The information management module: maintained indexes + poll statistics.
#[derive(Debug, Default)]
pub struct InfoManager {
    indexes: Vec<MaintainedIndex>,
}

impl InfoManager {
    /// Create the module/runner.
    pub fn new() -> Self {
        InfoManager::default()
    }

    /// Start maintaining an index over `table.column`, bootstrapped from the
    /// current database contents. Idempotent.
    pub fn maintain_index(&mut self, db: &Database, table: &str, column: &str) -> DbResult<()> {
        let t = db
            .catalog()
            .get(table)
            .ok_or_else(|| cacheportal_db::DbError::UnknownTable(table.to_string()))?;
        let column_idx = t.schema().require(column)?;
        let table_lc = table.to_ascii_lowercase();
        if self
            .indexes
            .iter()
            .any(|ix| ix.table == table_lc && ix.column_idx == column_idx)
        {
            return Ok(());
        }
        let mut counts: HashMap<Value, i64> = HashMap::new();
        for (_, row) in t.scan() {
            *counts.entry(row[column_idx].clone()).or_insert(0) += 1;
        }
        self.indexes.push(MaintainedIndex {
            table: table_lc,
            column: column.to_string(),
            column_idx,
            counts,
        });
        Ok(())
    }

    /// Currently maintained indexes.
    pub fn indexes(&self) -> &[MaintainedIndex] {
        &self.indexes
    }

    /// Keep indexes current: fold one sync interval's deltas in. Must run
    /// *before* polls are answered, since polls reflect the post-batch state.
    pub fn apply_deltas(&mut self, deltas: &DeltaSet) {
        for ix in &mut self.indexes {
            if let Some(delta) = deltas.for_table(&ix.table) {
                for row in &delta.inserted {
                    *ix.counts.entry(row[ix.column_idx].clone()).or_insert(0) += 1;
                }
                for row in &delta.deleted {
                    if let Some(c) = ix.counts.get_mut(&row[ix.column_idx]) {
                        *c -= 1;
                        if *c <= 0 {
                            ix.counts.remove(&row[ix.column_idx]);
                        }
                    }
                }
            }
        }
    }

    /// Try to answer a poll from maintained indexes alone.
    ///
    /// * If the poll's WHERE contains an `indexed_col = literal` conjunct and
    ///   the index says the value is absent, the count is definitely 0.
    /// * If additionally that equality is the *only* conjunct and the poll
    ///   reads a single table, a present value means count > 0.
    ///
    /// Returns `None` when the index cannot decide.
    pub fn try_answer(&self, poll: &PollingQuery) -> Option<bool> {
        let Ok(Statement::Select(sel)) = parse(&poll.sql) else {
            return None;
        };
        if sel.from.len() != 1 {
            return None;
        }
        let table_lc = sel.from[0].table.to_ascii_lowercase();
        let conjuncts: Vec<&Expr> = match &sel.where_clause {
            Some(w) => w.conjuncts(),
            None => return None,
        };
        for (i, c) in conjuncts.iter().enumerate() {
            let Some((col_name, value)) = as_col_eq_literal(c) else {
                continue;
            };
            let Some(ix) = self
                .indexes
                .iter()
                .find(|ix| ix.table == table_lc && ix.column.eq_ignore_ascii_case(col_name))
            else {
                continue;
            };
            if !ix.contains(&value) {
                return Some(false); // definite: no row matches the equality
            }
            if conjuncts.len() == 1 && i == 0 {
                return Some(true); // sole condition and value present
            }
        }
        None
    }
}

/// Match `col = literal` / `literal = col` (column possibly qualified).
fn as_col_eq_literal(e: &Expr) -> Option<(&str, Value)> {
    if let Expr::Cmp { left, op, right } = e {
        if *op == CmpOp::Eq {
            match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(c)) => {
                    return Some((c.column.as_str(), v.clone()));
                }
                _ => {}
            }
        }
    }
    None
}

/// How an affirmative poll decision was reached (provenance detail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollAnswer {
    /// The polling query was sent to the DBMS and found matching rows.
    Issued,
    /// An identical poll earlier in this sync point already answered yes.
    FromCache,
    /// A maintained join-attribute index answered definitively.
    FromIndex,
    /// The correlated-delete guard flipped a negative poll to affected.
    DeleteGuard,
}

/// Number of dedup-cache stripes. Polls hash across stripes, so two shards
/// only contend when their polls share a stripe; 64 stripes keep that rare
/// even with the full worker fan-out while bounding memory.
const DEDUP_STRIPES: usize = 64;

/// Executes polls for one synchronization point, with dedup and the
/// correlated-delete guard.
///
/// The runner is shared by reference across the invalidator's shard workers:
/// the dedup cache is lock-striped on the poll's structural [`PollingQuery::key`]
/// and all counters are atomics, so every method takes `&self`. A stripe's
/// lock is held across poll *execution* (not just the map probe), which is
/// what makes identical polls execute **exactly once** across shards — the
/// second shard blocks on the stripe and then reads the first shard's
/// answer from the cache.
pub struct PollRunner<'a> {
    info: &'a InfoManager,
    deltas: &'a DeltaSet,
    stripes: Vec<Mutex<HashMap<u64, bool>>>,
    issued: AtomicU64,
    from_cache: AtomicU64,
    from_index: AtomicU64,
    delete_guard_hits: AtomicU64,
    contended: AtomicU64,
    faulted: AtomicU64,
    retries: AtomicU64,
    poll_rtt: Duration,
    fault: FaultPlan,
    max_retries: u32,
    backoff_base: Duration,
}

impl<'a> PollRunner<'a> {
    /// Create the module/runner.
    pub fn new(info: &'a InfoManager, deltas: &'a DeltaSet) -> Self {
        Self::with_rtt(info, deltas, Duration::ZERO)
    }

    /// Like [`PollRunner::new`], with a modeled per-poll round-trip time.
    /// In the paper's deployment the invalidator polls a *remote* DBMS over
    /// the network; `poll_rtt` injects that latency on every issued poll so
    /// benchmarks reproduce the regime where concurrent polling pays off.
    /// `Duration::ZERO` (the default) leaves the hot path untouched.
    pub fn with_rtt(info: &'a InfoManager, deltas: &'a DeltaSet, poll_rtt: Duration) -> Self {
        PollRunner {
            info,
            deltas,
            stripes: (0..DEDUP_STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            issued: AtomicU64::new(0),
            from_cache: AtomicU64::new(0),
            from_index: AtomicU64::new(0),
            delete_guard_hits: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            faulted: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            poll_rtt,
            fault: FaultPlan::default(),
            max_retries: 0,
            backoff_base: Duration::ZERO,
        }
    }

    /// Install a fault plan: issued polls may then fail (error) or time out.
    /// Fault decisions key on the poll's structural [`PollingQuery::key`],
    /// so the same polls fault no matter how instances are sharded across
    /// workers — the parallel-equivalence guarantee extends to faults.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Configure the default retry policy: up to `max_retries` re-attempts
    /// after a transient poll fault, with bounded exponential backoff from
    /// `backoff_base` (doubling per attempt, capped at 64×) plus a
    /// deterministic jitter derived from the poll key — no wall-clock or
    /// OS randomness, so replays sleep identically. `Duration::ZERO`
    /// models the backoff without sleeping (the test/harness default).
    pub fn with_retry(mut self, max_retries: u32, backoff_base: Duration) -> Self {
        self.max_retries = max_retries;
        self.backoff_base = backoff_base;
        self
    }

    /// Snapshot of this sync point's poll counters.
    pub fn stats(&self) -> PollStats {
        PollStats {
            issued: self.issued.load(Ordering::Relaxed),
            from_cache: self.from_cache.load(Ordering::Relaxed),
            from_index: self.from_index.load(Ordering::Relaxed),
            delete_guard_hits: self.delete_guard_hits.load(Ordering::Relaxed),
            faulted: self.faulted.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }

    /// Times a shard found a dedup stripe already locked by another shard
    /// (kept out of [`PollStats`]: it is scheduling-dependent, and the
    /// equivalence guarantee covers `PollStats` exactly).
    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Decide whether the polled instance is affected. `tuple_was_delete`
    /// enables the correlated-delete guard (see `analysis` module docs).
    pub fn is_affected(
        &self,
        db: &Database,
        poll: &PollingQuery,
        tuple_was_delete: bool,
    ) -> DbResult<bool> {
        Ok(self.decide(db, poll, tuple_was_delete)?.is_some())
    }

    /// Like [`PollRunner::is_affected`], but reports *how* an affirmative
    /// answer was reached (`None` = not affected).
    pub fn decide(
        &self,
        db: &Database,
        poll: &PollingQuery,
        tuple_was_delete: bool,
    ) -> DbResult<Option<PollAnswer>> {
        self.decide_with_allowance(db, poll, tuple_was_delete, self.max_retries)
            .map(|(answer, _)| answer)
    }

    /// Like [`PollRunner::decide`], with an explicit retry allowance for
    /// this call (the invalidator passes the remaining per-query-type
    /// budget) and the number of retries actually spent. Fault decisions
    /// key on `(poll key, attempt)`, so both the faults seen *and* the
    /// retries spent are pure functions of the workload — the
    /// parallel-equivalence property survives retries.
    pub fn decide_with_allowance(
        &self,
        db: &Database,
        poll: &PollingQuery,
        tuple_was_delete: bool,
        max_retries: u32,
    ) -> DbResult<(Option<PollAnswer>, u32)> {
        let mut retries_spent: u32 = 0;
        let stripe = &self.stripes[(poll.key % DEDUP_STRIPES as u64) as usize];
        let mut cache = match stripe.try_lock() {
            Some(guard) => guard,
            None => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                stripe.lock()
            }
        };
        let (base, source) = match cache.get(&poll.key) {
            Some(hit) => {
                self.from_cache.fetch_add(1, Ordering::Relaxed);
                (*hit, PollAnswer::FromCache)
            }
            None => {
                let (answer, source) = match self.info.try_answer(poll) {
                    Some(ans) => {
                        self.from_index.fetch_add(1, Ordering::Relaxed);
                        (ans, PollAnswer::FromIndex)
                    }
                    None => {
                        // The DBMS interaction is the fault site: local
                        // index answers and cache hits cannot fault. A
                        // transient fault is retried (up to the allowance)
                        // with bounded exponential backoff; only an
                        // exhausted allowance surfaces as an error. Faulted
                        // answers are *not* cached, and fault decisions key
                        // on (poll key, attempt), so fault and retry counts
                        // are shard-independent.
                        let mut attempt: u32 = 0;
                        loop {
                            if let Some(kind) = self.fault.poll_fault(poll.key, attempt) {
                                self.faulted.fetch_add(1, Ordering::Relaxed);
                                if kind == PollFault::Timeout && !self.poll_rtt.is_zero() {
                                    std::thread::sleep(self.poll_rtt);
                                }
                                if attempt >= max_retries {
                                    return Err(DbError::Faulted(match kind {
                                        PollFault::Error => {
                                            format!("poll rejected: {}", poll.sql)
                                        }
                                        PollFault::Timeout => {
                                            format!("poll timed out: {}", poll.sql)
                                        }
                                    }));
                                }
                                self.retries.fetch_add(1, Ordering::Relaxed);
                                retries_spent += 1;
                                attempt += 1;
                                let delay = self.backoff_delay(poll.key, attempt);
                                if !delay.is_zero() {
                                    std::thread::sleep(delay);
                                }
                                continue;
                            }
                            break;
                        }
                        self.issued.fetch_add(1, Ordering::Relaxed);
                        if !self.poll_rtt.is_zero() {
                            std::thread::sleep(self.poll_rtt);
                        }
                        let r = db.query(&poll.sql)?;
                        let ans = matches!(r.rows.first().and_then(|row| row.first()),
                                 Some(Value::Int(n)) if *n > 0);
                        (ans, PollAnswer::Issued)
                    }
                };
                cache.insert(poll.key, answer);
                (answer, source)
            }
        };
        drop(cache);
        if base {
            return Ok((Some(source), retries_spent));
        }
        if tuple_was_delete {
            // A join partner may have been deleted in the same batch:
            // re-check the residual against the other tables' Δ⁻ rows.
            if self.residual_hits_deleted_rows(db, poll)? {
                self.delete_guard_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((Some(PollAnswer::DeleteGuard), retries_spent));
            }
        }
        Ok((None, retries_spent))
    }

    /// Bounded exponential backoff with deterministic jitter: base × 2^min(attempt,6),
    /// plus up to 50% jitter hashed from `(key, attempt)` — the "seeded
    /// RNG" here is splitmix64 over stable inputs, so replays are exact.
    fn backoff_delay(&self, key: u64, attempt: u32) -> Duration {
        if self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let exp = self.backoff_base * (1u32 << attempt.min(6));
        let mut z = key ^ (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let jitter_ns = (z ^ (z >> 31)) % (exp.as_nanos().max(2) as u64 / 2);
        exp + Duration::from_nanos(jitter_ns)
    }

    /// Exact Δ⁻ re-check for single-other-table residuals; coarse guard
    /// (any deletions at all) for multi-table residuals.
    fn residual_hits_deleted_rows(
        &self,
        db: &Database,
        poll: &PollingQuery,
    ) -> DbResult<bool> {
        let Ok(Statement::Select(sel)) = parse(&poll.sql) else {
            return Ok(false);
        };
        if sel.from.len() == 1 {
            let table = sel.from[0].table.clone();
            let Some(delta) = self.deltas.for_table(&table) else {
                return Ok(false);
            };
            if delta.deleted.is_empty() {
                return Ok(false);
            }
            let inst = BoundInstance::new(sel, db)?;
            for row in &delta.deleted {
                if analyze_tuple(&inst, 0, row)? == TupleImpact::Affected {
                    return Ok(true);
                }
            }
            Ok(false)
        } else {
            Ok(poll
                .other_tables
                .iter()
                .any(|t| self.deltas.has_deletions(t)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cacheportal_db::{LogOp, LogRecord};

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT)").unwrap();
        db.execute("INSERT INTO Mileage VALUES ('Avalon', 28.0), ('Civic', 36.5), ('Civic', 37.0)")
            .unwrap();
        db
    }

    fn poll(sql: &str) -> PollingQuery {
        PollingQuery::new(sql.to_string(), vec!["mileage".to_string()])
    }

    #[test]
    fn index_answers_definite_negative() {
        let db = db();
        let mut info = InfoManager::new();
        info.maintain_index(&db, "Mileage", "model").unwrap();
        assert_eq!(
            info.try_answer(&poll(
                "SELECT COUNT(*) FROM Mileage WHERE 'Edsel' = Mileage.model"
            )),
            Some(false)
        );
    }

    #[test]
    fn index_answers_definite_positive_when_sole_condition() {
        let db = db();
        let mut info = InfoManager::new();
        info.maintain_index(&db, "Mileage", "model").unwrap();
        assert_eq!(
            info.try_answer(&poll(
                "SELECT COUNT(*) FROM Mileage WHERE Mileage.model = 'Avalon'"
            )),
            Some(true)
        );
    }

    #[test]
    fn index_declines_with_extra_conjuncts_when_value_present() {
        let db = db();
        let mut info = InfoManager::new();
        info.maintain_index(&db, "Mileage", "model").unwrap();
        // Present value + extra condition: the index alone cannot decide.
        assert_eq!(
            info.try_answer(&poll(
                "SELECT COUNT(*) FROM Mileage WHERE Mileage.model = 'Avalon' AND Mileage.EPA > 100"
            )),
            None
        );
        // Absent value: definite no regardless of extra conjuncts.
        assert_eq!(
            info.try_answer(&poll(
                "SELECT COUNT(*) FROM Mileage WHERE Mileage.model = 'Edsel' AND Mileage.EPA > 1"
            )),
            Some(false)
        );
    }

    #[test]
    fn index_tracks_deltas_as_multiset() {
        let db = db();
        let mut info = InfoManager::new();
        info.maintain_index(&db, "Mileage", "model").unwrap();
        // Delete one of two Civic rows: value must remain present.
        let batch = vec![LogRecord {
            lsn: 0,
            table: "Mileage".into(),
            op: LogOp::Delete(vec!["Civic".into(), Value::Float(36.5)]),
        }];
        info.apply_deltas(&DeltaSet::from_records(&batch));
        assert_eq!(
            info.try_answer(&poll(
                "SELECT COUNT(*) FROM Mileage WHERE Mileage.model = 'Civic'"
            )),
            Some(true)
        );
        // Delete the second: now absent.
        let batch = vec![LogRecord {
            lsn: 1,
            table: "Mileage".into(),
            op: LogOp::Delete(vec!["Civic".into(), Value::Float(37.0)]),
        }];
        info.apply_deltas(&DeltaSet::from_records(&batch));
        assert_eq!(
            info.try_answer(&poll(
                "SELECT COUNT(*) FROM Mileage WHERE Mileage.model = 'Civic'"
            )),
            Some(false)
        );
    }

    #[test]
    fn runner_dedups_identical_polls() {
        let database = db();
        let info = InfoManager::new();
        let deltas = DeltaSet::default();
        let runner = PollRunner::new(&info, &deltas);
        let p = poll("SELECT COUNT(*) FROM Mileage WHERE Mileage.model = 'Avalon'");
        assert!(runner.is_affected(&database, &p, false).unwrap());
        assert!(runner.is_affected(&database, &p, false).unwrap());
        assert_eq!(runner.stats().issued, 1);
        assert_eq!(runner.stats().from_cache, 1);
    }

    #[test]
    fn concurrent_identical_polls_issue_exactly_once() {
        let database = db();
        let info = InfoManager::new();
        let deltas = DeltaSet::default();
        // A visible RTT widens the race window: without the stripe lock held
        // across execution, several threads would all miss the cache and
        // issue the same poll.
        let runner =
            PollRunner::with_rtt(&info, &deltas, std::time::Duration::from_millis(2));
        let p = poll("SELECT COUNT(*) FROM Mileage WHERE Mileage.EPA > 1");
        crossbeam::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| assert!(runner.is_affected(&database, &p, false).unwrap()));
            }
        })
        .unwrap();
        assert_eq!(runner.stats().issued, 1, "exactly-once across threads");
        assert_eq!(runner.stats().from_cache, 7);
    }

    #[test]
    fn delete_guard_catches_same_batch_partner_deletion() {
        let mut database = db();
        // Delete the Avalon row and analyze a Car-side delete whose partner
        // it was: the post-state poll finds nothing, the guard must fire.
        database
            .execute("DELETE FROM Mileage WHERE model = 'Avalon'")
            .unwrap();
        let recs: Vec<LogRecord> = database.update_log().pull_since(0).to_vec();
        let deltas = DeltaSet::from_records(&recs);
        let info = InfoManager::new();
        let runner = PollRunner::new(&info, &deltas);
        let p = poll("SELECT COUNT(*) FROM Mileage WHERE 'Avalon' = Mileage.model");
        assert!(
            runner.is_affected(&database, &p, true).unwrap(),
            "deleted partner must still count for a deleted tuple"
        );
        assert_eq!(runner.stats().delete_guard_hits, 1);
        // For an *inserted* tuple the guard must not fire.
        let runner2 = PollRunner::new(&info, &deltas);
        assert!(!runner2.is_affected(&database, &p, false).unwrap());
    }

    #[test]
    fn decide_reports_the_answer_source() {
        let database = db();
        let mut info = InfoManager::new();
        info.maintain_index(&database, "Mileage", "model").unwrap();
        let deltas = DeltaSet::default();
        let runner = PollRunner::new(&info, &deltas);
        // Index answers the sole-equality poll without touching the DBMS.
        let p = poll("SELECT COUNT(*) FROM Mileage WHERE Mileage.model = 'Avalon'");
        assert_eq!(
            runner.decide(&database, &p, false).unwrap(),
            Some(PollAnswer::FromIndex)
        );
        assert_eq!(
            runner.decide(&database, &p, false).unwrap(),
            Some(PollAnswer::FromCache)
        );
        // Undecidable by index → issued against the DBMS.
        let q = poll("SELECT COUNT(*) FROM Mileage WHERE Mileage.EPA > 1");
        assert_eq!(
            runner.decide(&database, &q, false).unwrap(),
            Some(PollAnswer::Issued)
        );
        assert_eq!(runner.stats().issued, 1);
    }

    #[test]
    fn guard_negative_when_deleted_rows_do_not_match() {
        let mut database = db();
        database
            .execute("DELETE FROM Mileage WHERE model = 'Civic'")
            .unwrap();
        let recs: Vec<LogRecord> = database.update_log().pull_since(0).to_vec();
        let deltas = DeltaSet::from_records(&recs);
        let info = InfoManager::new();
        let runner = PollRunner::new(&info, &deltas);
        let p = poll("SELECT COUNT(*) FROM Mileage WHERE 'Edsel' = Mileage.model");
        assert!(!runner.is_affected(&database, &p, true).unwrap());
    }

    #[test]
    fn retry_clears_transient_fault_and_counts() {
        use cacheportal_db::{FaultPlan, FaultSpec};
        let database = db();
        let info = InfoManager::new();
        let deltas = DeltaSet::default();
        let p = poll("SELECT COUNT(*) FROM Mileage WHERE Mileage.EPA > 1");
        // Find a seed where this poll faults on attempt 0 but clears on
        // attempt 1 — a transient fault by construction.
        let seed = (0..10_000u64)
            .find(|&s| {
                let probe = FaultPlan::new(FaultSpec {
                    seed: s,
                    poll_error: 0.5,
                    ..FaultSpec::default()
                });
                probe.poll_fault(p.key, 0).is_some() && probe.poll_fault(p.key, 1).is_none()
            })
            .expect("a transient seed exists");
        let spec = FaultSpec {
            seed,
            poll_error: 0.5,
            ..FaultSpec::default()
        };
        // Without a retry allowance the poll permanently fails…
        let runner =
            PollRunner::new(&info, &deltas).with_fault_plan(FaultPlan::new(spec.clone()));
        assert!(runner.decide(&database, &p, false).is_err());
        assert_eq!(runner.stats().faulted, 1);
        assert_eq!(runner.stats().retries, 0);
        // …with one retry it recovers, and the accounting shows the failed
        // attempt, the retry, and the eventually-issued poll.
        let runner = PollRunner::new(&info, &deltas)
            .with_fault_plan(FaultPlan::new(spec))
            .with_retry(1, Duration::ZERO);
        assert_eq!(
            runner.decide(&database, &p, false).unwrap(),
            Some(PollAnswer::Issued)
        );
        let s = runner.stats();
        assert_eq!((s.faulted, s.retries, s.issued), (1, 1, 1));
    }

    #[test]
    fn maintain_index_is_idempotent_and_sized() {
        let db = db();
        let mut info = InfoManager::new();
        info.maintain_index(&db, "Mileage", "model").unwrap();
        info.maintain_index(&db, "mileage", "MODEL").unwrap();
        assert_eq!(info.indexes().len(), 1);
        assert_eq!(info.indexes()[0].distinct_values(), 2); // Avalon, Civic
    }
}

//! Query-type registration and discovery (§4.1.1–§4.1.2), and the
//! type/instance/page registry.
//!
//! A **query type** is a parameterized SELECT (`$1…$n` markers). A **query
//! instance** is a type plus a bound parameter vector. The registry keeps,
//! per instance, the set of pages whose content depends on it — the
//! invalidator-side view of the QI/URL map, grouped so that updates are
//! processed per *type* rather than per instance (§4.1.2's grouping).

use cacheportal_db::sql::ast::{Expr, Select, Statement, TableRef};
use cacheportal_db::sql::parser::parse;
use cacheportal_db::sql::rewrite::parameterize;
use cacheportal_db::{Database, DbResult, Value};
use cacheportal_web::PageKey;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

use crate::delta::DeltaSet;
use crate::predicate_index::{Probe, TypeIndex};

/// Identifier of a registered query type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryTypeId(pub u32);

/// Per-type bookkeeping statistics (§4.1.1's self-tuning inputs).
#[derive(Debug, Default, Clone, Copy)]
pub struct TypeStats {
    /// Instances registered under this type.
    pub instances: u64,
    /// Query-instance registrations observed (frequency proxy).
    pub registrations: u64,
    /// Instance invalidations caused by updates.
    pub invalidations: u64,
    /// Polling queries issued on behalf of this type.
    pub polls: u64,
    /// Update batches that touched this type's tables.
    pub update_batches: u64,
    /// Total wall-clock microseconds spent analyzing this type.
    pub total_analysis_micros: u64,
    /// Worst single-batch analysis time for this type (µs).
    pub max_analysis_micros: u64,
}

impl TypeStats {
    /// Ratio of instance-invalidations per touching update batch (the
    /// paper's "invalidation ratio").
    pub fn invalidation_ratio(&self) -> f64 {
        if self.update_batches == 0 {
            0.0
        } else {
            self.invalidations as f64 / self.update_batches as f64
        }
    }

    /// Average analysis time per touching batch (µs) — the paper's
    /// "average invalidation time" statistic (§4.1.1).
    pub fn avg_analysis_micros(&self) -> f64 {
        if self.update_batches == 0 {
            0.0
        } else {
            self.total_analysis_micros as f64 / self.update_batches as f64
        }
    }

    /// Record one batch's analysis duration.
    pub fn record_analysis(&mut self, micros: u64) {
        self.total_analysis_micros += micros;
        self.max_analysis_micros = self.max_analysis_micros.max(micros);
    }
}

/// Structural shape of a query type — which invalidation rule family
/// applies (ROADMAP open item 3). Classified once at type-intern time from
/// the parameterized template, so every instance of a type shares its
/// shape. Precedence: Aggregate > TopK > LikeSeek > InList > Conjunctive
/// (a GROUP BY with ORDER BY + LIMIT is judged by the aggregate rule,
/// whose "whole result unchanged" argument subsumes the ordered prefix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryShape {
    /// Plain select-project-join — the paper's original rule family.
    #[default]
    Conjunctive,
    /// `ORDER BY … LIMIT k`: affected only if an update can enter or
    /// displace the top-k (judged against the tracked boundary value).
    TopK,
    /// GROUP BY / aggregate projection: affected only if the delta
    /// changes some group's aggregate values.
    Aggregate,
    /// WHERE contains a `LIKE` conjunct: conjunctive verdicts, but the
    /// predicate index can seek on the pattern's literal prefix.
    LikeSeek,
    /// WHERE contains an `IN`-list conjunct: conjunctive verdicts, but
    /// the predicate index expands the list into equality probes.
    InList,
}

impl QueryShape {
    /// Stable kebab-ish name used in metrics, scorecards, and bench
    /// records.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryShape::Conjunctive => "conjunctive",
            QueryShape::TopK => "topk",
            QueryShape::Aggregate => "aggregate",
            QueryShape::LikeSeek => "like",
            QueryShape::InList => "in",
        }
    }

    /// Classify a parameterized template.
    pub fn classify(select: &Select) -> QueryShape {
        let is_aggregate = !select.group_by.is_empty()
            || select.items.iter().any(|i| match i {
                cacheportal_db::sql::ast::SelectItem::Expr { expr, .. } => expr.has_aggregate(),
                _ => false,
            });
        if is_aggregate {
            return QueryShape::Aggregate;
        }
        if select.limit.is_some() && !select.order_by.is_empty() {
            return QueryShape::TopK;
        }
        let mut has_like = false;
        let mut has_in = false;
        if let Some(w) = &select.where_clause {
            w.visit(&mut |e| match e {
                Expr::Like { .. } => has_like = true,
                Expr::InList { .. } => has_in = true,
                _ => {}
            });
        }
        if has_like {
            QueryShape::LikeSeek
        } else if has_in {
            QueryShape::InList
        } else {
            QueryShape::Conjunctive
        }
    }
}

/// A registered query type.
#[derive(Debug, Clone)]
pub struct QueryType {
    /// Type identifier.
    pub id: QueryTypeId,
    /// Parameterized SELECT.
    pub select: Select,
    /// Canonical SQL text of `select` (registry key).
    pub sql: String,
    /// Number of `$n` parameters.
    pub n_params: usize,
    /// Lower-cased base-table names read by the query (deduped).
    pub tables: Vec<String>,
    /// Self-tuning statistics.
    pub stats: TypeStats,
    /// When false, pages depending on this type must not be cached
    /// (policy-discovery outcome, §4.1.4).
    pub cacheable: bool,
    /// Structural shape (decides which verdict rule family applies).
    pub shape: QueryShape,
}

impl QueryType {
    /// FROM-list occurrences (a table may appear several times).
    pub fn from_refs(&self) -> &[TableRef] {
        &self.select.from
    }
}

/// One instance's data: the pages depending on it.
#[derive(Debug, Default, Clone)]
pub struct InstanceData {
    /// Pages whose content depends on this instance.
    pub pages: HashSet<PageKey>,
    /// Slot of this instance in its type's predicate index.
    pub(crate) slot: u32,
    /// TopK instances only: first-order-key value of the k-th result row
    /// as of the last boundary poll (`None` = unknown or result not full —
    /// the shape rule then falls back to the conjunctive decision).
    /// Initialized unknown at registration, refreshed by the sync-point
    /// boundary pre-pass whenever the type's tables are touched.
    pub boundary: Option<Value>,
}

/// O(1) snapshot of the predicate-index bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexStats {
    /// Live instances interned across all per-type indexes.
    pub entries: u64,
    /// Cumulative wall-clock microseconds spent maintaining the indexes
    /// (insert on registration, remove on eviction).
    pub maintenance_micros: u64,
}

/// The registry of types and instances.
#[derive(Debug, Default)]
pub struct Registry {
    types: Vec<QueryType>,
    by_sql: HashMap<String, QueryTypeId>,
    /// Instance params per type.
    instances: HashMap<QueryTypeId, HashMap<Vec<Value>, InstanceData>>,
    /// Which types read a given (lower-cased) table.
    types_by_table: HashMap<String, Vec<QueryTypeId>>,
    /// Per-type predicate index, parallel to `types`.
    indexes: Vec<TypeIndex>,
    /// Cached Σ instance_count — kept in sync on register/remove so
    /// metrics snapshots stay O(1) at 1M QIs.
    live_instances: usize,
    /// Index maintenance time, accumulated in nanoseconds (per-insert
    /// costs are sub-microsecond; accumulating micros would truncate to 0).
    index_maintenance_nanos: u64,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a query *type* from parameterized SQL (offline registration,
    /// §4.1.1). Idempotent on canonical text.
    pub fn register_type_sql(&mut self, sql: &str) -> DbResult<QueryTypeId> {
        let stmt = parse(sql)?;
        let Statement::Select(sel) = stmt else {
            return Err(cacheportal_db::DbError::Unsupported(
                "query types must be SELECT statements".into(),
            ));
        };
        Ok(self.intern_type(sel))
    }

    fn intern_type(&mut self, select: Select) -> QueryTypeId {
        let sql = Statement::Select(select.clone()).to_sql();
        if let Some(id) = self.by_sql.get(&sql) {
            return *id;
        }
        let id = QueryTypeId(self.types.len() as u32);
        let mut tables: Vec<String> = select
            .from
            .iter()
            .map(|t| t.table.to_ascii_lowercase())
            .collect();
        tables.sort();
        tables.dedup();
        let n_params = {
            let mut n = 0usize;
            if let Some(w) = &select.where_clause {
                for p in w.params() {
                    n = n.max(p);
                }
            }
            n
        };
        for t in &tables {
            self.types_by_table.entry(t.clone()).or_default().push(id);
        }
        self.by_sql.insert(sql.clone(), id);
        self.indexes.push(TypeIndex::plan(&select));
        let shape = QueryShape::classify(&select);
        self.types.push(QueryType {
            id,
            select,
            sql,
            n_params,
            tables,
            stats: TypeStats::default(),
            cacheable: true,
            shape,
        });
        self.instances.entry(id).or_default();
        id
    }

    /// Register a bound query instance discovered in the QI/URL map
    /// (online discovery, §4.1.2): parameterize → intern type → record the
    /// instance and its dependent page.
    pub fn register_instance(
        &mut self,
        bound_sql: &str,
        page: PageKey,
    ) -> DbResult<(QueryTypeId, Vec<Value>)> {
        let stmt = parse(bound_sql)?;
        let Statement::Select(sel) = stmt else {
            return Err(cacheportal_db::DbError::Unsupported(
                "query instances must be SELECT statements".into(),
            ));
        };
        let (template, params) = parameterize(&sel);
        let id = self.intern_type(template);
        let ty = &mut self.types[id.0 as usize];
        ty.stats.registrations += 1;
        let tix = &mut self.indexes[id.0 as usize];
        let by_params = self.instances.entry(id).or_default();
        match by_params.entry(params.clone()) {
            Entry::Occupied(mut e) => {
                e.get_mut().pages.insert(page);
            }
            Entry::Vacant(e) => {
                ty.stats.instances += 1;
                self.live_instances += 1;
                let t0 = Instant::now();
                let slot = tix.insert(&params);
                self.index_maintenance_nanos += t0.elapsed().as_nanos() as u64;
                let mut pages = HashSet::new();
                pages.insert(page);
                e.insert(InstanceData { pages, slot, boundary: None });
            }
        }
        Ok((id, params))
    }

    /// Type by id.
    pub fn get(&self, id: QueryTypeId) -> &QueryType {
        &self.types[id.0 as usize]
    }

    /// Mutable type access by id.
    pub fn get_mut(&mut self, id: QueryTypeId) -> &mut QueryType {
        &mut self.types[id.0 as usize]
    }

    /// All registered types.
    pub fn types(&self) -> &[QueryType] {
        &self.types
    }

    /// Types whose FROM list includes `table` (lower-cased lookup).
    pub fn types_reading(&self, table: &str) -> &[QueryTypeId] {
        self.types_by_table
            .get(&table.to_ascii_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Instances (param vectors + data) of one type.
    pub fn instances_of(&self, id: QueryTypeId) -> impl Iterator<Item = (&Vec<Value>, &InstanceData)> {
        self.instances
            .get(&id)
            .into_iter()
            .flat_map(|m| m.iter())
    }

    /// Number of registered instances of one type.
    pub fn instance_count(&self, id: QueryTypeId) -> usize {
        self.instances.get(&id).map(HashMap::len).unwrap_or(0)
    }

    /// Instances across all types. O(1): returns the cached counter
    /// maintained on register/remove (debug builds cross-check it against
    /// the recomputed sum).
    pub fn total_instances(&self) -> usize {
        debug_assert_eq!(
            self.live_instances,
            self.instances.values().map(HashMap::len).sum::<usize>(),
            "cached live-instance counter diverged from the registry"
        );
        self.live_instances
    }

    /// Probe one type's predicate index: map this sync interval's delta
    /// tuples to the instances they can possibly affect, or `Probe::Scan`
    /// when the index cannot narrow the type (residual occurrence touched,
    /// schema drift, missing FROM table).
    pub fn probe_index(&self, id: QueryTypeId, deltas: &DeltaSet, db: &Database) -> Probe {
        let ty = &self.types[id.0 as usize];
        self.indexes[id.0 as usize].probe(&ty.select.from, deltas, db)
    }

    /// Whether a type's index is all-residual (probing it always scans).
    pub fn index_fully_residual(&self, id: QueryTypeId) -> bool {
        self.indexes[id.0 as usize].is_fully_residual()
    }

    /// O(1) predicate-index bookkeeping snapshot.
    pub fn index_stats(&self) -> IndexStats {
        IndexStats {
            entries: self.live_instances as u64,
            maintenance_micros: self.index_maintenance_nanos / 1_000,
        }
    }

    /// Pages depending on a specific instance.
    pub fn pages_of(&self, id: QueryTypeId, params: &[Value]) -> Option<&InstanceData> {
        self.instances.get(&id).and_then(|m| m.get(params))
    }

    /// Store a TopK instance's refreshed boundary value (`None` = the
    /// boundary poll failed or the result is not full; the shape rule then
    /// degrades to the conjunctive decision for this instance).
    pub fn set_boundary(&mut self, id: QueryTypeId, params: &[Value], boundary: Option<Value>) {
        if let Some(data) = self.instances.get_mut(&id).and_then(|m| m.get_mut(params)) {
            data.boundary = boundary;
        }
    }

    /// Query types with at least one instance feeding `page`, sorted by id
    /// (deterministic). The reverse of `pages_of`: it answers "which cached
    /// query results does this URL depend on?", which the scorecard board
    /// uses to attribute request-side hit/miss/render-cost tallies. A full
    /// instance scan — call at sync-point cadence, not per request.
    pub fn types_of_page(&self, page: &PageKey) -> Vec<QueryTypeId> {
        let mut out: Vec<QueryTypeId> = self
            .instances
            .iter()
            .filter(|(_, by_params)| by_params.values().any(|d| d.pages.contains(page)))
            .map(|(id, _)| *id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Remove page associations (pages ejected and no longer tracked);
    /// instances left with no pages are dropped. Returns dropped instances.
    pub fn remove_pages(&mut self, pages: &HashSet<PageKey>) -> usize {
        let mut dropped = 0;
        let mut index_nanos = 0u64;
        for (id, by_params) in self.instances.iter_mut() {
            let tix = &mut self.indexes[id.0 as usize];
            by_params.retain(|params, data| {
                data.pages.retain(|p| !pages.contains(p));
                if data.pages.is_empty() {
                    let t0 = Instant::now();
                    tix.remove(data.slot, params);
                    index_nanos += t0.elapsed().as_nanos() as u64;
                    dropped += 1;
                    false
                } else {
                    true
                }
            });
        }
        self.live_instances -= dropped;
        self.index_maintenance_nanos += index_nanos;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_groups_instances_under_one_type() {
        let mut reg = Registry::new();
        let (t1, p1) = reg
            .register_instance(
                "SELECT * FROM Car WHERE price < 20000",
                PageKey::raw("p1"),
            )
            .unwrap();
        let (t2, p2) = reg
            .register_instance(
                "SELECT * FROM Car WHERE price < 30000",
                PageKey::raw("p2"),
            )
            .unwrap();
        assert_eq!(t1, t2);
        assert_ne!(p1, p2);
        assert_eq!(reg.types().len(), 1);
        assert_eq!(reg.instance_count(t1), 2);
        assert_eq!(reg.get(t1).n_params, 1);
    }

    #[test]
    fn same_instance_twice_adds_pages_not_instances() {
        let mut reg = Registry::new();
        let sql = "SELECT * FROM Car WHERE price < 20000";
        reg.register_instance(sql, PageKey::raw("p1")).unwrap();
        let (id, params) = reg.register_instance(sql, PageKey::raw("p2")).unwrap();
        assert_eq!(reg.instance_count(id), 1);
        assert_eq!(reg.pages_of(id, &params).unwrap().pages.len(), 2);
        assert_eq!(reg.get(id).stats.registrations, 2);
    }

    #[test]
    fn offline_type_registration_matches_discovery() {
        let mut reg = Registry::new();
        let offline = reg
            .register_type_sql("SELECT * FROM Car WHERE price < $1")
            .unwrap();
        let (discovered, _) = reg
            .register_instance("SELECT * FROM Car WHERE price < 42", PageKey::raw("p"))
            .unwrap();
        assert_eq!(offline, discovered);
    }

    #[test]
    fn types_by_table_index() {
        let mut reg = Registry::new();
        reg.register_instance(
            "SELECT Car.maker FROM Car, Mileage WHERE Car.model = Mileage.model",
            PageKey::raw("p"),
        )
        .unwrap();
        reg.register_instance("SELECT EPA FROM Mileage", PageKey::raw("q"))
            .unwrap();
        assert_eq!(reg.types_reading("car").len(), 1);
        assert_eq!(reg.types_reading("MILEAGE").len(), 2);
        assert_eq!(reg.types_reading("other").len(), 0);
    }

    #[test]
    fn remove_pages_drops_empty_instances() {
        let mut reg = Registry::new();
        let (id, params) = reg
            .register_instance("SELECT * FROM Car WHERE price < 1", PageKey::raw("p1"))
            .unwrap();
        let mut gone = HashSet::new();
        gone.insert(PageKey::raw("p1"));
        assert_eq!(reg.remove_pages(&gone), 1);
        assert!(reg.pages_of(id, &params).is_none());
        assert_eq!(reg.instance_count(id), 0);
    }

    #[test]
    fn types_of_page_is_sorted_reverse_lookup() {
        let mut reg = Registry::new();
        let (t_car, _) = reg
            .register_instance("SELECT * FROM Car WHERE price < 20000", PageKey::raw("p1"))
            .unwrap();
        let (t_epa, _) = reg
            .register_instance("SELECT EPA FROM Mileage", PageKey::raw("p1"))
            .unwrap();
        reg.register_instance("SELECT * FROM Car WHERE price < 30000", PageKey::raw("p2"))
            .unwrap();

        let p1_types = reg.types_of_page(&PageKey::raw("p1"));
        assert_eq!(p1_types, vec![t_car.min(t_epa), t_car.max(t_epa)]);
        assert_eq!(reg.types_of_page(&PageKey::raw("p2")), vec![t_car]);
        assert!(reg.types_of_page(&PageKey::raw("p3")).is_empty());

        // Ejecting p1 removes it from the reverse lookup.
        let mut gone = HashSet::new();
        gone.insert(PageKey::raw("p1"));
        reg.remove_pages(&gone);
        assert!(reg.types_of_page(&PageKey::raw("p1")).is_empty());
        assert_eq!(reg.types_of_page(&PageKey::raw("p2")), vec![t_car]);
    }

    #[test]
    fn shapes_classify_by_template_structure() {
        let mut reg = Registry::new();
        let cases = [
            ("SELECT * FROM Car WHERE price < 20000", QueryShape::Conjunctive),
            (
                "SELECT model FROM Car WHERE maker = 'T' ORDER BY price DESC LIMIT 3",
                QueryShape::TopK,
            ),
            (
                "SELECT maker, COUNT(*) FROM Car GROUP BY maker ORDER BY maker",
                QueryShape::Aggregate,
            ),
            // Aggregate wins over TopK when both apply.
            (
                "SELECT maker, COUNT(*) FROM Car GROUP BY maker ORDER BY maker LIMIT 2",
                QueryShape::Aggregate,
            ),
            ("SELECT * FROM Car WHERE model LIKE 'Civ%'", QueryShape::LikeSeek),
            ("SELECT * FROM Car WHERE maker IN ('T', 'H')", QueryShape::InList),
            // LIKE wins over IN.
            (
                "SELECT * FROM Car WHERE model LIKE 'C%' AND maker IN ('T')",
                QueryShape::LikeSeek,
            ),
            // LIMIT without ORDER BY stays conjunctive (no boundary rule).
            ("SELECT * FROM Car LIMIT 5", QueryShape::Conjunctive),
        ];
        for (sql, want) in cases {
            let (id, _) = reg.register_instance(sql, PageKey::raw("p")).unwrap();
            assert_eq!(reg.get(id).shape, want, "shape of {sql}");
        }
    }

    #[test]
    fn boundary_is_stored_per_instance() {
        let mut reg = Registry::new();
        let (id, params) = reg
            .register_instance(
                "SELECT model FROM Car WHERE maker = 'T' ORDER BY price DESC LIMIT 3",
                PageKey::raw("p"),
            )
            .unwrap();
        assert_eq!(reg.pages_of(id, &params).unwrap().boundary, None);
        reg.set_boundary(id, &params, Some(Value::Int(42)));
        assert_eq!(
            reg.pages_of(id, &params).unwrap().boundary,
            Some(Value::Int(42))
        );
        // Unknown instance: silently ignored (instance may have been evicted
        // between the candidate walk and the refresh).
        reg.set_boundary(id, &[Value::Int(999)], Some(Value::Int(1)));
    }

    #[test]
    fn non_select_rejected() {
        let mut reg = Registry::new();
        assert!(reg.register_type_sql("DELETE FROM Car").is_err());
        assert!(reg
            .register_instance("INSERT INTO Car VALUES (1)", PageKey::raw("p"))
            .is_err());
    }
}

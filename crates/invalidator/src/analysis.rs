//! The invalidation decision algorithm (paper Example 4.1, §4.2.2).
//!
//! Given a bound query instance and one delta tuple of one FROM-list
//! occurrence, decide whether the instance's result can be affected:
//!
//! 1. Substitute the tuple's values for that occurrence's columns throughout
//!    the WHERE clause.
//! 2. Conjuncts left with **no** column references are decided locally; if
//!    any is false, the tuple cannot affect the result (*no impact*, no DB
//!    access needed — the `(Mitsubishi, Eclipse, 20000)` case).
//! 3. If conjuncts referencing the **other** tables remain, build the
//!    *residual polling query* over those tables (the `PollQuery` of the
//!    paper); a non-empty result means the instance is affected.
//! 4. With no other tables (single-table query) the decision is immediate.
//!
//! Soundness note (beyond the paper): when several correlated deletes land
//! in one synchronization batch, a residual poll against the *post-batch*
//! state can miss join partners that were deleted in the same batch. The
//! orchestrator therefore treats `poll == 0` as *affected* whenever any
//! other table referenced by the residual had deletions this batch (see
//! [`PollingQuery::other_tables`]). This only over-invalidates.

use cacheportal_db::error::{DbError, DbResult};
use cacheportal_db::eval::{bind, BindContext};
use cacheportal_db::schema::SchemaRef;
use cacheportal_db::sql::ast::{Expr, Select, SelectItem, Statement, TableRef};
use cacheportal_db::table::Row;

/// Source of table schemas (the invalidator's view of the DB catalog).
pub trait SchemaProvider {
    /// Schema of `table`, if it exists.
    fn schema_of(&self, table: &str) -> Option<SchemaRef>;
}

impl SchemaProvider for cacheportal_db::table::Catalog {
    fn schema_of(&self, table: &str) -> Option<SchemaRef> {
        self.get(table).map(|t| t.schema().clone())
    }
}

impl SchemaProvider for cacheportal_db::Database {
    fn schema_of(&self, table: &str) -> Option<SchemaRef> {
        self.catalog().schema_of(table)
    }
}

/// A residual polling query awaiting execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PollingQuery {
    /// `SELECT COUNT(*) FROM <others> WHERE <residual>` — non-empty ⇔
    /// the instance is affected.
    pub sql: String,
    /// Lower-cased names of the tables the poll reads (for the correlated-
    /// delete guard and for maintained-index answering).
    pub other_tables: Vec<String>,
    /// Structural dedup key: a 64-bit hash of the canonical poll SQL,
    /// computed once at construction. The per-sync-point dedup cache keys on
    /// this instead of the SQL string, so cache hits neither clone nor
    /// re-hash the full string. The SQL is built deterministically from the
    /// residual, so equal keys ⇔ equal polls (modulo a vanishing 2⁻⁶⁴
    /// collision chance, which only costs a skipped poll — over-invalidation
    /// is impossible because cached answers are only reused affirmatively
    /// per identical SQL text in practice).
    pub key: u64,
}

impl PollingQuery {
    /// Build a poll, computing its structural dedup key. `DefaultHasher`
    /// with its fixed initial state keeps keys stable across threads and
    /// runs, which the deterministic shard merge relies on.
    pub fn new(sql: String, other_tables: Vec<String>) -> Self {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        sql.hash(&mut h);
        let key = h.finish();
        PollingQuery {
            sql,
            other_tables,
            key,
        }
    }
}

/// Decision for one (instance, occurrence, tuple).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TupleImpact {
    /// The tuple cannot affect this instance's result.
    NoImpact,
    /// The instance is affected; no polling required.
    Affected,
    /// Run the polling query to decide.
    NeedsPoll(PollingQuery),
}

/// One WHERE conjunct, compiled once per instance (not once per tuple):
/// which FROM occurrences it references, whether it has column references
/// at all, and — for constant conjuncts — its pre-evaluated truth value.
/// `tuple_residual` consults this to skip the transform walk entirely for
/// conjuncts that cannot be changed by substituting a given occurrence.
struct CompiledConjunct {
    expr: Expr,
    /// Bit i set ⇔ the conjunct references FROM occurrence i. `u64::MAX`
    /// is the fallback for conjuncts we could not fully classify (a column
    /// that fails to resolve, or an occurrence index ≥ 64): those take the
    /// original per-tuple path so errors surface exactly as before.
    occ_mask: u64,
    /// Any column reference at all (false ⇒ the conjunct is constant).
    has_columns: bool,
    /// Constant conjunct that evaluates to not-true: the instance can never
    /// be affected by any tuple.
    const_false: bool,
}

fn compile_conjunct(e: &Expr, ctx: &BindContext) -> CompiledConjunct {
    let cols = e.columns();
    let has_columns = !cols.is_empty();
    let mut mask = 0u64;
    let mut fallback = false;
    for c in &cols {
        match ctx.resolve(c) {
            Ok((t, _)) if t < 64 => mask |= 1 << t,
            _ => fallback = true,
        }
    }
    let const_false = if has_columns {
        false
    } else {
        match bind(e, &BindContext::new(vec![]), &[]) {
            Ok(b) => !b.eval_predicate(&[]),
            Err(_) => {
                fallback = true;
                false
            }
        }
    };
    CompiledConjunct {
        expr: e.clone(),
        occ_mask: if fallback { u64::MAX } else { mask },
        has_columns,
        const_false,
    }
}

/// Pre-resolved information about one query instance, reused across all
/// delta tuples of a batch.
pub struct BoundInstance {
    /// Fully bound SELECT (params substituted).
    pub select: Select,
    /// Binding context of the FROM list.
    pub ctx: BindContext,
    /// WHERE conjuncts with per-conjunct occurrence masks, compiled once.
    conjuncts: Vec<CompiledConjunct>,
}

impl BoundInstance {
    /// Resolve the FROM list of a bound SELECT against schemas.
    pub fn new(select: Select, schemas: &dyn SchemaProvider) -> DbResult<BoundInstance> {
        let mut tables = Vec::with_capacity(select.from.len());
        for tref in &select.from {
            let schema = schemas
                .schema_of(&tref.table)
                .ok_or_else(|| DbError::UnknownTable(tref.table.clone()))?;
            tables.push((tref.binding().to_string(), schema));
        }
        let ctx = BindContext::new(tables);
        let conjuncts = match &select.where_clause {
            Some(w) => w
                .conjuncts()
                .into_iter()
                .map(|c| compile_conjunct(c, &ctx))
                .collect(),
            None => Vec::new(),
        };
        Ok(BoundInstance {
            select,
            ctx,
            conjuncts,
        })
    }

    /// Occurrence indexes of `table` (lower-cased match) in the FROM list.
    pub fn occurrences_of(&self, table: &str) -> Vec<usize> {
        self.select
            .from
            .iter()
            .enumerate()
            .filter(|(_, t)| t.table.eq_ignore_ascii_case(table))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Analyze one delta tuple against one occurrence of its table.
pub fn analyze_tuple(
    inst: &BoundInstance,
    occurrence: usize,
    tuple: &Row,
) -> DbResult<TupleImpact> {
    match tuple_residual(inst, occurrence, tuple)? {
        None => Ok(TupleImpact::NoImpact),
        Some(residual) if inst.select.from.len() == 1 => {
            debug_assert!(residual.is_empty(), "single-table residual impossible");
            Ok(TupleImpact::Affected)
        }
        Some(residual) => Ok(TupleImpact::NeedsPoll(build_poll(
            inst,
            occurrence,
            Expr::conjoin(residual),
        ))),
    }
}

/// Analyze a *batch* of delta tuples against one occurrence at once —
/// §4.2.1's grouped update processing. Tuples failing their local checks
/// are dropped; the survivors' residuals are OR-combined into a single
/// polling query (`(res₁) OR (res₂) OR …`): the instance is affected iff
/// any survivor's residual is satisfiable, so one poll decides the batch.
///
/// `max_or_terms` chunks pathological batches; each chunk yields one poll.
/// Returns the per-batch decision plus how many tuples survived locally.
pub fn analyze_tuple_batch(
    inst: &BoundInstance,
    occurrence: usize,
    tuples: &[&Row],
    max_or_terms: usize,
) -> DbResult<(BatchImpact, usize)> {
    debug_assert!(max_or_terms > 0);
    let mut residuals: Vec<Expr> = Vec::new();
    let mut survivors = 0usize;
    for tuple in tuples {
        match tuple_residual(inst, occurrence, tuple)? {
            None => continue,
            Some(residual) => {
                survivors += 1;
                if inst.select.from.len() == 1 {
                    return Ok((BatchImpact::Affected, survivors));
                }
                if residual.is_empty() {
                    // Unconstrained join: other tables' non-emptiness decides;
                    // this dominates any OR.
                    return Ok((
                        BatchImpact::NeedsPolls(vec![build_poll(inst, occurrence, None)]),
                        survivors,
                    ));
                }
                residuals.push(Expr::conjoin(residual).expect("non-empty"));
            }
        }
    }
    if residuals.is_empty() {
        return Ok((
            if survivors > 0 {
                BatchImpact::Affected
            } else {
                BatchImpact::NoImpact
            },
            survivors,
        ));
    }
    let polls = residuals
        .chunks(max_or_terms)
        .map(|chunk| {
            let ored = chunk
                .iter()
                .cloned()
                .reduce(|a, b| Expr::Or(Box::new(a), Box::new(b)))
                .expect("chunk non-empty");
            build_poll(inst, occurrence, Some(ored))
        })
        .collect();
    Ok((BatchImpact::NeedsPolls(polls), survivors))
}

/// Decision for one (instance, occurrence, tuple *batch*).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchImpact {
    /// No tuple in the batch can affect the instance.
    NoImpact,
    /// Affected without polling.
    Affected,
    /// Affected iff any of these polls is non-empty.
    NeedsPolls(Vec<PollingQuery>),
}

/// Local-check + substitution core shared by single and batched analysis:
/// `None` = tuple ruled out locally; `Some(residual conjuncts)` otherwise.
fn tuple_residual(
    inst: &BoundInstance,
    occurrence: usize,
    tuple: &Row,
) -> DbResult<Option<Vec<Expr>>> {
    let ctx = &inst.ctx;
    let bit = if occurrence < 64 { 1u64 << occurrence } else { 0 };
    let mut residual: Vec<Expr> = Vec::new();
    for compiled in &inst.conjuncts {
        if compiled.const_false {
            // A constant-false conjunct rules out every tuple; decided at
            // compile time, no per-tuple work at all.
            return Ok(None);
        }
        let must_walk = occurrence >= 64
            || compiled.occ_mask == u64::MAX
            || (compiled.occ_mask & bit) != 0;
        if !must_walk {
            // Substituting this occurrence cannot change the conjunct:
            // constant-true conjuncts drop out, column-bearing ones pass to
            // the residual verbatim — no transform walk, no re-evaluation.
            if compiled.has_columns {
                residual.push(compiled.expr.clone());
            }
            continue;
        }
        let substituted = substitute_occurrence(&compiled.expr, ctx, occurrence, tuple)?;
        if has_columns(&substituted) {
            residual.push(substituted);
        } else {
            // Fully bound: decide locally with the engine's evaluator
            // (empty context — no columns remain by construction).
            let bound = bind(&substituted, &BindContext::new(vec![]), &[])?;
            if !bound.eval_predicate(&[]) {
                return Ok(None);
            }
        }
    }
    Ok(Some(residual))
}

/// Build `SELECT COUNT(*) FROM <others> WHERE <residual>`.
fn build_poll(inst: &BoundInstance, occurrence: usize, residual: Option<Expr>) -> PollingQuery {
    let others: Vec<&TableRef> = inst
        .select
        .from
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != occurrence)
        .map(|(_, t)| t)
        .collect();
    debug_assert!(!others.is_empty(), "single-table polls never built");
    let poll = Select {
        distinct: false,
        items: vec![SelectItem::Expr {
            expr: Expr::Agg {
                func: cacheportal_db::sql::ast::AggFunc::Count,
                arg: None,
                distinct: false,
            },
            alias: None,
        }],
        from: others.iter().map(|t| (*t).clone()).collect(),
        where_clause: residual,
        group_by: vec![],
        having: None,
        order_by: vec![],
        limit: None,
    };
    let mut other_tables: Vec<String> = others
        .iter()
        .map(|t| t.table.to_ascii_lowercase())
        .collect();
    other_tables.sort();
    other_tables.dedup();
    PollingQuery::new(Statement::Select(poll).to_sql(), other_tables)
}

/// Replace every column of FROM-occurrence `occurrence` with the tuple's
/// value; other columns are left intact (with their qualification).
fn substitute_occurrence(
    e: &Expr,
    ctx: &BindContext,
    occurrence: usize,
    tuple: &Row,
) -> DbResult<Expr> {
    // Resolve first so ambiguity errors surface as errors, not silence.
    let err: std::cell::RefCell<Option<DbError>> = std::cell::RefCell::new(None);
    let out = e.transform(&|node| {
        if let Expr::Column(c) = node {
            match ctx.resolve(c) {
                Ok((t, col)) if t == occurrence => {
                    return Some(Expr::Literal(tuple[col].clone()));
                }
                Ok(_) => {}
                Err(e) => {
                    *err.borrow_mut() = Some(e);
                }
            }
        }
        None
    });
    match err.into_inner() {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Does the expression still reference any column?
fn has_columns(e: &Expr) -> bool {
    !e.columns().is_empty()
}

/// Unresolved column references in the residual, re-qualified against the
/// remaining FROM list, must stay valid. Columns that were *unqualified* and
/// resolved to the removed occurrence have been substituted; unqualified
/// columns resolving elsewhere keep working because binding names are
/// unchanged. This helper is used by tests to assert the invariant.
pub fn residual_is_executable(poll: &PollingQuery, schemas: &dyn SchemaProvider) -> bool {
    let Ok(Statement::Select(sel)) =
        cacheportal_db::sql::parser::parse(&poll.sql)
    else {
        return false;
    };
    BoundInstance::new(sel, schemas).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cacheportal_db::sql::parser::parse_select;
    use cacheportal_db::{Database, Value};

    /// Example 4.1 database: Car(maker, model, price), Mileage(model, EPA).
    fn example_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT)")
            .unwrap();
        db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT)")
            .unwrap();
        db
    }

    fn bound(sql: &str, db: &Database) -> BoundInstance {
        BoundInstance::new(parse_select(sql).unwrap(), db).unwrap()
    }

    const QUERY1: &str = "select Car.maker, Car.model, Car.price, Mileage.EPA \
                          from Car, Mileage \
                          where Car.model = Mileage.model and Car.price < 20000";

    #[test]
    fn eclipse_insert_has_no_impact() {
        // Paper: (Mitsubishi, Eclipse, 20,000) fails Car.price < 20000
        // locally — no polling needed.
        let db = example_db();
        let inst = bound(QUERY1, &db);
        let impact = analyze_tuple(
            &inst,
            0,
            &vec!["Mitsubishi".into(), "Eclipse".into(), Value::Int(20000)],
        )
        .unwrap();
        assert_eq!(impact, TupleImpact::NoImpact);
    }

    #[test]
    fn avalon_insert_needs_paper_poll_query() {
        // Paper: (Toyota, Avalon, 25,000)... the paper's example uses a
        // tuple that *passes* the price check; ours must too, so use 15000.
        let db = example_db();
        let inst = bound(QUERY1, &db);
        let impact = analyze_tuple(
            &inst,
            0,
            &vec!["Toyota".into(), "Avalon".into(), Value::Int(15000)],
        )
        .unwrap();
        let TupleImpact::NeedsPoll(poll) = impact else {
            panic!("expected poll, got {impact:?}");
        };
        // Residual: 'Avalon' = Mileage.model over table Mileage.
        assert_eq!(
            poll.sql,
            "SELECT COUNT(*) FROM Mileage WHERE 'Avalon' = Mileage.model"
        );
        assert_eq!(poll.other_tables, vec!["mileage"]);
        assert!(residual_is_executable(&poll, &db));
    }

    #[test]
    fn mileage_insert_polls_car_side() {
        let db = example_db();
        let inst = bound(QUERY1, &db);
        let impact = analyze_tuple(&inst, 1, &vec!["Avalon".into(), Value::Float(28.0)]).unwrap();
        let TupleImpact::NeedsPoll(poll) = impact else {
            panic!("expected poll")
        };
        assert_eq!(
            poll.sql,
            "SELECT COUNT(*) FROM Car WHERE Car.model = 'Avalon' AND Car.price < 20000"
        );
        assert!(residual_is_executable(&poll, &db));
    }

    #[test]
    fn single_table_decides_without_polling() {
        let db = example_db();
        let inst = bound("SELECT * FROM Car WHERE price < 20000", &db);
        let hit = analyze_tuple(&inst, 0, &vec!["a".into(), "b".into(), Value::Int(10)]).unwrap();
        assert_eq!(hit, TupleImpact::Affected);
        let miss =
            analyze_tuple(&inst, 0, &vec!["a".into(), "b".into(), Value::Int(90000)]).unwrap();
        assert_eq!(miss, TupleImpact::NoImpact);
    }

    #[test]
    fn no_where_clause_single_table_always_affected() {
        let db = example_db();
        let inst = bound("SELECT * FROM Car", &db);
        let impact = analyze_tuple(&inst, 0, &vec!["a".into(), "b".into(), Value::Int(1)]).unwrap();
        assert_eq!(impact, TupleImpact::Affected);
    }

    #[test]
    fn no_where_clause_join_polls_other_table_nonempty() {
        let db = example_db();
        let inst = bound("SELECT Car.maker FROM Car, Mileage", &db);
        let impact = analyze_tuple(&inst, 0, &vec!["a".into(), "b".into(), Value::Int(1)]).unwrap();
        let TupleImpact::NeedsPoll(poll) = impact else {
            panic!()
        };
        assert_eq!(poll.sql, "SELECT COUNT(*) FROM Mileage");
    }

    #[test]
    fn null_in_compared_column_means_no_impact() {
        let db = example_db();
        let inst = bound("SELECT * FROM Car WHERE price < 20000", &db);
        let impact = analyze_tuple(&inst, 0, &vec!["a".into(), "b".into(), Value::Null]).unwrap();
        assert_eq!(impact, TupleImpact::NoImpact, "NULL < 20000 is not true");
    }

    #[test]
    fn aliases_are_preserved_in_polls() {
        let db = example_db();
        let inst = bound(
            "SELECT c.maker FROM Car c, Mileage m WHERE c.model = m.model AND c.price < 5",
            &db,
        );
        let impact = analyze_tuple(&inst, 0, &vec!["T".into(), "X".into(), Value::Int(1)]).unwrap();
        let TupleImpact::NeedsPoll(poll) = impact else {
            panic!()
        };
        assert_eq!(poll.sql, "SELECT COUNT(*) FROM Mileage m WHERE 'X' = m.model");
        assert!(residual_is_executable(&poll, &db));
    }

    #[test]
    fn self_join_occurrences_analyzed_independently() {
        let db = example_db();
        let inst = bound(
            "SELECT a.maker FROM Car a, Car b WHERE a.model = b.model AND a.price < b.price",
            &db,
        );
        assert_eq!(inst.occurrences_of("car"), vec![0, 1]);
        let t = vec!["T".into(), "M".into(), Value::Int(100)];
        let i0 = analyze_tuple(&inst, 0, &t).unwrap();
        let TupleImpact::NeedsPoll(p0) = i0 else { panic!() };
        assert_eq!(
            p0.sql,
            "SELECT COUNT(*) FROM Car b WHERE 'M' = b.model AND 100 < b.price"
        );
        let i1 = analyze_tuple(&inst, 1, &t).unwrap();
        let TupleImpact::NeedsPoll(p1) = i1 else { panic!() };
        assert_eq!(
            p1.sql,
            "SELECT COUNT(*) FROM Car a WHERE a.model = 'M' AND a.price < 100"
        );
    }

    #[test]
    fn or_conjunct_spanning_tables_goes_to_residual() {
        let db = example_db();
        let inst = bound(
            "SELECT Car.maker FROM Car, Mileage \
             WHERE Car.model = Mileage.model AND (Car.price < 10 OR Mileage.EPA > 30)",
            &db,
        );
        // Tuple fails price < 10 but the OR can still hold via EPA.
        let impact =
            analyze_tuple(&inst, 0, &vec!["T".into(), "M".into(), Value::Int(50)]).unwrap();
        let TupleImpact::NeedsPoll(poll) = impact else {
            panic!()
        };
        assert!(poll.sql.contains("(50 < 10 OR Mileage.EPA > 30)"));
    }

    #[test]
    fn scalar_functions_in_predicates_analyze_correctly() {
        let db = example_db();
        let inst = bound("SELECT * FROM Car WHERE UPPER(maker) = 'TOYOTA'", &db);
        let hit =
            analyze_tuple(&inst, 0, &vec!["toyota".into(), "m".into(), Value::Int(1)]).unwrap();
        assert_eq!(hit, TupleImpact::Affected);
        let miss =
            analyze_tuple(&inst, 0, &vec!["honda".into(), "m".into(), Value::Int(1)]).unwrap();
        assert_eq!(miss, TupleImpact::NoImpact);
    }

    #[test]
    fn fully_local_or_decided_without_poll() {
        let db = example_db();
        let inst = bound(
            "SELECT * FROM Car WHERE price < 10 OR maker = 'Toyota'",
            &db,
        );
        let hit =
            analyze_tuple(&inst, 0, &vec!["Toyota".into(), "M".into(), Value::Int(99)]).unwrap();
        assert_eq!(hit, TupleImpact::Affected);
        let miss =
            analyze_tuple(&inst, 0, &vec!["Honda".into(), "M".into(), Value::Int(99)]).unwrap();
        assert_eq!(miss, TupleImpact::NoImpact);
    }
}

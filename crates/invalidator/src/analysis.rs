//! The invalidation decision algorithm (paper Example 4.1, §4.2.2).
//!
//! Given a bound query instance and one delta tuple of one FROM-list
//! occurrence, decide whether the instance's result can be affected:
//!
//! 1. Substitute the tuple's values for that occurrence's columns throughout
//!    the WHERE clause.
//! 2. Conjuncts left with **no** column references are decided locally; if
//!    any is false, the tuple cannot affect the result (*no impact*, no DB
//!    access needed — the `(Mitsubishi, Eclipse, 20000)` case).
//! 3. If conjuncts referencing the **other** tables remain, build the
//!    *residual polling query* over those tables (the `PollQuery` of the
//!    paper); a non-empty result means the instance is affected.
//! 4. With no other tables (single-table query) the decision is immediate.
//!
//! Soundness note (beyond the paper): when several correlated deletes land
//! in one synchronization batch, a residual poll against the *post-batch*
//! state can miss join partners that were deleted in the same batch. The
//! orchestrator therefore treats `poll == 0` as *affected* whenever any
//! other table referenced by the residual had deletions this batch (see
//! [`PollingQuery::other_tables`]). This only over-invalidates.

use cacheportal_db::error::{DbError, DbResult};
use cacheportal_db::eval::{bind, BindContext};
use cacheportal_db::schema::SchemaRef;
use cacheportal_db::sql::ast::{Expr, Select, SelectItem, Statement, TableRef};
use cacheportal_db::table::Row;

/// Source of table schemas (the invalidator's view of the DB catalog).
pub trait SchemaProvider {
    /// Schema of `table`, if it exists.
    fn schema_of(&self, table: &str) -> Option<SchemaRef>;
}

impl SchemaProvider for cacheportal_db::table::Catalog {
    fn schema_of(&self, table: &str) -> Option<SchemaRef> {
        self.get(table).map(|t| t.schema().clone())
    }
}

impl SchemaProvider for cacheportal_db::Database {
    fn schema_of(&self, table: &str) -> Option<SchemaRef> {
        self.catalog().schema_of(table)
    }
}

/// A residual polling query awaiting execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PollingQuery {
    /// `SELECT COUNT(*) FROM <others> WHERE <residual>` — non-empty ⇔
    /// the instance is affected.
    pub sql: String,
    /// Lower-cased names of the tables the poll reads (for the correlated-
    /// delete guard and for maintained-index answering).
    pub other_tables: Vec<String>,
    /// Structural dedup key: a 64-bit hash of the canonical poll SQL,
    /// computed once at construction. The per-sync-point dedup cache keys on
    /// this instead of the SQL string, so cache hits neither clone nor
    /// re-hash the full string. The SQL is built deterministically from the
    /// residual, so equal keys ⇔ equal polls (modulo a vanishing 2⁻⁶⁴
    /// collision chance, which only costs a skipped poll — over-invalidation
    /// is impossible because cached answers are only reused affirmatively
    /// per identical SQL text in practice).
    pub key: u64,
}

impl PollingQuery {
    /// Build a poll, computing its structural dedup key. `DefaultHasher`
    /// with its fixed initial state keeps keys stable across threads and
    /// runs, which the deterministic shard merge relies on.
    pub fn new(sql: String, other_tables: Vec<String>) -> Self {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        sql.hash(&mut h);
        let key = h.finish();
        PollingQuery {
            sql,
            other_tables,
            key,
        }
    }
}

/// Decision for one (instance, occurrence, tuple).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TupleImpact {
    /// The tuple cannot affect this instance's result.
    NoImpact,
    /// The instance is affected; no polling required.
    Affected,
    /// Run the polling query to decide.
    NeedsPoll(PollingQuery),
}

/// One WHERE conjunct, compiled once per instance (not once per tuple):
/// which FROM occurrences it references, whether it has column references
/// at all, and — for constant conjuncts — its pre-evaluated truth value.
/// `tuple_residual` consults this to skip the transform walk entirely for
/// conjuncts that cannot be changed by substituting a given occurrence.
struct CompiledConjunct {
    expr: Expr,
    /// Bit i set ⇔ the conjunct references FROM occurrence i. `u64::MAX`
    /// is the fallback for conjuncts we could not fully classify (a column
    /// that fails to resolve, or an occurrence index ≥ 64): those take the
    /// original per-tuple path so errors surface exactly as before.
    occ_mask: u64,
    /// Any column reference at all (false ⇒ the conjunct is constant).
    has_columns: bool,
    /// Constant conjunct that evaluates to not-true: the instance can never
    /// be affected by any tuple.
    const_false: bool,
}

fn compile_conjunct(e: &Expr, ctx: &BindContext) -> CompiledConjunct {
    let cols = e.columns();
    let has_columns = !cols.is_empty();
    let mut mask = 0u64;
    let mut fallback = false;
    for c in &cols {
        match ctx.resolve(c) {
            Ok((t, _)) if t < 64 => mask |= 1 << t,
            _ => fallback = true,
        }
    }
    let const_false = if has_columns {
        false
    } else {
        match bind(e, &BindContext::new(vec![]), &[]) {
            Ok(b) => !b.eval_predicate(&[]),
            Err(_) => {
                fallback = true;
                false
            }
        }
    };
    CompiledConjunct {
        expr: e.clone(),
        occ_mask: if fallback { u64::MAX } else { mask },
        has_columns,
        const_false,
    }
}

/// Pre-resolved information about one query instance, reused across all
/// delta tuples of a batch.
pub struct BoundInstance {
    /// Fully bound SELECT (params substituted).
    pub select: Select,
    /// Binding context of the FROM list.
    pub ctx: BindContext,
    /// WHERE conjuncts with per-conjunct occurrence masks, compiled once.
    conjuncts: Vec<CompiledConjunct>,
}

impl BoundInstance {
    /// Resolve the FROM list of a bound SELECT against schemas.
    pub fn new(select: Select, schemas: &dyn SchemaProvider) -> DbResult<BoundInstance> {
        let mut tables = Vec::with_capacity(select.from.len());
        for tref in &select.from {
            let schema = schemas
                .schema_of(&tref.table)
                .ok_or_else(|| DbError::UnknownTable(tref.table.clone()))?;
            tables.push((tref.binding().to_string(), schema));
        }
        let ctx = BindContext::new(tables);
        let conjuncts = match &select.where_clause {
            Some(w) => w
                .conjuncts()
                .into_iter()
                .map(|c| compile_conjunct(c, &ctx))
                .collect(),
            None => Vec::new(),
        };
        Ok(BoundInstance {
            select,
            ctx,
            conjuncts,
        })
    }

    /// Occurrence indexes of `table` (lower-cased match) in the FROM list.
    pub fn occurrences_of(&self, table: &str) -> Vec<usize> {
        self.select
            .from
            .iter()
            .enumerate()
            .filter(|(_, t)| t.table.eq_ignore_ascii_case(table))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Analyze one delta tuple against one occurrence of its table.
pub fn analyze_tuple(
    inst: &BoundInstance,
    occurrence: usize,
    tuple: &Row,
) -> DbResult<TupleImpact> {
    match tuple_residual(inst, occurrence, tuple)? {
        None => Ok(TupleImpact::NoImpact),
        Some(residual) if inst.select.from.len() == 1 => {
            debug_assert!(residual.is_empty(), "single-table residual impossible");
            Ok(TupleImpact::Affected)
        }
        Some(residual) => Ok(TupleImpact::NeedsPoll(build_poll(
            inst,
            occurrence,
            Expr::conjoin(residual),
        ))),
    }
}

/// Analyze a *batch* of delta tuples against one occurrence at once —
/// §4.2.1's grouped update processing. Tuples failing their local checks
/// are dropped; the survivors' residuals are OR-combined into a single
/// polling query (`(res₁) OR (res₂) OR …`): the instance is affected iff
/// any survivor's residual is satisfiable, so one poll decides the batch.
///
/// `max_or_terms` chunks pathological batches; each chunk yields one poll.
/// Returns the per-batch decision plus how many tuples survived locally.
pub fn analyze_tuple_batch(
    inst: &BoundInstance,
    occurrence: usize,
    tuples: &[&Row],
    max_or_terms: usize,
) -> DbResult<(BatchImpact, usize)> {
    debug_assert!(max_or_terms > 0);
    let mut residuals: Vec<Expr> = Vec::new();
    let mut survivors = 0usize;
    for tuple in tuples {
        match tuple_residual(inst, occurrence, tuple)? {
            None => continue,
            Some(residual) => {
                survivors += 1;
                if inst.select.from.len() == 1 {
                    return Ok((BatchImpact::Affected, survivors));
                }
                if residual.is_empty() {
                    // Unconstrained join: other tables' non-emptiness decides;
                    // this dominates any OR.
                    return Ok((
                        BatchImpact::NeedsPolls(vec![build_poll(inst, occurrence, None)]),
                        survivors,
                    ));
                }
                residuals.push(Expr::conjoin(residual).expect("non-empty"));
            }
        }
    }
    if residuals.is_empty() {
        return Ok((
            if survivors > 0 {
                BatchImpact::Affected
            } else {
                BatchImpact::NoImpact
            },
            survivors,
        ));
    }
    let polls = residuals
        .chunks(max_or_terms)
        .map(|chunk| {
            let ored = chunk
                .iter()
                .cloned()
                .reduce(|a, b| Expr::Or(Box::new(a), Box::new(b)))
                .expect("chunk non-empty");
            build_poll(inst, occurrence, Some(ored))
        })
        .collect();
    Ok((BatchImpact::NeedsPolls(polls), survivors))
}

/// Decision for one (instance, occurrence, tuple *batch*).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchImpact {
    /// No tuple in the batch can affect the instance.
    NoImpact,
    /// Affected without polling.
    Affected,
    /// Affected iff any of these polls is non-empty.
    NeedsPolls(Vec<PollingQuery>),
}

/// Local-check + substitution core shared by single and batched analysis:
/// `None` = tuple ruled out locally; `Some(residual conjuncts)` otherwise.
fn tuple_residual(
    inst: &BoundInstance,
    occurrence: usize,
    tuple: &Row,
) -> DbResult<Option<Vec<Expr>>> {
    let ctx = &inst.ctx;
    let bit = if occurrence < 64 { 1u64 << occurrence } else { 0 };
    let mut residual: Vec<Expr> = Vec::new();
    for compiled in &inst.conjuncts {
        if compiled.const_false {
            // A constant-false conjunct rules out every tuple; decided at
            // compile time, no per-tuple work at all.
            return Ok(None);
        }
        let must_walk = occurrence >= 64
            || compiled.occ_mask == u64::MAX
            || (compiled.occ_mask & bit) != 0;
        if !must_walk {
            // Substituting this occurrence cannot change the conjunct:
            // constant-true conjuncts drop out, column-bearing ones pass to
            // the residual verbatim — no transform walk, no re-evaluation.
            if compiled.has_columns {
                residual.push(compiled.expr.clone());
            }
            continue;
        }
        let substituted = substitute_occurrence(&compiled.expr, ctx, occurrence, tuple)?;
        if has_columns(&substituted) {
            residual.push(substituted);
        } else {
            // Fully bound: decide locally with the engine's evaluator
            // (empty context — no columns remain by construction).
            let bound = bind(&substituted, &BindContext::new(vec![]), &[])?;
            if !bound.eval_predicate(&[]) {
                return Ok(None);
            }
        }
    }
    Ok(Some(residual))
}

/// Pre-resolved TopK shape information for one bound instance: which
/// column bounds the result, in which direction, and the *boundary poll*
/// that re-derives the k-th row's key.
///
/// Unlike the residual `COUNT(*)` polls built by [`build_poll`] below —
/// which correctly drop `ORDER BY`/`LIMIT` because a count's cardinality
/// does not depend on them — the boundary poll **carries the instance's
/// original `ORDER BY … LIMIT k` clause verbatim**: it must return exactly
/// the bounded, ordered result prefix so the k-th row is the real
/// boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopKSpec {
    /// Schema position of the first ORDER BY key column.
    pub order_col: usize,
    /// Sort direction of the first key (`false` = DESC).
    pub ascending: bool,
    /// `LIMIT k`.
    pub k: usize,
    /// `SELECT <first-order-key> FROM … WHERE … ORDER BY … LIMIT k`.
    pub poll_sql: String,
}

/// Resolve the TopK shape of a bound instance, or `None` when the boundary
/// rule does not apply (joins, DISTINCT, aggregates, expression order
/// keys): those instances take the conjunctive decision path unchanged.
pub fn topk_spec(bound: &Select, schemas: &dyn SchemaProvider) -> Option<TopKSpec> {
    if bound.from.len() != 1
        || bound.distinct
        || !bound.group_by.is_empty()
        || bound.having.is_some()
        || bound.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.has_aggregate(),
            _ => false,
        })
    {
        return None;
    }
    let k = match bound.limit {
        Some(k) if k > 0 => k as usize,
        _ => return None,
    };
    let first = bound.order_by.first()?;
    let Expr::Column(c) = &first.expr else {
        return None;
    };
    // The key must resolve on the single FROM table (qualifier, if any,
    // must name its binding) — mirroring the engine's binder.
    if let Some(q) = &c.table {
        if !bound.from[0].binding().eq_ignore_ascii_case(q) {
            return None;
        }
    }
    let schema = schemas.schema_of(&bound.from[0].table)?;
    let order_col = schema.require(&c.column).ok()?;
    let poll = Select {
        distinct: false,
        items: vec![SelectItem::Expr {
            expr: Expr::Column(c.clone()),
            alias: None,
        }],
        from: bound.from.clone(),
        where_clause: bound.where_clause.clone(),
        group_by: vec![],
        having: None,
        order_by: bound.order_by.clone(),
        limit: bound.limit,
    };
    Some(TopKSpec {
        order_col,
        ascending: first.ascending,
        k,
        poll_sql: Statement::Select(poll).to_sql(),
    })
}

/// Which value-preserving accumulator tracks one aggregate select item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// `COUNT(*)` — group row count.
    CountStar,
    /// `COUNT(col)` — non-NULL count of the column at this schema position.
    CountCol(usize),
    /// `SUM(col)` — non-NULL count *and* exact integer sum.
    SumCol(usize),
    /// `AVG(col)` — same tracked state as SUM (avg = sum / count).
    AvgCol(usize),
}

/// Pre-resolved aggregate shape of one bound instance: enough to recompute
/// the delta's net effect on every projected aggregate without touching
/// the DBMS (the "value-preserving poll" of ROADMAP item 3, evaluated over
/// the delta only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggSpec {
    /// Schema positions of the GROUP BY columns (empty = one global group).
    pub group_cols: Vec<usize>,
    /// One tracked accumulator per aggregate select item.
    pub aggs: Vec<AggKind>,
}

/// Resolve the aggregate shape of a bound instance, or `None` when the
/// value-preserving rule cannot apply. Eligibility is deliberately narrow —
/// anything outside it takes the conjunctive (conservative) path:
///
/// * single-table FROM, no DISTINCT, no HAVING (a HAVING clause may
///   reference aggregates we do not track, flipping group membership);
/// * every item is a grouped plain column or a non-DISTINCT
///   `COUNT(*)`/`COUNT(col)`/`SUM(col)`/`AVG(col)` (MIN/MAX need the full
///   group's value multiset, which a delta cannot preserve-check);
/// * every GROUP BY column appears among the ORDER BY keys (or there is no
///   GROUP BY): the engine emits groups in first-seen storage order, so an
///   unordered grouped result can change row *order* even when every group's
///   values are unchanged.
pub fn agg_spec(bound: &Select, schemas: &dyn SchemaProvider) -> Option<AggSpec> {
    if bound.from.len() != 1 || bound.distinct || bound.having.is_some() {
        return None;
    }
    let schema = schemas.schema_of(&bound.from[0].table)?;
    let col_of = |c: &cacheportal_db::sql::ast::ColumnRef| -> Option<usize> {
        if let Some(q) = &c.table {
            if !bound.from[0].binding().eq_ignore_ascii_case(q) {
                return None;
            }
        }
        schema.require(&c.column).ok()
    };
    let mut group_cols = Vec::with_capacity(bound.group_by.len());
    for g in &bound.group_by {
        group_cols.push(col_of(g)?);
    }
    if !bound.group_by.is_empty() {
        // Deterministic output order: every group column must be an ORDER BY
        // key (distinct groups then always differ on some key, so the sort
        // is total over groups and storage order cannot leak through).
        for g in &bound.group_by {
            let ordered = bound.order_by.iter().any(|k| match &k.expr {
                Expr::Column(c) => c.column.eq_ignore_ascii_case(&g.column),
                _ => false,
            });
            if !ordered {
                return None;
            }
        }
    }
    let mut aggs = Vec::new();
    for item in &bound.items {
        let SelectItem::Expr { expr, .. } = item else {
            return None; // SELECT * in an aggregate is rejected anyway
        };
        match expr {
            Expr::Column(c) => {
                let col = col_of(c)?;
                if !group_cols.contains(&col) {
                    return None;
                }
            }
            Expr::Agg {
                func,
                arg,
                distinct: false,
            } => {
                let arg_col = match arg {
                    None => None,
                    Some(a) => match &**a {
                        Expr::Column(c) => Some(col_of(c)?),
                        _ => return None,
                    },
                };
                let kind = match (func, arg_col) {
                    (cacheportal_db::sql::ast::AggFunc::Count, None) => AggKind::CountStar,
                    (cacheportal_db::sql::ast::AggFunc::Count, Some(c)) => AggKind::CountCol(c),
                    (cacheportal_db::sql::ast::AggFunc::Sum, Some(c)) => AggKind::SumCol(c),
                    (cacheportal_db::sql::ast::AggFunc::Avg, Some(c)) => AggKind::AvgCol(c),
                    _ => return None, // MIN/MAX, SUM(*) etc.
                };
                aggs.push(kind);
            }
            _ => return None,
        }
    }
    Some(AggSpec { group_cols, aggs })
}

/// Verdict of the delta-only aggregate recomputation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggJudgement {
    /// Every touched group's row count and every tracked aggregate are
    /// provably unchanged: the cached page stays valid.
    Unchanged,
    /// Some group's aggregate value changes (net row/count/sum ≠ 0).
    Changed(String),
    /// The delta carries values the exactness argument cannot cover
    /// (non-integers or magnitudes near 2^53 where f64 summation rounds):
    /// treat as affected, never as unchanged.
    Unprovable(String),
}

/// Integer magnitude bound under which f64 summation of the engine's
/// `AggState` is exact for any realistic group size (2^40 leaves 2^13 of
/// headroom below f64's 2^53 integer range).
const AGG_EXACT_BOUND: i64 = 1 << 40;

/// Recompute the net effect of the matching delta tuples on every tracked
/// group/aggregate. `matching` holds rows that already passed the
/// instance's WHERE clause, tagged with `true` for Δ⁺ inserts.
pub fn judge_aggregate_delta(spec: &AggSpec, matching: &[(&Row, bool)]) -> AggJudgement {
    use std::collections::HashMap;
    // Per group: (net rows, per tracked agg: (net non-NULL count, net sum)).
    type GroupNet = (i64, Vec<(i64, i128)>);
    let mut groups: HashMap<Vec<cacheportal_db::Value>, GroupNet> = HashMap::new();
    for (row, is_insert) in matching {
        let mut key = Vec::with_capacity(spec.group_cols.len());
        for c in &spec.group_cols {
            match row.get(*c) {
                Some(v) => key.push(v.clone()),
                None => return AggJudgement::Unprovable("delta row narrower than schema".into()),
            }
        }
        let sign: i64 = if *is_insert { 1 } else { -1 };
        let entry = groups
            .entry(key)
            .or_insert_with(|| (0, vec![(0, 0); spec.aggs.len()]));
        entry.0 += sign;
        for (slot, kind) in spec.aggs.iter().enumerate() {
            let col = match kind {
                AggKind::CountStar => continue,
                AggKind::CountCol(c) | AggKind::SumCol(c) | AggKind::AvgCol(c) => *c,
            };
            let Some(v) = row.get(col) else {
                return AggJudgement::Unprovable("delta row narrower than schema".into());
            };
            match v {
                cacheportal_db::Value::Null => {}
                cacheportal_db::Value::Int(n) => {
                    if matches!(kind, AggKind::SumCol(_) | AggKind::AvgCol(_))
                        && n.unsigned_abs() > AGG_EXACT_BOUND as u64
                    {
                        return AggJudgement::Unprovable(format!(
                            "summed value {n} exceeds the exact-arithmetic bound"
                        ));
                    }
                    entry.1[slot].0 += sign;
                    entry.1[slot].1 += i128::from(*n) * i128::from(sign);
                }
                other => {
                    if matches!(kind, AggKind::SumCol(_) | AggKind::AvgCol(_)) {
                        return AggJudgement::Unprovable(format!(
                            "non-integer summed value {other:?}"
                        ));
                    }
                    entry.1[slot].0 += sign;
                }
            }
        }
    }
    for (key, (net_rows, per_agg)) in &groups {
        if *net_rows != 0 {
            return AggJudgement::Changed(format!(
                "group {key:?} row count changes by {net_rows:+}"
            ));
        }
        for (slot, (net_count, net_sum)) in per_agg.iter().enumerate() {
            if *net_count != 0 || *net_sum != 0 {
                return AggJudgement::Changed(format!(
                    "group {key:?} aggregate #{slot} net count {net_count:+}, net sum {net_sum:+}"
                ));
            }
        }
    }
    AggJudgement::Unchanged
}

/// Build `SELECT COUNT(*) FROM <others> WHERE <residual>`.
///
/// `ORDER BY`/`LIMIT` from the instance are intentionally absent: this
/// poll only asks whether matching rows *exist*, and its cardinality is
/// clause-independent. TopK instances additionally get a boundary poll
/// ([`topk_spec`]) that does carry the original clause.
fn build_poll(inst: &BoundInstance, occurrence: usize, residual: Option<Expr>) -> PollingQuery {
    let others: Vec<&TableRef> = inst
        .select
        .from
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != occurrence)
        .map(|(_, t)| t)
        .collect();
    debug_assert!(!others.is_empty(), "single-table polls never built");
    let poll = Select {
        distinct: false,
        items: vec![SelectItem::Expr {
            expr: Expr::Agg {
                func: cacheportal_db::sql::ast::AggFunc::Count,
                arg: None,
                distinct: false,
            },
            alias: None,
        }],
        from: others.iter().map(|t| (*t).clone()).collect(),
        where_clause: residual,
        group_by: vec![],
        having: None,
        order_by: vec![],
        limit: None,
    };
    let mut other_tables: Vec<String> = others
        .iter()
        .map(|t| t.table.to_ascii_lowercase())
        .collect();
    other_tables.sort();
    other_tables.dedup();
    PollingQuery::new(Statement::Select(poll).to_sql(), other_tables)
}

/// Replace every column of FROM-occurrence `occurrence` with the tuple's
/// value; other columns are left intact (with their qualification).
fn substitute_occurrence(
    e: &Expr,
    ctx: &BindContext,
    occurrence: usize,
    tuple: &Row,
) -> DbResult<Expr> {
    // Resolve first so ambiguity errors surface as errors, not silence.
    let err: std::cell::RefCell<Option<DbError>> = std::cell::RefCell::new(None);
    let out = e.transform(&|node| {
        if let Expr::Column(c) = node {
            match ctx.resolve(c) {
                Ok((t, col)) if t == occurrence => {
                    return Some(Expr::Literal(tuple[col].clone()));
                }
                Ok(_) => {}
                Err(e) => {
                    *err.borrow_mut() = Some(e);
                }
            }
        }
        None
    });
    match err.into_inner() {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Does the expression still reference any column?
fn has_columns(e: &Expr) -> bool {
    !e.columns().is_empty()
}

/// Unresolved column references in the residual, re-qualified against the
/// remaining FROM list, must stay valid. Columns that were *unqualified* and
/// resolved to the removed occurrence have been substituted; unqualified
/// columns resolving elsewhere keep working because binding names are
/// unchanged. This helper is used by tests to assert the invariant.
pub fn residual_is_executable(poll: &PollingQuery, schemas: &dyn SchemaProvider) -> bool {
    let Ok(Statement::Select(sel)) =
        cacheportal_db::sql::parser::parse(&poll.sql)
    else {
        return false;
    };
    BoundInstance::new(sel, schemas).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cacheportal_db::sql::parser::parse_select;
    use cacheportal_db::{Database, Value};

    /// Example 4.1 database: Car(maker, model, price), Mileage(model, EPA).
    fn example_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT)")
            .unwrap();
        db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT)")
            .unwrap();
        db
    }

    fn bound(sql: &str, db: &Database) -> BoundInstance {
        BoundInstance::new(parse_select(sql).unwrap(), db).unwrap()
    }

    const QUERY1: &str = "select Car.maker, Car.model, Car.price, Mileage.EPA \
                          from Car, Mileage \
                          where Car.model = Mileage.model and Car.price < 20000";

    #[test]
    fn eclipse_insert_has_no_impact() {
        // Paper: (Mitsubishi, Eclipse, 20,000) fails Car.price < 20000
        // locally — no polling needed.
        let db = example_db();
        let inst = bound(QUERY1, &db);
        let impact = analyze_tuple(
            &inst,
            0,
            &vec!["Mitsubishi".into(), "Eclipse".into(), Value::Int(20000)],
        )
        .unwrap();
        assert_eq!(impact, TupleImpact::NoImpact);
    }

    #[test]
    fn avalon_insert_needs_paper_poll_query() {
        // Paper: (Toyota, Avalon, 25,000)... the paper's example uses a
        // tuple that *passes* the price check; ours must too, so use 15000.
        let db = example_db();
        let inst = bound(QUERY1, &db);
        let impact = analyze_tuple(
            &inst,
            0,
            &vec!["Toyota".into(), "Avalon".into(), Value::Int(15000)],
        )
        .unwrap();
        let TupleImpact::NeedsPoll(poll) = impact else {
            panic!("expected poll, got {impact:?}");
        };
        // Residual: 'Avalon' = Mileage.model over table Mileage.
        assert_eq!(
            poll.sql,
            "SELECT COUNT(*) FROM Mileage WHERE 'Avalon' = Mileage.model"
        );
        assert_eq!(poll.other_tables, vec!["mileage"]);
        assert!(residual_is_executable(&poll, &db));
    }

    #[test]
    fn mileage_insert_polls_car_side() {
        let db = example_db();
        let inst = bound(QUERY1, &db);
        let impact = analyze_tuple(&inst, 1, &vec!["Avalon".into(), Value::Float(28.0)]).unwrap();
        let TupleImpact::NeedsPoll(poll) = impact else {
            panic!("expected poll")
        };
        assert_eq!(
            poll.sql,
            "SELECT COUNT(*) FROM Car WHERE Car.model = 'Avalon' AND Car.price < 20000"
        );
        assert!(residual_is_executable(&poll, &db));
    }

    #[test]
    fn single_table_decides_without_polling() {
        let db = example_db();
        let inst = bound("SELECT * FROM Car WHERE price < 20000", &db);
        let hit = analyze_tuple(&inst, 0, &vec!["a".into(), "b".into(), Value::Int(10)]).unwrap();
        assert_eq!(hit, TupleImpact::Affected);
        let miss =
            analyze_tuple(&inst, 0, &vec!["a".into(), "b".into(), Value::Int(90000)]).unwrap();
        assert_eq!(miss, TupleImpact::NoImpact);
    }

    #[test]
    fn no_where_clause_single_table_always_affected() {
        let db = example_db();
        let inst = bound("SELECT * FROM Car", &db);
        let impact = analyze_tuple(&inst, 0, &vec!["a".into(), "b".into(), Value::Int(1)]).unwrap();
        assert_eq!(impact, TupleImpact::Affected);
    }

    #[test]
    fn no_where_clause_join_polls_other_table_nonempty() {
        let db = example_db();
        let inst = bound("SELECT Car.maker FROM Car, Mileage", &db);
        let impact = analyze_tuple(&inst, 0, &vec!["a".into(), "b".into(), Value::Int(1)]).unwrap();
        let TupleImpact::NeedsPoll(poll) = impact else {
            panic!()
        };
        assert_eq!(poll.sql, "SELECT COUNT(*) FROM Mileage");
    }

    #[test]
    fn null_in_compared_column_means_no_impact() {
        let db = example_db();
        let inst = bound("SELECT * FROM Car WHERE price < 20000", &db);
        let impact = analyze_tuple(&inst, 0, &vec!["a".into(), "b".into(), Value::Null]).unwrap();
        assert_eq!(impact, TupleImpact::NoImpact, "NULL < 20000 is not true");
    }

    #[test]
    fn aliases_are_preserved_in_polls() {
        let db = example_db();
        let inst = bound(
            "SELECT c.maker FROM Car c, Mileage m WHERE c.model = m.model AND c.price < 5",
            &db,
        );
        let impact = analyze_tuple(&inst, 0, &vec!["T".into(), "X".into(), Value::Int(1)]).unwrap();
        let TupleImpact::NeedsPoll(poll) = impact else {
            panic!()
        };
        assert_eq!(poll.sql, "SELECT COUNT(*) FROM Mileage m WHERE 'X' = m.model");
        assert!(residual_is_executable(&poll, &db));
    }

    #[test]
    fn self_join_occurrences_analyzed_independently() {
        let db = example_db();
        let inst = bound(
            "SELECT a.maker FROM Car a, Car b WHERE a.model = b.model AND a.price < b.price",
            &db,
        );
        assert_eq!(inst.occurrences_of("car"), vec![0, 1]);
        let t = vec!["T".into(), "M".into(), Value::Int(100)];
        let i0 = analyze_tuple(&inst, 0, &t).unwrap();
        let TupleImpact::NeedsPoll(p0) = i0 else { panic!() };
        assert_eq!(
            p0.sql,
            "SELECT COUNT(*) FROM Car b WHERE 'M' = b.model AND 100 < b.price"
        );
        let i1 = analyze_tuple(&inst, 1, &t).unwrap();
        let TupleImpact::NeedsPoll(p1) = i1 else { panic!() };
        assert_eq!(
            p1.sql,
            "SELECT COUNT(*) FROM Car a WHERE a.model = 'M' AND a.price < 100"
        );
    }

    #[test]
    fn or_conjunct_spanning_tables_goes_to_residual() {
        let db = example_db();
        let inst = bound(
            "SELECT Car.maker FROM Car, Mileage \
             WHERE Car.model = Mileage.model AND (Car.price < 10 OR Mileage.EPA > 30)",
            &db,
        );
        // Tuple fails price < 10 but the OR can still hold via EPA.
        let impact =
            analyze_tuple(&inst, 0, &vec!["T".into(), "M".into(), Value::Int(50)]).unwrap();
        let TupleImpact::NeedsPoll(poll) = impact else {
            panic!()
        };
        assert!(poll.sql.contains("(50 < 10 OR Mileage.EPA > 30)"));
    }

    #[test]
    fn scalar_functions_in_predicates_analyze_correctly() {
        let db = example_db();
        let inst = bound("SELECT * FROM Car WHERE UPPER(maker) = 'TOYOTA'", &db);
        let hit =
            analyze_tuple(&inst, 0, &vec!["toyota".into(), "m".into(), Value::Int(1)]).unwrap();
        assert_eq!(hit, TupleImpact::Affected);
        let miss =
            analyze_tuple(&inst, 0, &vec!["honda".into(), "m".into(), Value::Int(1)]).unwrap();
        assert_eq!(miss, TupleImpact::NoImpact);
    }

    #[test]
    fn boundary_poll_carries_order_by_and_limit() {
        // Regression for the former clause drop when building polls: a TopK
        // instance's boundary poll must keep ORDER BY … LIMIT verbatim.
        let mut db = example_db();
        for (m, p) in [("a", 10), ("b", 30), ("c", 20), ("d", 40), ("e", 5)] {
            db.execute(&format!("INSERT INTO Car VALUES ('T','{m}',{p})"))
                .unwrap();
        }
        let sel = parse_select(
            "SELECT model FROM Car WHERE maker = 'T' ORDER BY price DESC LIMIT 3",
        )
        .unwrap();
        let spec = topk_spec(&sel, &db).unwrap();
        assert_eq!(spec.k, 3);
        assert!(!spec.ascending);
        assert_eq!(spec.order_col, 2, "price is the third Car column");
        assert_eq!(
            spec.poll_sql,
            "SELECT price FROM Car WHERE maker = 'T' ORDER BY price DESC LIMIT 3"
        );
        // Executing the poll returns exactly the bounded, ordered set — not
        // the full matching set the old clause-stripping would have given.
        let res = db.query(&spec.poll_sql).unwrap();
        let got: Vec<Value> = res.rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(
            got,
            vec![Value::Int(40), Value::Int(30), Value::Int(20)],
            "bounded set only; boundary (k-th key) is 20"
        );
    }

    #[test]
    fn topk_spec_rejects_ineligible_shapes() {
        let db = example_db();
        let ineligible = [
            // Join: the boundary rule needs the order key on the touched table.
            "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model \
             ORDER BY Car.price LIMIT 2",
            // No ORDER BY.
            "SELECT model FROM Car LIMIT 2",
            // No LIMIT.
            "SELECT model FROM Car ORDER BY price",
            // DISTINCT changes the row-multiset argument.
            "SELECT DISTINCT model FROM Car ORDER BY model LIMIT 2",
            // Expression order key.
            "SELECT model FROM Car ORDER BY price + 1 LIMIT 2",
        ];
        for sql in ineligible {
            let sel = parse_select(sql).unwrap();
            assert!(topk_spec(&sel, &db).is_none(), "{sql}");
        }
    }

    #[test]
    fn agg_spec_eligibility_is_narrow() {
        let db = example_db();
        let ok = [
            "SELECT maker, COUNT(*) FROM Car GROUP BY maker ORDER BY maker",
            "SELECT COUNT(*) FROM Car WHERE price < 100",
            "SELECT maker, SUM(price), AVG(price), COUNT(price) FROM Car \
             GROUP BY maker ORDER BY maker",
        ];
        for sql in ok {
            let sel = parse_select(sql).unwrap();
            assert!(agg_spec(&sel, &db).is_some(), "{sql}");
        }
        let ineligible = [
            // Unordered groups: output order depends on storage order.
            "SELECT maker, COUNT(*) FROM Car GROUP BY maker",
            // MIN needs the full value multiset.
            "SELECT maker, MIN(price) FROM Car GROUP BY maker ORDER BY maker",
            // HAVING may reference untracked aggregates.
            "SELECT maker, COUNT(*) FROM Car GROUP BY maker \
             HAVING COUNT(*) > 1 ORDER BY maker",
            // DISTINCT aggregation.
            "SELECT maker, COUNT(DISTINCT model) FROM Car GROUP BY maker ORDER BY maker",
        ];
        for sql in ineligible {
            let sel = parse_select(sql).unwrap();
            assert!(agg_spec(&sel, &db).is_none(), "{sql}");
        }
    }

    #[test]
    fn aggregate_delta_judgement_nets_to_zero_or_changed() {
        let db = example_db();
        let sel = parse_select(
            "SELECT maker, COUNT(*), SUM(price) FROM Car GROUP BY maker ORDER BY maker",
        )
        .unwrap();
        let spec = agg_spec(&sel, &db).unwrap();
        let t = |maker: &str, price: i64| -> Row {
            vec![maker.into(), "m".into(), Value::Int(price)]
        };
        // Value-preserving update: delete (T, 10), insert (T, 10).
        let del = t("T", 10);
        let ins = t("T", 10);
        let matching: Vec<(&Row, bool)> = vec![(&del, false), (&ins, true)];
        assert_eq!(judge_aggregate_delta(&spec, &matching), AggJudgement::Unchanged);
        // Same count, different sum → changed.
        let ins2 = t("T", 11);
        let matching: Vec<(&Row, bool)> = vec![(&del, false), (&ins2, true)];
        assert!(matches!(
            judge_aggregate_delta(&spec, &matching),
            AggJudgement::Changed(_)
        ));
        // Pure insert → group count changes.
        let matching: Vec<(&Row, bool)> = vec![(&ins, true)];
        assert!(matches!(
            judge_aggregate_delta(&spec, &matching),
            AggJudgement::Changed(_)
        ));
        // NULL in the summed column still counts as a row (COUNT(*)), and a
        // delete+insert of NULL rows nets out.
        let null_row: Row = vec!["T".into(), "m".into(), Value::Null];
        let null_row2 = null_row.clone();
        let matching: Vec<(&Row, bool)> = vec![(&null_row, false), (&null_row2, true)];
        assert_eq!(judge_aggregate_delta(&spec, &matching), AggJudgement::Unchanged);
        // NULL↔0 transition is *not* value-preserving for SUM: the non-NULL
        // count guard catches it.
        let zero = t("T", 0);
        let matching: Vec<(&Row, bool)> = vec![(&null_row, false), (&zero, true)];
        assert!(matches!(
            judge_aggregate_delta(&spec, &matching),
            AggJudgement::Changed(_)
        ));
        // Huge values bail out of the exactness argument.
        let big_del = t("T", (1 << 41) + 1);
        let big_ins = t("T", (1 << 41) + 1);
        let matching: Vec<(&Row, bool)> = vec![(&big_del, false), (&big_ins, true)];
        assert!(matches!(
            judge_aggregate_delta(&spec, &matching),
            AggJudgement::Unprovable(_)
        ));
    }

    #[test]
    fn fully_local_or_decided_without_poll() {
        let db = example_db();
        let inst = bound(
            "SELECT * FROM Car WHERE price < 10 OR maker = 'Toyota'",
            &db,
        );
        let hit =
            analyze_tuple(&inst, 0, &vec!["Toyota".into(), "M".into(), Value::Int(99)]).unwrap();
        assert_eq!(hit, TupleImpact::Affected);
        let miss =
            analyze_tuple(&inst, 0, &vec!["Honda".into(), "M".into(), Value::Int(99)]).unwrap();
        assert_eq!(miss, TupleImpact::NoImpact);
    }
}

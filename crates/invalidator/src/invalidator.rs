//! The invalidator orchestrator (§4, Figure 11): at each synchronization
//! point it (1) scans the QI/URL map for new query instances, (2) pulls the
//! update log into Δ⁺/Δ⁻ deltas, (3) decides which instances are affected —
//! locally where possible, by polling queries where not — and (4) emits the
//! set of page keys to eject from the caches.

use crate::analysis::{
    agg_spec, analyze_tuple, analyze_tuple_batch, judge_aggregate_delta, topk_spec, AggJudgement,
    AggSpec, BatchImpact, BoundInstance, TopKSpec, TupleImpact,
};
use crate::breaker::{BreakerConfig, BreakerDecision, CircuitBreaker, TypeObservation};
use crate::delta::{DeltaGroupStat, DeltaSet};
use crate::policy::{InvalidationPolicy, PolicyConfig, PolicyStore};
use crate::polling::{InfoManager, PollAnswer, PollRunner, PollStats};
use crate::predicate_index::Probe;
use crate::query_type::{QueryShape, QueryTypeId, Registry};
use cacheportal_db::sql::rewrite::substitute_params;
use cacheportal_db::{Database, DbResult, Lsn, Value};
use cacheportal_sniffer::QiUrlMap;
use cacheportal_web::PageKey;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// How an instance was judged affected (the provenance verdict).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictKind {
    /// Local predicate evaluation alone proved impact — no poll needed.
    LocalPredicate,
    /// A residual polling query issued to the DBMS found matching rows.
    PollingQuery,
    /// An identical poll earlier in the sync point already answered yes.
    PollCache,
    /// A maintained join-attribute index answered the poll.
    MaintainedIndex,
    /// The correlated-delete guard flipped a negative poll to affected.
    DeleteGuard,
    /// The poll budget was exhausted; degraded to Conservative.
    BudgetDegraded,
    /// Conservative policy: local checks passed, poll skipped.
    Conservative,
    /// Table-level policy: any update to a read table invalidates.
    TableLevel,
    /// The instance's SQL no longer binds against the schema; failed safe.
    BindFailure,
    /// A polling query failed (error or timeout); the instance was assumed
    /// affected rather than risk a stale page. The conservative fallback
    /// for poll faults — faults may only over-invalidate.
    PollFault,
    /// The circuit breaker is open for this query type: the polling path
    /// was judged unhealthy, so the type was degraded to the paper's
    /// no-polling conservative policy until a half-open probe succeeds.
    BreakerDegraded,
    /// Recovery ejected this page conservatively: it was cached inside the
    /// gap between the last durable checkpoint and the crash, so its
    /// dependencies cannot be proven — eject rather than risk staleness.
    RecoveryGap,
    /// A TopK (ORDER BY + LIMIT) instance: a delta tuple lands at or inside
    /// the registered top-k boundary value, so it can enter or displace the
    /// bounded result.
    TopKBoundary,
    /// An Aggregate instance: matching delta tuples change (or cannot be
    /// proven not to change) the aggregate values the page displays.
    AggregateDelta,
}

impl VerdictKind {
    /// Stable kebab-case name used in provenance records and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            VerdictKind::LocalPredicate => "local-predicate",
            VerdictKind::PollingQuery => "polling-query",
            VerdictKind::PollCache => "poll-cache",
            VerdictKind::MaintainedIndex => "maintained-index",
            VerdictKind::DeleteGuard => "delete-guard",
            VerdictKind::BudgetDegraded => "budget-degraded",
            VerdictKind::Conservative => "conservative",
            VerdictKind::TableLevel => "table-level",
            VerdictKind::BindFailure => "bind-failure",
            VerdictKind::PollFault => "poll-fault",
            VerdictKind::BreakerDegraded => "breaker-degraded",
            VerdictKind::RecoveryGap => "recovery-gap",
            VerdictKind::TopKBoundary => "topk-boundary",
            VerdictKind::AggregateDelta => "aggregate-delta",
        }
    }
}

impl From<PollAnswer> for VerdictKind {
    fn from(a: PollAnswer) -> Self {
        match a {
            PollAnswer::Issued => VerdictKind::PollingQuery,
            PollAnswer::FromCache => VerdictKind::PollCache,
            PollAnswer::FromIndex => VerdictKind::MaintainedIndex,
            PollAnswer::DeleteGuard => VerdictKind::DeleteGuard,
        }
    }
}

/// Verdict kind plus free-form detail (polling SQL, predicate context, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictCause {
    /// What decided the instance was affected.
    pub kind: VerdictKind,
    /// Human-readable supporting detail.
    pub detail: String,
}

/// One affected query instance with its verdict and dependent pages —
/// the invalidator's half of an eject provenance chain.
#[derive(Debug, Clone)]
pub struct InstanceVerdict {
    /// The matched query type.
    pub type_id: QueryTypeId,
    /// The type's parameterised SQL.
    pub type_sql: String,
    /// Bound parameter values of the affected instance.
    pub params: Vec<Value>,
    /// Why the instance was judged affected.
    pub cause: VerdictCause,
    /// Pages depending on the instance (ejected as a consequence).
    pub pages: Vec<PageKey>,
}

/// What one synchronization point produced.
#[derive(Debug, Default, Clone)]
pub struct InvalidationReport {
    /// Pages to eject from the caches.
    pub pages: HashSet<PageKey>,
    /// Per affected instance: matched type, parameters, verdict, pages.
    /// Feeds the provenance log; one entry per `invalidated_instances`.
    pub verdicts: Vec<InstanceVerdict>,
    /// Inclusive LSN range of the update-log records consumed (None when
    /// the log was empty).
    pub lsn_range: Option<(Lsn, Lsn)>,
    /// Per-table ΔR group sizes of the consumed batch, sorted by table.
    pub delta_groups: Vec<DeltaGroupStat>,
    /// Query instances found affected.
    pub invalidated_instances: u64,
    /// Instances examined.
    pub checked_instances: u64,
    /// Delta tuples processed (tuple × occurrence pairs analyzed).
    pub tuples_analyzed: u64,
    /// New QI/URL rows registered this run.
    pub registered: u64,
    /// QI/URL rows skipped because they could not be parsed.
    pub unparseable: u64,
    /// Log records consumed.
    pub records_consumed: u64,
    /// Polling statistics.
    pub polls: PollStats,
    /// Poll decisions degraded to Conservative by the budget.
    pub degraded_by_budget: u64,
    /// Canonical SQL of types newly marked non-cacheable by policy
    /// discovery.
    pub newly_non_cacheable: Vec<String>,
    /// Instances whose queries no longer bind against the current schema
    /// (table/column dropped); their pages are conservatively ejected.
    pub bind_failures: u64,
    /// Delta-tuple/batch decisions resolved purely by local analysis
    /// (`NoImpact` or `Affected` without a polling query) — each of these is
    /// a poll the local check avoided (§4.2).
    pub local_decisions: u64,
    /// Wall-clock time the sync point took (the paper's per-type
    /// "average and maximum invalidation times" statistic, aggregated).
    pub elapsed: std::time::Duration,
    /// Stage timing: online registration scan of the QI/URL map (§4.1.2).
    pub registration_micros: u64,
    /// Stage timing: update-log pull + delta build + index maintenance.
    pub delta_micros: u64,
    /// Stage timing: affected-instance analysis (local checks + polls).
    pub analysis_micros: u64,
    /// Stage timing: page collection + policy discovery bookkeeping.
    pub collect_micros: u64,
    /// Worker threads the analysis stage ran with (1 = sequential).
    pub workers: u64,
    /// Per-shard analysis wall-clock, microseconds, in shard order. Empty
    /// when the sync point consumed no records.
    pub shard_micros: Vec<u64>,
    /// Times a shard blocked on a dedup stripe held by another shard
    /// (scheduling-dependent; excluded from the equivalence guarantee).
    pub poll_lock_contended: u64,
    /// Poll decisions that fell back to [`VerdictKind::PollFault`] because
    /// the polling query errored or timed out (after exhausting retries).
    pub poll_faults: u64,
    /// Verdicts forced to the conservative policy by an open breaker.
    pub breaker_degraded: u64,
    /// Breaker transitions this sync point: types that tripped open.
    pub breaker_opened: u64,
    /// Breaker transitions this sync point: open → half-open probes.
    pub breaker_half_opened: u64,
    /// Breaker transitions this sync point: successful probes that closed.
    pub breaker_closed: u64,
    /// Types currently open (degraded) after this sync point.
    pub breaker_open_types: u64,
    /// Types currently half-open (probing) after this sync point.
    pub breaker_half_open_types: u64,
    /// Per-query-type outcome of this sync point, sorted by type id.
    /// Built in the deterministic merge, so it is identical across worker
    /// counts (except `analysis_micros`, which is wall-clock); feeds the
    /// portal's cost/benefit scorecards.
    pub per_type: Vec<TypeSyncStat>,
    /// Candidate instances the predicate index handed to the analysis loop
    /// (instances that still ran the full local-check/poll decision).
    pub index_candidates: u64,
    /// Registered instances the predicate index proved unaffected and
    /// skipped without analysis — the sublinear win.
    pub index_skipped: u64,
    /// Instances scanned through the residual fallback (type unclassifiable
    /// or a residual occurrence touched): the index could not narrow them.
    pub index_residual_scanned: u64,
    /// Candidate types narrowed by an index probe this sync point.
    pub index_probed_types: u64,
    /// Candidate types that fell back to the full scan this sync point.
    pub index_residual_types: u64,
    /// Wall-clock microseconds spent probing the predicate index.
    pub index_probe_micros: u64,
    /// Live instances interned in the predicate index after this sync.
    pub index_size: u64,
    /// Cumulative index maintenance time (registration inserts + eviction
    /// removals), microseconds.
    pub index_maintenance_micros: u64,
    /// Differential-mode divergences: `(type, params)` pairs judged
    /// affected by exactly one of {indexed run, scan re-run}. Always 0 for
    /// a sound index; only populated when
    /// [`InvalidatorConfig::index_differential`] is set.
    pub index_divergences: u64,
    /// TopK instances the boundary rule kept cached: every matching delta
    /// tuple was provably beyond the registered top-k boundary, where the
    /// conventional local check would have ejected.
    pub shape_topk_skipped: u64,
    /// Aggregate instances the value-preserving rule kept cached: matching
    /// tuples netted to zero on every group and tracked aggregate.
    pub shape_agg_skipped: u64,
    /// Boundary polls issued by the shape pre-pass (one bounded ORDER
    /// BY/LIMIT query per live TopK instance of a candidate type).
    pub shape_boundary_polls: u64,
    /// Pages the aggregate value-preserving rule kept cached this sync
    /// point (sorted, deduplicated, minus pages ejected anyway). The
    /// netting proof compares the interval's *endpoint* states, so it only
    /// covers pages generated before the interval — the orchestrator must
    /// eject any of these that were admitted mid-interval, where a
    /// cancelled insert/delete pair can leave a transient state baked into
    /// the page.
    pub netted_pages: Vec<PageKey>,
}

/// One query type's share of a sync point (see
/// [`InvalidationReport::per_type`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TypeSyncStat {
    /// The query type.
    pub id: QueryTypeId,
    /// Polling queries attempted for this type (issued + answered from the
    /// poll cache/index); deterministic across worker counts.
    pub polls_attempted: u64,
    /// Polls that faulted after retries.
    pub poll_faults: u64,
    /// Wall-clock analysis time, microseconds (nondeterministic).
    pub analysis_micros: u64,
    /// Instances the predicate index handed to the analysis loop for this
    /// type (candidates that still ran the full decision).
    pub index_candidates: u64,
    /// Instances the predicate index skipped for this type.
    pub index_skipped: u64,
    /// Instances scanned via the residual fallback for this type.
    pub index_residual: u64,
    /// The type's query shape (classifier verdict, fixed at registration).
    pub shape: QueryShape,
    /// Instances a shape rule (top-k boundary / aggregate delta) kept
    /// cached this sync point where the conventional path would eject.
    pub shape_skipped: u64,
}

/// Invalidator configuration.
#[derive(Debug, Clone)]
pub struct InvalidatorConfig {
    /// Policy configuration (defaults, budget, discovery rules).
    pub policy: PolicyConfig,
    /// Worker threads for the affected-instance analysis stage. Query types
    /// are sharded round-robin across workers; `1` (the default) runs the
    /// sequential path. Values above the candidate-type count are clamped.
    pub workers: usize,
    /// Modeled DBMS round-trip time per *issued* polling query, in
    /// microseconds. The paper's invalidator polls a remote DBMS over the
    /// network; setting this reproduces that regime (each issued poll
    /// sleeps this long), which is what concurrent polling overlaps.
    /// `0` (the default) disables the model entirely.
    pub poll_rtt_micros: u64,
    /// Fault-injection plan for polling queries (harness only; the default
    /// plan is inert). Installed into every sync point's [`PollRunner`].
    pub fault: cacheportal_db::FaultPlan,
    /// Retries allowed per poll after a transient fault (0 = fail on the
    /// first fault, the pre-retry behavior).
    pub poll_max_retries: u32,
    /// Base of the bounded exponential retry backoff, microseconds. `0`
    /// (the default) models the backoff without sleeping — tests and the
    /// harness stay fast and deterministic.
    pub poll_backoff_base_micros: u64,
    /// Retry budget per query type per sync point: once a type has spent
    /// this many retries, its remaining polls fail on first fault. Keeps a
    /// flapping DBMS from multiplying sync-point latency. Shard-local and
    /// deterministic (each type is analyzed wholly within one shard).
    pub poll_retry_budget_per_type: u64,
    /// Circuit-breaker configuration for adaptive poll degradation.
    pub breaker: BreakerConfig,
    /// Probe the predicate index before scanning a type's instances (on by
    /// default). The index only ever *skips* instances whose indexed
    /// conjunct is provably false for every delta tuple — verdicts are
    /// identical with it off, just slower at high instance counts.
    pub predicate_index: bool,
    /// Index-vs-scan differential mode (harness/CI): after the indexed
    /// analysis, re-run the whole batch sequentially with the index
    /// disabled and count `(type, params)` affected-set divergences into
    /// [`InvalidationReport::index_divergences`]. The comparison is exact
    /// for the default unbudgeted config (a per-sync poll budget is spent
    /// in scheduling order, which a sequential re-run cannot reproduce).
    /// Expensive — every sync point analyzes twice.
    pub index_differential: bool,
    /// Per-shape decision rules (on by default): TopK instances compare
    /// delta tuples against the registered top-k boundary, Aggregate
    /// instances run the value-preserving delta judgement. Both may only
    /// *keep pages cached* that the conventional path would eject (or
    /// relabel a verdict's provenance) — never invalidate more; turning
    /// the flag off restores the conservative pre-shape behavior exactly.
    pub shape_rules: bool,
}

impl Default for InvalidatorConfig {
    fn default() -> Self {
        InvalidatorConfig {
            policy: PolicyConfig::default(),
            workers: 1,
            poll_rtt_micros: 0,
            fault: cacheportal_db::FaultPlan::default(),
            poll_max_retries: 2,
            poll_backoff_base_micros: 0,
            poll_retry_budget_per_type: 32,
            breaker: BreakerConfig::default(),
            predicate_index: true,
            index_differential: false,
            shape_rules: true,
        }
    }
}

/// Per-shard tallies of the analysis-stage counters, merged into the
/// [`InvalidationReport`] after all shards join.
#[derive(Debug, Default)]
struct ShardCounters {
    checked_instances: u64,
    tuples_analyzed: u64,
    local_decisions: u64,
    degraded_by_budget: u64,
    bind_failures: u64,
    poll_faults: u64,
    polls_attempted: u64,
    breaker_degraded: u64,
    index_candidates: u64,
    index_skipped: u64,
    index_residual_scanned: u64,
    index_probed_types: u64,
    index_residual_types: u64,
    index_probe_micros: u64,
    shape_topk_skipped: u64,
    shape_agg_skipped: u64,
}

/// One analyzed query type's results, tagged with its position in the
/// sorted candidate-type order so the merge is deterministic regardless of
/// which shard ran it.
struct TypeOutcome {
    order: usize,
    ty_id: QueryTypeId,
    affected: Vec<(QueryTypeId, Vec<Value>, VerdictCause)>,
    /// Analysis wall-clock to record into the type's stats; `None` for
    /// table-level types (the sequential path never recorded those).
    record_micros: Option<u64>,
    /// Poll-fault verdicts this type produced (breaker evidence).
    poll_faults: u64,
    /// Poll decisions that reached the DBMS fault site for this type.
    polls_attempted: u64,
    /// Instances the predicate index handed to the decision loop.
    index_candidates: u64,
    /// Instances the predicate index skipped.
    index_skipped: u64,
    /// Instances scanned via the residual fallback.
    index_residual: u64,
    /// Instances a shape rule kept cached for this type.
    shape_skipped: u64,
}

/// Per-call retry settings handed to the shard workers.
#[derive(Debug, Clone, Copy)]
struct RetrySettings {
    max_retries: u32,
    budget_per_type: u64,
}

/// Everything one shard worker produced.
struct ShardOutcome {
    types: Vec<TypeOutcome>,
    counters: ShardCounters,
    elapsed_micros: u64,
    /// Pages of aggregate instances the value-preserving netting kept
    /// cached (see [`InvalidationReport::netted_pages`]).
    netted_pages: Vec<PageKey>,
}

/// What a per-shape decision rule concluded for one instance.
enum ShapeDecision {
    /// The rule does not apply (no boundary, ineligible shape details, or a
    /// tuple needed a poll); run the conventional per-occurrence loop.
    Fallback,
    /// Provably unaffected. `shape_skip` is true when the proof *needed*
    /// the shape rule (a boundary comparison or delta judgement) — i.e. the
    /// conventional path would have ejected the instance.
    NoImpact { shape_skip: bool },
    /// Affected, with shape-specific provenance.
    Affected(VerdictCause),
}

/// The CachePortal invalidator.
///
/// ```
/// use cacheportal_db::Database;
/// use cacheportal_invalidator::{Invalidator, InvalidatorConfig};
/// use cacheportal_sniffer::QiUrlMap;
/// use cacheportal_web::PageKey;
///
/// let mut db = Database::new();
/// db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT)").unwrap();
/// let mut inv = Invalidator::new(InvalidatorConfig::default());
/// inv.start_from(db.high_water());
///
/// // The sniffer found that URL1 depends on this query instance:
/// let map = QiUrlMap::new();
/// map.insert("SELECT * FROM Car WHERE price < 20000".into(),
///            PageKey::raw("URL1"), "cars".into());
///
/// // A backend update lands; the next sync point names the stale page.
/// db.execute("INSERT INTO Car VALUES ('Kia','Rio',12000)").unwrap();
/// let report = inv.run_sync_point(&db, &map).unwrap();
/// assert!(report.pages.contains(&PageKey::raw("URL1")));
/// ```
pub struct Invalidator {
    registry: Registry,
    info: InfoManager,
    policies: PolicyStore,
    config: InvalidatorConfig,
    consumed_lsn: Lsn,
    map_cursor: u64,
    breaker: CircuitBreaker,
    /// After crash recovery: update records at or below this LSN are
    /// already reflected in the re-bootstrapped maintained indexes, so the
    /// first overlapping batch must not re-apply their deltas to the
    /// indexes (analysis still sees them and re-ejects conservatively).
    index_floor: Lsn,
}

impl Invalidator {
    /// Create an invalidator with the given configuration.
    pub fn new(config: InvalidatorConfig) -> Self {
        Invalidator {
            registry: Registry::new(),
            info: InfoManager::new(),
            policies: PolicyStore::new(),
            config,
            consumed_lsn: 0,
            map_cursor: 0,
            breaker: CircuitBreaker::new(),
            index_floor: 0,
        }
    }

    /// The poll-path circuit breaker (read-only view for metrics/health).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Declare that maintained indexes were bootstrapped from a database
    /// state that already includes every update record at or below `lsn`.
    /// Used by crash recovery, where the recovered cursor trails the log.
    pub fn set_index_floor(&mut self, lsn: Lsn) {
        self.index_floor = lsn;
    }

    /// The query-type/instance registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable registry access.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// The information-management module (maintained indexes).
    pub fn info(&self) -> &InfoManager {
        &self.info
    }

    /// The active configuration.
    pub fn config(&self) -> &InvalidatorConfig {
        &self.config
    }

    /// Mutable configuration access: the harness flips policies, worker
    /// counts, and fault plans between sync points.
    pub fn config_mut(&mut self) -> &mut InvalidatorConfig {
        &mut self.config
    }

    /// Update-log position consumed so far.
    pub fn consumed_lsn(&self) -> Lsn {
        self.consumed_lsn
    }

    /// Start consuming the update log at `lsn`, skipping earlier records.
    /// Deployments call this with the log's high-water mark at attach time
    /// so that historical loads (bulk seeding) are not treated as updates.
    pub fn start_from(&mut self, lsn: Lsn) {
        self.consumed_lsn = self.consumed_lsn.max(lsn);
    }

    /// Off-line registration: declare a query type up front (§4.1.1).
    pub fn register_type(&mut self, sql: &str) -> DbResult<QueryTypeId> {
        self.registry.register_type_sql(sql)
    }

    /// Off-line policy registration (§4.1.3).
    pub fn set_policy(&mut self, id: QueryTypeId, policy: InvalidationPolicy) {
        self.policies.set_override(id, policy);
    }

    /// Start maintaining a join-attribute index inside the invalidator.
    pub fn maintain_index(&mut self, db: &Database, table: &str, column: &str) -> DbResult<()> {
        self.info.maintain_index(db, table, column)
    }

    /// Forget page associations (pages no longer cached anywhere).
    pub fn forget_pages(&mut self, pages: &HashSet<PageKey>) -> usize {
        self.registry.remove_pages(pages)
    }

    /// Run one synchronization point against the database and the sniffer's
    /// QI/URL map. Returns the invalidation report; the caller delivers
    /// `report.pages` to the caches as eject messages.
    ///
    /// Takes `&Database`: the sync point only *reads* the DBMS (update
    /// log + read-only polling queries), so with `workers > 1` the
    /// analysis stage fans out across threads that poll concurrently.
    pub fn run_sync_point(
        &mut self,
        db: &Database,
        map: &QiUrlMap,
    ) -> DbResult<InvalidationReport> {
        let started = std::time::Instant::now();
        let mut report = InvalidationReport {
            workers: self.config.workers.max(1) as u64,
            ..InvalidationReport::default()
        };

        // (1) Online registration scan of the QI/URL map (§4.1.2).
        let (entries, cursor) = map.entries_since(self.map_cursor);
        self.map_cursor = cursor;
        for entry in entries {
            match self
                .registry
                .register_instance(&entry.sql, entry.page_key.clone())
            {
                Ok(_) => report.registered += 1,
                Err(_) => report.unparseable += 1,
            }
        }
        report.registration_micros = started.elapsed().as_micros() as u64;

        // (2) Pull the update log and build deltas (§4.2.1). The log hands
        // out a borrowed slice; DeltaSet::from_records clones only the rows
        // it groups, so the records themselves are never copied.
        let delta_started = std::time::Instant::now();
        let records: &[cacheportal_db::LogRecord] =
            db.update_log().pull_since(self.consumed_lsn);
        if records.is_empty() {
            report.delta_micros = delta_started.elapsed().as_micros() as u64;
            report.breaker_open_types = self.breaker.open_count();
            report.breaker_half_open_types = self.breaker.half_open_count();
            let istats = self.registry.index_stats();
            report.index_size = istats.entries;
            report.index_maintenance_micros = istats.maintenance_micros;
            report.elapsed = started.elapsed();
            return Ok(report);
        }
        let mut deltas = DeltaSet::from_records(records);
        if self.config.policy.compact_deltas {
            deltas = deltas.compacted();
        }
        report.records_consumed = records.len() as u64;
        report.lsn_range = match (records.first(), records.last()) {
            (Some(f), Some(l)) => Some((f.lsn, l.lsn)),
            _ => None,
        };
        report.delta_groups = deltas.group_stats();
        self.consumed_lsn = deltas.next_lsn.max(self.consumed_lsn);

        // Maintained indexes must reflect the post-batch state before any
        // poll is answered from them. After recovery the first batch can
        // overlap `index_floor`: those records were already in the base
        // tables when the indexes were re-bootstrapped, so only the fresh
        // tail is applied (double-applying would corrupt index counts).
        if self.index_floor == 0 {
            self.info.apply_deltas(&deltas);
        } else {
            let floor = self.index_floor;
            let fresh: Vec<cacheportal_db::LogRecord> = records
                .iter()
                .filter(|r| r.lsn > floor)
                .cloned()
                .collect();
            if !fresh.is_empty() {
                let mut fresh_deltas = DeltaSet::from_records(&fresh);
                if self.config.policy.compact_deltas {
                    fresh_deltas = fresh_deltas.compacted();
                }
                self.info.apply_deltas(&fresh_deltas);
            }
            if self.consumed_lsn > floor {
                self.index_floor = 0;
            }
        }
        report.delta_micros = delta_started.elapsed().as_micros() as u64;

        // Shape pre-pass: refresh per-instance top-k boundaries before the
        // sharded analysis reads them. The database is already at the
        // post-batch state here, so the stored boundary is the k-th row's
        // first ORDER BY key *after* the update — which is what the
        // boundary rule's proof compares delta tuples against. Sequential
        // (needs `&mut registry`) and bounded: one `ORDER BY … LIMIT k`
        // poll per live TopK instance whose read table was touched.
        if self.config.shape_rules {
            let mut topk_types: Vec<QueryTypeId> = deltas
                .touched_tables()
                .flat_map(|t| self.registry.types_reading(t).iter().copied())
                .filter(|&id| self.registry.get(id).shape == QueryShape::TopK)
                .collect();
            topk_types.sort_unstable();
            topk_types.dedup();
            for ty_id in topk_types {
                if self.policies.policy_for(ty_id, &self.config.policy)
                    != InvalidationPolicy::Exact
                {
                    continue;
                }
                let ty_select = self.registry.get(ty_id).select.clone();
                let instances: Vec<Vec<Value>> = self
                    .registry
                    .instances_of(ty_id)
                    .map(|(params, _)| params.clone())
                    .collect();
                for params in instances {
                    let boundary = substitute_params(&ty_select, &params)
                        .ok()
                        .and_then(|bound| topk_spec(&bound, db))
                        .and_then(|spec| {
                            report.shape_boundary_polls += 1;
                            match db.query(&spec.poll_sql) {
                                // Only a *full* result has a meaningful
                                // boundary; short results (or a failed
                                // poll) disable the rule for the instance.
                                Ok(res) if res.rows.len() == spec.k => res
                                    .rows
                                    .last()
                                    .and_then(|r| r.first())
                                    .cloned(),
                                _ => None,
                            }
                        });
                    self.registry.set_boundary(ty_id, &params, boundary);
                }
            }
        }

        // (3) Decide affected instances.
        let analysis_started = std::time::Instant::now();
        let mut affected = self.analyze_batch(db, &deltas, &mut report)?;
        report.analysis_micros = analysis_started.elapsed().as_micros() as u64;

        // (4) Collect dependent pages, keeping the per-instance chain
        // (type → params → verdict → pages) for the provenance log.
        let collect_started = std::time::Instant::now();
        for (ty, params, cause) in affected.drain(..) {
            let pages: Vec<PageKey> = self
                .registry
                .pages_of(ty, &params)
                .map(|data| data.pages.iter().cloned().collect())
                .unwrap_or_default();
            report.pages.extend(pages.iter().cloned());
            report.verdicts.push(InstanceVerdict {
                type_id: ty,
                type_sql: self.registry.get(ty).sql.clone(),
                params,
                cause,
                pages,
            });
        }
        report.invalidated_instances = report.verdicts.len() as u64;

        // Normalize the netting escape-hatch list: dedup, and drop any page
        // the batch already ejects through a verdict — the guard only cares
        // about pages the shortcut would otherwise *keep*.
        report.netted_pages.sort_unstable();
        report.netted_pages.dedup();
        {
            let ejected: HashSet<&PageKey> = report.pages.iter().collect();
            report.netted_pages.retain(|k| !ejected.contains(k));
        }

        // Bookkeeping + policy discovery (§4.1.4).
        let mut invalidated_per_type: HashMap<QueryTypeId, u64> = HashMap::new();
        for v in &report.verdicts {
            *invalidated_per_type.entry(v.type_id).or_insert(0) += 1;
        }
        let touched: Vec<String> = deltas.touched_tables().map(str::to_string).collect();
        let mut touched_types: HashSet<QueryTypeId> = HashSet::new();
        for t in &touched {
            touched_types.extend(self.registry.types_reading(t).iter().copied());
        }
        for id in touched_types {
            let instance_count = self.registry.instance_count(id) as u64;
            let ratio_cfg = self.config.policy.non_cacheable_invalidation_ratio;
            let min_batches = self.config.policy.min_batches_for_ratio;
            let ty = self.registry.get_mut(id);
            ty.stats.update_batches += 1;
            ty.stats.invalidations += invalidated_per_type.get(&id).copied().unwrap_or(0);
            if let Some(threshold) = ratio_cfg {
                if ty.cacheable
                    && ty.stats.update_batches >= min_batches
                    && instance_count > 0
                {
                    // Fraction of this type's instances invalidated per
                    // batch, averaged over batches.
                    let per_batch = ty.stats.invalidations as f64
                        / ty.stats.update_batches as f64
                        / instance_count as f64;
                    if per_batch > threshold {
                        ty.cacheable = false;
                        report.newly_non_cacheable.push(ty.sql.clone());
                    }
                }
            }
        }

        report.collect_micros = collect_started.elapsed().as_micros() as u64;
        let istats = self.registry.index_stats();
        report.index_size = istats.entries;
        report.index_maintenance_micros = istats.maintenance_micros;
        report.elapsed = started.elapsed();
        Ok(report)
    }

    /// Analyze one delta batch; returns affected (type, params, verdict)
    /// triples.
    ///
    /// Candidate query types are sharded round-robin (in stable type-id
    /// order) across `config.workers` scoped threads. Each shard analyzes
    /// its types independently against the shared read-only database and a
    /// shared [`PollRunner`] whose lock-striped dedup cache guarantees
    /// identical polls execute exactly once across shards. Per-shard results
    /// are merged back in candidate-type order, so the affected list — and
    /// therefore verdicts, pages, and provenance — is identical whatever
    /// the worker count.
    fn analyze_batch(
        &mut self,
        db: &Database,
        deltas: &DeltaSet,
        report: &mut InvalidationReport,
    ) -> DbResult<Vec<(QueryTypeId, Vec<Value>, VerdictCause)>> {
        let runner = PollRunner::with_rtt(
            &self.info,
            deltas,
            std::time::Duration::from_micros(self.config.poll_rtt_micros),
        )
        .with_fault_plan(self.config.fault.clone())
        .with_retry(
            self.config.poll_max_retries,
            std::time::Duration::from_micros(self.config.poll_backoff_base_micros),
        );

        let touched: Vec<String> = deltas.touched_tables().map(str::to_string).collect();
        let mut candidate_types: Vec<QueryTypeId> = touched
            .iter()
            .flat_map(|t| self.registry.types_reading(t).iter().copied())
            .collect();
        candidate_types.sort_unstable();
        candidate_types.dedup();

        // Breaker decisions are taken up front, before the fan-out: every
        // shard sees the same per-type decision regardless of worker count
        // or scheduling, preserving parallel equivalence.
        let breaker_cfg = self.config.breaker.clone();
        let decisions: HashMap<QueryTypeId, BreakerDecision> = candidate_types
            .iter()
            .map(|&id| (id, self.breaker.decision(id, &breaker_cfg)))
            .collect();
        let retry = RetrySettings {
            max_retries: self.config.poll_max_retries,
            budget_per_type: self.config.poll_retry_budget_per_type,
        };

        let workers = self
            .config
            .workers
            .max(1)
            .min(candidate_types.len().max(1));
        let shards: Vec<Vec<(usize, QueryTypeId)>> = {
            let mut shards = vec![Vec::new(); workers];
            for (order, ty_id) in candidate_types.iter().copied().enumerate() {
                shards[order % workers].push((order, ty_id));
            }
            shards
        };

        let registry = &self.registry;
        let policies = &self.policies;
        let policy_cfg = &self.config.policy;
        let info = &self.info;
        let runner_ref = &runner;
        let decisions_ref = &decisions;
        let use_index = self.config.predicate_index;
        let shape_rules = self.config.shape_rules;

        let shard_results: Vec<DbResult<ShardOutcome>> = if workers == 1 {
            vec![Self::analyze_types_shard(
                registry,
                policies,
                policy_cfg,
                info,
                runner_ref,
                db,
                deltas,
                decisions_ref,
                retry,
                &shards[0],
                use_index,
                shape_rules,
            )]
        } else {
            crossbeam::scope(|s| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|types| {
                        s.spawn(move |_| {
                            Self::analyze_types_shard(
                                registry,
                                policies,
                                policy_cfg,
                                info,
                                runner_ref,
                                db,
                                deltas,
                                decisions_ref,
                                retry,
                                types,
                                use_index,
                                shape_rules,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("invalidator shard worker panicked"))
                    .collect()
            })
            .expect("invalidator shard worker panicked")
        };

        // Deterministic merge: flatten per-type outcomes and restore the
        // candidate-type order they were assigned from.
        let mut type_outcomes: Vec<TypeOutcome> = Vec::with_capacity(candidate_types.len());
        for (shard_idx, result) in shard_results.into_iter().enumerate() {
            let outcome = result?;
            debug_assert!(shard_idx < workers);
            report.shard_micros.push(outcome.elapsed_micros);
            report.checked_instances += outcome.counters.checked_instances;
            report.tuples_analyzed += outcome.counters.tuples_analyzed;
            report.local_decisions += outcome.counters.local_decisions;
            report.degraded_by_budget += outcome.counters.degraded_by_budget;
            report.bind_failures += outcome.counters.bind_failures;
            report.poll_faults += outcome.counters.poll_faults;
            report.breaker_degraded += outcome.counters.breaker_degraded;
            report.index_candidates += outcome.counters.index_candidates;
            report.index_skipped += outcome.counters.index_skipped;
            report.index_residual_scanned += outcome.counters.index_residual_scanned;
            report.index_probed_types += outcome.counters.index_probed_types;
            report.index_residual_types += outcome.counters.index_residual_types;
            report.index_probe_micros += outcome.counters.index_probe_micros;
            report.shape_topk_skipped += outcome.counters.shape_topk_skipped;
            report.shape_agg_skipped += outcome.counters.shape_agg_skipped;
            report.netted_pages.extend(outcome.netted_pages);
            type_outcomes.extend(outcome.types);
        }
        type_outcomes.sort_unstable_by_key(|t| t.order);

        let mut affected: Vec<(QueryTypeId, Vec<Value>, VerdictCause)> = Vec::new();
        let mut observations: HashMap<QueryTypeId, TypeObservation> = HashMap::new();
        let mut per_type: BTreeMap<QueryTypeId, TypeSyncStat> = BTreeMap::new();
        for outcome in type_outcomes {
            let obs = observations.entry(outcome.ty_id).or_default();
            obs.poll_faults += outcome.poll_faults;
            obs.polls_attempted += outcome.polls_attempted;
            let stat = per_type.entry(outcome.ty_id).or_default();
            stat.id = outcome.ty_id;
            stat.polls_attempted += outcome.polls_attempted;
            stat.poll_faults += outcome.poll_faults;
            stat.index_candidates += outcome.index_candidates;
            stat.index_skipped += outcome.index_skipped;
            stat.index_residual += outcome.index_residual;
            stat.shape = self.registry.get(outcome.ty_id).shape;
            stat.shape_skipped += outcome.shape_skipped;
            affected.extend(outcome.affected);
            if let Some(micros) = outcome.record_micros {
                stat.analysis_micros += micros;
                self.registry
                    .get_mut(outcome.ty_id)
                    .stats
                    .record_analysis(micros);
            }
        }
        report.per_type = per_type.into_values().collect();

        // Advance the breaker with the sync point's aggregated evidence —
        // per-type sums, independent of shard assignment and join order.
        let events = self.breaker.observe_sync(&breaker_cfg, &observations);
        report.breaker_opened = events.opened;
        report.breaker_half_opened = events.half_opened;
        report.breaker_closed = events.closed;
        report.breaker_open_types = self.breaker.open_count();
        report.breaker_half_open_types = self.breaker.half_open_count();

        // Index-vs-scan differential mode: re-run the whole batch
        // sequentially with the index disabled against a fresh runner
        // (zero RTT, same fault plan — `poll_fault(key, attempt)` is a
        // pure function, and index-skipped instances never poll, so both
        // passes see identical poll outcomes) and count affected-set
        // divergences. The shadow pass reuses the up-front breaker
        // decisions and touches no registry/breaker state, so enabling
        // the mode never changes what the sync point ejects.
        if self.config.index_differential && self.config.predicate_index {
            let shadow_runner = PollRunner::with_rtt(
                &self.info,
                deltas,
                std::time::Duration::ZERO,
            )
            .with_fault_plan(self.config.fault.clone())
            .with_retry(self.config.poll_max_retries, std::time::Duration::ZERO);
            let all_types: Vec<(usize, QueryTypeId)> =
                candidate_types.iter().copied().enumerate().collect();
            let shadow = Self::analyze_types_shard(
                &self.registry,
                &self.policies,
                &self.config.policy,
                &self.info,
                &shadow_runner,
                db,
                deltas,
                &decisions,
                retry,
                &all_types,
                false,
                shape_rules,
            )?;
            let scan_set: BTreeSet<(QueryTypeId, Vec<Value>)> = shadow
                .types
                .iter()
                .flat_map(|t| t.affected.iter().map(|(id, p, _)| (*id, p.clone())))
                .collect();
            let index_set: BTreeSet<(QueryTypeId, Vec<Value>)> = affected
                .iter()
                .map(|(id, p, _)| (*id, p.clone()))
                .collect();
            report.index_divergences =
                scan_set.symmetric_difference(&index_set).count() as u64;
        }

        // Deliberately broken invalidation for harness acceptance: drop
        // every other affected instance so some stale pages survive sync
        // points. MUST never be enabled in a real build — the feature
        // exists to prove the fuzzer catches safety violations.
        #[cfg(feature = "canary")]
        {
            let mut keep = false;
            affected.retain(|_| {
                keep = !keep;
                keep
            });
        }
        report.polls = runner.stats();
        report.poll_lock_contended = runner.contended();
        Ok(affected)
    }

    /// Analyze one shard's query types. Runs on a worker thread (or inline
    /// for `workers == 1`); everything it touches is either shard-local or
    /// a shared `&` reference (`Registry`, `PolicyStore`, `InfoManager`,
    /// `PollRunner`, `Database`, `DeltaSet`).
    #[allow(clippy::too_many_arguments)]
    fn analyze_types_shard(
        registry: &Registry,
        policies: &PolicyStore,
        policy_cfg: &crate::policy::PolicyConfig,
        info: &InfoManager,
        runner: &PollRunner,
        db: &Database,
        deltas: &DeltaSet,
        decisions: &HashMap<QueryTypeId, BreakerDecision>,
        retry: RetrySettings,
        types: &[(usize, QueryTypeId)],
        use_index: bool,
        shape_rules: bool,
    ) -> DbResult<ShardOutcome> {
        let shard_started = std::time::Instant::now();
        let mut counters = ShardCounters::default();
        let mut out_types: Vec<TypeOutcome> = Vec::with_capacity(types.len());
        // Pages kept only by the aggregate netting shortcut; the orchestrator
        // guard-ejects the ones admitted mid-window (see InvalidationReport).
        let mut netted_pages: Vec<PageKey> = Vec::new();
        // Bound instances are compiled once per (type, params) and reused
        // across every delta tuple the shard analyzes.
        let mut bound_cache: HashMap<(QueryTypeId, Vec<Value>), BoundInstance> = HashMap::new();

        for &(order, ty_id) in types {
            let type_started = std::time::Instant::now();
            let policy = policies.policy_for(ty_id, policy_cfg);
            let breaker_degraded = decisions.get(&ty_id).copied()
                == Some(BreakerDecision::Degrade);
            // Retry budget is per type per sync point; a type lives wholly
            // within one shard, so the budget is shard-local state.
            let mut retry_budget = retry.budget_per_type;
            let faults_before = counters.poll_faults;
            let attempts_before = counters.polls_attempted;
            let ty = registry.get(ty_id);
            let ty_select = ty.select.clone();
            let ty_shape = ty.shape;
            let mut ty_shape_skipped = 0u64;
            // Predicate-index probe: map the delta tuples directly to the
            // instances they can affect. `Probe::Scan` (residual occurrence
            // touched, schema drift, missing FROM table) and table-level
            // types fall back to the full instance list — the index may
            // only skip work, never change verdicts.
            let mut ty_index_candidates = 0u64;
            let mut ty_index_skipped = 0u64;
            let mut ty_index_residual = 0u64;
            let probe_allowed = use_index && policy != InvalidationPolicy::TableLevel;
            let mut instances: Vec<Vec<Value>> = if probe_allowed {
                let probe = if registry.index_fully_residual(ty_id) {
                    Probe::Scan
                } else {
                    let probe_started = std::time::Instant::now();
                    let p = registry.probe_index(ty_id, deltas, db);
                    counters.index_probe_micros +=
                        probe_started.elapsed().as_micros() as u64;
                    p
                };
                match probe {
                    Probe::Candidates(cands) => {
                        counters.index_probed_types += 1;
                        let total = registry.instance_count(ty_id) as u64;
                        ty_index_candidates = cands.len() as u64;
                        ty_index_skipped = total.saturating_sub(ty_index_candidates);
                        counters.index_candidates += ty_index_candidates;
                        counters.index_skipped += ty_index_skipped;
                        cands
                    }
                    Probe::Scan => {
                        counters.index_residual_types += 1;
                        ty_index_residual = registry.instance_count(ty_id) as u64;
                        counters.index_residual_scanned += ty_index_residual;
                        registry
                            .instances_of(ty_id)
                            .map(|(params, _)| params.clone())
                            .collect()
                    }
                }
            } else {
                registry
                    .instances_of(ty_id)
                    .map(|(params, _)| params.clone())
                    .collect()
            };
            // Empty-type fast path, preserved from the scan-only days. When
            // the index skipped live instances the outcome is still pushed
            // so the per-type skip tallies reach the scorecards.
            if instances.is_empty() && ty_index_skipped == 0 {
                continue;
            }
            // The registry's instance map iterates in hash order (and probe
            // results come back in slot order); sort so the affected list
            // (and poll-source attribution within a type) is deterministic
            // run to run and across worker counts.
            instances.sort_unstable();

            let mut affected: Vec<(QueryTypeId, Vec<Value>, VerdictCause)> = Vec::new();
            let mut affected_set: HashSet<Vec<Value>> = HashSet::new();

            if policy == InvalidationPolicy::TableLevel {
                let read_touched: Vec<String> = ty_select
                    .from
                    .iter()
                    .map(|tref| tref.table.to_ascii_lowercase())
                    .filter(|t| deltas.for_table(t).is_some())
                    .collect();
                let detail = format!(
                    "table-level policy: update batch touched read table(s) {}",
                    read_touched.join(", ")
                );
                for params in instances {
                    counters.checked_instances += 1;
                    if affected_set.insert(params.clone()) {
                        affected.push((
                            ty_id,
                            params,
                            VerdictCause {
                                kind: VerdictKind::TableLevel,
                                detail: detail.clone(),
                            },
                        ));
                    }
                }
                out_types.push(TypeOutcome {
                    order,
                    ty_id,
                    affected,
                    record_micros: None,
                    poll_faults: 0,
                    polls_attempted: 0,
                    index_candidates: 0,
                    index_skipped: 0,
                    index_residual: 0,
                    shape_skipped: 0,
                });
                continue;
            }

            'instances: for params in instances {
                counters.checked_instances += 1;
                if affected_set.contains(&params) {
                    continue;
                }
                let key = (ty_id, params.clone());
                let inst = match bound_cache.entry(key) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        // Binding can fail if the schema changed under the
                        // registry (table/column dropped). Fail safe: the
                        // instance is considered affected — its pages get
                        // ejected and the next regeneration re-registers it
                        // against the current schema (or 500s honestly).
                        let bound = substitute_params(&ty_select, &params)
                            .and_then(|sel| BoundInstance::new(sel, db));
                        match bound {
                            Ok(inst) => e.insert(inst),
                            Err(err) => {
                                counters.bind_failures += 1;
                                affected_set.insert(params.clone());
                                affected.push((
                                    ty_id,
                                    params,
                                    VerdictCause {
                                        kind: VerdictKind::BindFailure,
                                        detail: format!(
                                            "instance no longer binds against the schema ({err}); failed safe"
                                        ),
                                    },
                                ));
                                continue 'instances;
                            }
                        }
                    }
                };

                // Per-shape decision rules (TopK boundary, aggregate delta).
                // Only under the Exact policy with a healthy poll path —
                // Conservative/TableLevel and an open breaker keep the
                // paper's behavior untouched. A shape rule may resolve the
                // instance (skip it or eject with a shape verdict) or fall
                // back to the conventional per-occurrence loop below; it
                // never ejects an instance the conventional path would keep.
                if shape_rules
                    && policy == InvalidationPolicy::Exact
                    && !breaker_degraded
                    && matches!(ty_shape, QueryShape::TopK | QueryShape::Aggregate)
                {
                    let decision = match ty_shape {
                        QueryShape::TopK => {
                            let boundary = registry
                                .pages_of(ty_id, &params)
                                .and_then(|data| data.boundary.clone());
                            match (boundary, topk_spec(&inst.select, db)) {
                                (Some(boundary), Some(spec)) => {
                                    Self::decide_topk(inst, &spec, &boundary, deltas, &mut counters)?
                                }
                                _ => ShapeDecision::Fallback,
                            }
                        }
                        QueryShape::Aggregate => match agg_spec(&inst.select, db) {
                            Some(spec) => {
                                Self::decide_aggregate(inst, &spec, deltas, &mut counters)?
                            }
                            None => ShapeDecision::Fallback,
                        },
                        _ => unreachable!("guarded by the matches! above"),
                    };
                    match decision {
                        ShapeDecision::Fallback => {}
                        ShapeDecision::NoImpact { shape_skip } => {
                            if shape_skip {
                                ty_shape_skipped += 1;
                                match ty_shape {
                                    QueryShape::TopK => counters.shape_topk_skipped += 1,
                                    QueryShape::Aggregate => {
                                        counters.shape_agg_skipped += 1;
                                        // The netting proof only holds for pages
                                        // that existed at the interval endpoints;
                                        // report these so the orchestrator can
                                        // guard-eject any admitted mid-window.
                                        if let Some(data) = registry.pages_of(ty_id, &params) {
                                            netted_pages.extend(data.pages.iter().cloned());
                                        }
                                    }
                                    _ => {}
                                }
                            }
                            continue 'instances;
                        }
                        ShapeDecision::Affected(cause) => {
                            affected_set.insert(params.clone());
                            affected.push((ty_id, params, cause));
                            continue 'instances;
                        }
                    }
                }

                for (occ, tref) in inst.select.from.iter().enumerate() {
                    let Some(delta) = deltas.for_table(&tref.table) else {
                        continue;
                    };
                    let cause = if policy_cfg.batch_polls {
                        Self::decide_batched(
                            policy_cfg,
                            info,
                            runner,
                            db,
                            inst,
                            occ,
                            delta,
                            policy,
                            breaker_degraded,
                            retry,
                            &mut retry_budget,
                            &mut counters,
                        )?
                    } else {
                        Self::decide_per_tuple(
                            policy_cfg,
                            info,
                            runner,
                            db,
                            inst,
                            occ,
                            delta,
                            policy,
                            breaker_degraded,
                            retry,
                            &mut retry_budget,
                            &mut counters,
                        )?
                    };
                    if let Some(cause) = cause {
                        affected_set.insert(params.clone());
                        affected.push((ty_id, params, cause));
                        continue 'instances;
                    }
                }
            }
            out_types.push(TypeOutcome {
                order,
                ty_id,
                affected,
                record_micros: Some(type_started.elapsed().as_micros() as u64),
                poll_faults: counters.poll_faults - faults_before,
                polls_attempted: counters.polls_attempted - attempts_before,
                index_candidates: ty_index_candidates,
                index_skipped: ty_index_skipped,
                index_residual: ty_index_residual,
                shape_skipped: ty_shape_skipped,
            });
        }
        Ok(ShardOutcome {
            types: out_types,
            counters,
            elapsed_micros: shard_started.elapsed().as_micros() as u64,
            netted_pages,
        })
    }

    /// TopK boundary rule. `boundary` is the first ORDER BY key of the k-th
    /// row of the *post-batch* result (refreshed by the shape pre-pass; only
    /// stored when the result was full). A delta tuple whose key sorts
    /// strictly beyond the boundary can neither enter the top-k (it sorts
    /// after k surviving rows) nor displace it (the post-state top-k rows
    /// all pre-existed the batch, and the engine's ORDER BY breaks key ties
    /// by full row content, so their relative order is a pure function of
    /// the row set) — whether or not the tuple matches the WHERE clause.
    /// Ties and missing keys stay conservative; a tuple that lands at or
    /// inside the boundary and matches locally ejects with
    /// [`VerdictKind::TopKBoundary`].
    fn decide_topk(
        inst: &BoundInstance,
        spec: &TopKSpec,
        boundary: &Value,
        deltas: &DeltaSet,
        counters: &mut ShardCounters,
    ) -> DbResult<ShapeDecision> {
        use std::cmp::Ordering;
        let table = &inst.select.from[0].table;
        let Some(delta) = deltas.for_table(table) else {
            return Ok(ShapeDecision::Fallback);
        };
        let mut used_boundary = false;
        for (tuple, is_insert) in delta.tuples() {
            counters.tuples_analyzed += 1;
            let impact = analyze_tuple(inst, 0, tuple)?;
            if matches!(impact, TupleImpact::NoImpact) {
                counters.local_decisions += 1;
                continue;
            }
            // Strictly beyond the boundary in sort direction, under the
            // engine's own comparator (`Value::cmp`, same as its ORDER BY).
            let beyond = tuple
                .get(spec.order_col)
                .map(|key| {
                    let ord = key.cmp(boundary);
                    if spec.ascending {
                        ord == Ordering::Greater
                    } else {
                        ord == Ordering::Less
                    }
                })
                .unwrap_or(false);
            if beyond {
                used_boundary = true;
                counters.local_decisions += 1;
                continue;
            }
            match impact {
                TupleImpact::Affected => {
                    counters.local_decisions += 1;
                    return Ok(ShapeDecision::Affected(VerdictCause {
                        kind: VerdictKind::TopKBoundary,
                        detail: format!(
                            "{} tuple in `{table}` lands at or inside the top-{} boundary ({})",
                            if is_insert { "Δ⁺ inserted" } else { "Δ⁻ deleted" },
                            spec.k,
                            boundary,
                        ),
                    }));
                }
                // A matching tuple we can neither decide locally nor prune
                // by the boundary: hand the whole instance back to the
                // conventional polling path.
                TupleImpact::NeedsPoll(_) => return Ok(ShapeDecision::Fallback),
                TupleImpact::NoImpact => unreachable!("handled above"),
            }
        }
        Ok(ShapeDecision::NoImpact {
            shape_skip: used_boundary,
        })
    }

    /// Aggregate value-preserving rule: collect the delta tuples that match
    /// the instance's predicates and judge whether they leave every group's
    /// row count and every tracked aggregate provably unchanged. Unchanged
    /// keeps the page cached; anything else ejects with
    /// [`VerdictKind::AggregateDelta`] (including judgements the exactness
    /// argument cannot cover — those never convert to NoImpact).
    fn decide_aggregate(
        inst: &BoundInstance,
        spec: &AggSpec,
        deltas: &DeltaSet,
        counters: &mut ShardCounters,
    ) -> DbResult<ShapeDecision> {
        let table = &inst.select.from[0].table;
        let Some(delta) = deltas.for_table(table) else {
            return Ok(ShapeDecision::Fallback);
        };
        let mut matching: Vec<(&cacheportal_db::table::Row, bool)> = Vec::new();
        for (tuple, is_insert) in delta.tuples() {
            counters.tuples_analyzed += 1;
            match analyze_tuple(inst, 0, tuple)? {
                TupleImpact::NoImpact => counters.local_decisions += 1,
                TupleImpact::Affected => matching.push((tuple, is_insert)),
                TupleImpact::NeedsPoll(_) => return Ok(ShapeDecision::Fallback),
            }
        }
        if matching.is_empty() {
            return Ok(ShapeDecision::NoImpact { shape_skip: false });
        }
        counters.local_decisions += 1;
        match judge_aggregate_delta(spec, &matching) {
            AggJudgement::Unchanged => Ok(ShapeDecision::NoImpact { shape_skip: true }),
            AggJudgement::Changed(detail) => Ok(ShapeDecision::Affected(VerdictCause {
                kind: VerdictKind::AggregateDelta,
                detail: format!("matching delta changes the aggregate: {detail}"),
            })),
            AggJudgement::Unprovable(detail) => Ok(ShapeDecision::Affected(VerdictCause {
                kind: VerdictKind::AggregateDelta,
                detail: format!("aggregate delta not provably unchanged: {detail}"),
            })),
        }
    }

    /// Per-tuple decision loop (grouping disabled): one poll per surviving
    /// delta tuple. Returns the verdict that proved impact, or `None`.
    #[allow(clippy::too_many_arguments)]
    fn decide_per_tuple(
        policy_cfg: &crate::policy::PolicyConfig,
        info: &InfoManager,
        runner: &PollRunner,
        db: &Database,
        inst: &BoundInstance,
        occ: usize,
        delta: &crate::delta::TableDelta,
        policy: InvalidationPolicy,
        breaker_degraded: bool,
        retry: RetrySettings,
        retry_budget: &mut u64,
        counters: &mut ShardCounters,
    ) -> DbResult<Option<VerdictCause>> {
        let table = &inst.select.from[occ].table;
        for (tuple, is_insert) in delta.tuples() {
            counters.tuples_analyzed += 1;
            let impact = analyze_tuple(inst, occ, tuple)?;
            let hit = match impact {
                TupleImpact::NoImpact => {
                    counters.local_decisions += 1;
                    None
                }
                TupleImpact::Affected => {
                    counters.local_decisions += 1;
                    Some(VerdictCause {
                        kind: VerdictKind::LocalPredicate,
                        detail: format!(
                            "{} tuple in `{table}` satisfies the instance's local predicates",
                            if is_insert { "Δ⁺ inserted" } else { "Δ⁻ deleted" }
                        ),
                    })
                }
                TupleImpact::NeedsPoll(poll) => Self::run_poll(
                    policy_cfg,
                    info,
                    runner,
                    db,
                    &poll,
                    !is_insert,
                    policy,
                    breaker_degraded,
                    retry,
                    retry_budget,
                    counters,
                )?,
            };
            if hit.is_some() {
                return Ok(hit);
            }
        }
        Ok(None)
    }

    /// Grouped decision (§4.2.1): inserts and deletes are batched separately
    /// (the correlated-delete guard only applies to deletions), each batch
    /// producing at most ⌈n / max_or_terms⌉ polls.
    #[allow(clippy::too_many_arguments)]
    fn decide_batched(
        policy_cfg: &crate::policy::PolicyConfig,
        info: &InfoManager,
        runner: &PollRunner,
        db: &Database,
        inst: &BoundInstance,
        occ: usize,
        delta: &crate::delta::TableDelta,
        policy: InvalidationPolicy,
        breaker_degraded: bool,
        retry: RetrySettings,
        retry_budget: &mut u64,
        counters: &mut ShardCounters,
    ) -> DbResult<Option<VerdictCause>> {
        let table = &inst.select.from[occ].table;
        let groups: [(&[cacheportal_db::table::Row], bool); 2] =
            [(&delta.inserted, false), (&delta.deleted, true)];
        for (rows, was_delete) in groups {
            if rows.is_empty() {
                continue;
            }
            counters.tuples_analyzed += rows.len() as u64;
            let refs: Vec<&cacheportal_db::table::Row> = rows.iter().collect();
            let (impact, _survivors) = analyze_tuple_batch(
                inst,
                occ,
                &refs,
                policy_cfg.max_or_terms_per_poll.max(1),
            )?;
            let hit = match impact {
                BatchImpact::NoImpact => {
                    counters.local_decisions += 1;
                    None
                }
                BatchImpact::Affected => {
                    counters.local_decisions += 1;
                    Some(VerdictCause {
                        kind: VerdictKind::LocalPredicate,
                        detail: format!(
                            "{} batch of {} tuple(s) in `{table}` satisfies the instance's local predicates",
                            if was_delete { "Δ⁻ deleted" } else { "Δ⁺ inserted" },
                            rows.len()
                        ),
                    })
                }
                BatchImpact::NeedsPolls(polls) => {
                    let mut any = None;
                    for poll in &polls {
                        if let Some(cause) = Self::run_poll(
                            policy_cfg,
                            info,
                            runner,
                            db,
                            poll,
                            was_delete,
                            policy,
                            breaker_degraded,
                            retry,
                            retry_budget,
                            counters,
                        )? {
                            any = Some(cause);
                            break;
                        }
                    }
                    any
                }
            };
            if hit.is_some() {
                return Ok(hit);
            }
        }
        Ok(None)
    }

    /// Execute one polling decision under the policy and budget.
    ///
    /// With `workers > 1` the budget check reads a cross-shard atomic, so
    /// degradation kicks in *approximately* at the configured budget (a few
    /// polls may race past it). That only trades poll volume against
    /// precision in the direction the budget already trades it; outcome
    /// equivalence is guaranteed for the default unbudgeted configuration.
    #[allow(clippy::too_many_arguments)]
    fn run_poll(
        policy_cfg: &crate::policy::PolicyConfig,
        info: &InfoManager,
        runner: &PollRunner,
        db: &Database,
        poll: &crate::analysis::PollingQuery,
        tuple_was_delete: bool,
        policy: InvalidationPolicy,
        breaker_degraded: bool,
        retry: RetrySettings,
        retry_budget: &mut u64,
        counters: &mut ShardCounters,
    ) -> DbResult<Option<VerdictCause>> {
        if breaker_degraded {
            // Open breaker: the polling path is judged unhealthy, so the
            // type runs the paper's no-polling conservative policy — local
            // checks still decided NoImpact/Affected above; anything that
            // would need the DBMS is assumed affected.
            counters.breaker_degraded += 1;
            return Ok(Some(VerdictCause {
                kind: VerdictKind::BreakerDegraded,
                detail: format!(
                    "circuit breaker open for this query type; assumed affected without polling: {}",
                    poll.sql
                ),
            }));
        }
        match policy {
            InvalidationPolicy::Conservative => Ok(Some(VerdictCause {
                kind: VerdictKind::Conservative,
                detail: format!("conservative policy assumed affected, skipping poll: {}", poll.sql),
            })),
            InvalidationPolicy::Exact => {
                let over_budget = policy_cfg
                    .poll_budget_per_sync
                    .is_some_and(|b| runner.stats().issued >= b);
                if over_budget && info.try_answer(poll).is_none() {
                    // Budget exhausted and no free answer: degrade to
                    // Conservative (§4.2.2's quality/real-time trade-off).
                    counters.degraded_by_budget += 1;
                    Ok(Some(VerdictCause {
                        kind: VerdictKind::BudgetDegraded,
                        detail: format!("poll budget exhausted; assumed affected instead of polling: {}", poll.sql),
                    }))
                } else {
                    // Retries come out of the type's per-sync budget: once
                    // it is spent, remaining polls fail on the first fault.
                    let allowance = (retry.max_retries as u64).min(*retry_budget) as u32;
                    counters.polls_attempted += 1;
                    match runner.decide_with_allowance(db, poll, tuple_was_delete, allowance) {
                        Ok((answer, retries_spent)) => {
                            *retry_budget = retry_budget.saturating_sub(retries_spent as u64);
                            Ok(answer.map(|answer| VerdictCause {
                                kind: answer.into(),
                                detail: match answer {
                                    PollAnswer::Issued => format!("polling query found matching rows: {}", poll.sql),
                                    PollAnswer::FromCache => format!("deduplicated poll already answered yes this sync point: {}", poll.sql),
                                    PollAnswer::FromIndex => format!("maintained index answered the poll: {}", poll.sql),
                                    PollAnswer::DeleteGuard => format!("correlated same-batch deletion of a join partner; poll was: {}", poll.sql),
                                },
                            }))
                        }
                        // A failed poll left the question unanswered; the
                        // only safe answer is "affected". Never converts a
                        // would-be Invalidate to NoInvalidate — the fault
                        // can only add invalidations.
                        Err(cacheportal_db::DbError::Faulted(msg)) => {
                            *retry_budget = retry_budget.saturating_sub(allowance as u64);
                            counters.poll_faults += 1;
                            Ok(Some(VerdictCause {
                                kind: VerdictKind::PollFault,
                                detail: format!(
                                    "poll failed ({msg}); assumed affected as the conservative fallback"
                                ),
                            }))
                        }
                        Err(other) => Err(other),
                    }
                }
            }
            InvalidationPolicy::TableLevel => unreachable!("handled before analysis"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 4.1 deployment: registry fed through a QI/URL map.
    fn setup() -> (Database, QiUrlMap, Invalidator) {
        let mut db = Database::new();
        db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT)")
            .unwrap();
        db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT)")
            .unwrap();
        db.execute("INSERT INTO Car VALUES ('Honda','Civic',18000)")
            .unwrap();
        db.execute("INSERT INTO Mileage VALUES ('Civic', 36.5), ('Avalon', 28.0)")
            .unwrap();

        let map = QiUrlMap::new();
        map.insert(
            "SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage \
             WHERE Car.model = Mileage.model AND Car.price < 20000"
                .to_string(),
            PageKey::raw("URL1"),
            "carSearch".to_string(),
        );
        let mut inv = Invalidator::new(InvalidatorConfig::default());
        // Consume the seeding inserts so tests start from a clean slate.
        let report_db = db;
        inv.run_sync_point(&report_db, &map).unwrap();
        (report_db, map, inv)
    }

    #[test]
    fn paper_example_4_1_end_to_end() {
        let (mut db, map, mut inv) = setup();

        // Insert (Mitsubishi, Eclipse, 20000): fails price < 20000 → no
        // invalidation, and no polling needed.
        db.execute("INSERT INTO Car VALUES ('Mitsubishi','Eclipse',20000)")
            .unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.is_empty());
        assert_eq!(r.polls.issued, 0, "decided locally");

        // Insert (Toyota, Avalon, 15000): passes the local check; polling
        // Mileage for 'Avalon' finds a row → URL1 invalidated.
        db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',15000)")
            .unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.contains(&PageKey::raw("URL1")));
        assert_eq!(r.polls.issued, 1);

        // Insert (Dodge, Viper, 15000): passes price but no Mileage row →
        // poll comes back empty → no invalidation.
        db.execute("INSERT INTO Car VALUES ('Dodge','Viper',15000)")
            .unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.is_empty());
        assert_eq!(r.polls.issued, 1);
    }

    #[test]
    fn report_carries_verdict_provenance() {
        let (mut db, map, mut inv) = setup();
        // Poll-decided invalidation: the verdict names the polling query.
        db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',15000)")
            .unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert_eq!(r.verdicts.len(), 1);
        let v = &r.verdicts[0];
        assert_eq!(v.type_id, QueryTypeId(0));
        assert!(v.type_sql.to_ascii_lowercase().contains("from car, mileage"));
        assert_eq!(v.cause.kind, VerdictKind::PollingQuery);
        assert!(v.cause.detail.to_ascii_lowercase().contains("select count"));
        assert_eq!(v.pages, vec![PageKey::raw("URL1")]);
        // LSN range covers exactly the consumed record; ΔR groups name Car.
        let (first, last) = r.lsn_range.unwrap();
        assert_eq!(first, last);
        assert_eq!(r.delta_groups.len(), 1);
        assert_eq!(r.delta_groups[0].table, "car");
        assert_eq!(r.delta_groups[0].inserted, 1);
        assert_eq!(r.delta_groups[0].deleted, 0);

        // A negative sync point produces no verdicts and a fresh LSN range.
        db.execute("INSERT INTO Car VALUES ('Dodge','Viper',99999)")
            .unwrap();
        let r2 = inv.run_sync_point(&db, &map).unwrap();
        assert!(r2.verdicts.is_empty());
        assert_eq!(r2.lsn_range.unwrap().0, last + 1);
    }

    #[test]
    fn verdict_kinds_follow_the_decision_path() {
        // Conservative: poll skipped, verdict says so.
        let (mut db, map, mut inv) = setup();
        inv.set_policy(QueryTypeId(0), InvalidationPolicy::Conservative);
        db.execute("INSERT INTO Car VALUES ('Dodge','Viper',15000)").unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert_eq!(r.verdicts[0].cause.kind, VerdictKind::Conservative);

        // Table-level: any touch of a read table.
        let (mut db, map, mut inv) = setup();
        inv.set_policy(QueryTypeId(0), InvalidationPolicy::TableLevel);
        db.execute("INSERT INTO Car VALUES ('Mitsubishi','Eclipse',20000)").unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert_eq!(r.verdicts[0].cause.kind, VerdictKind::TableLevel);
        assert!(r.verdicts[0].cause.detail.contains("car"));

        // Budget degradation.
        let (mut db, map, mut inv) = setup();
        inv.config.policy.poll_budget_per_sync = Some(0);
        db.execute("INSERT INTO Car VALUES ('Dodge','Viper',15000)").unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert_eq!(r.verdicts[0].cause.kind, VerdictKind::BudgetDegraded);

        // Maintained index answering the poll affirmatively.
        let (mut db, map, mut inv) = setup();
        inv.maintain_index(&db, "Mileage", "model").unwrap();
        db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',15000)").unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert_eq!(r.verdicts[0].cause.kind, VerdictKind::MaintainedIndex);

        // Local predicate only: deleting a Mileage partner row decides via
        // the delete guard or locally; bind failure path is separate.
        let (mut db, map, mut inv) = setup();
        db.execute("DROP TABLE Mileage").unwrap();
        db.execute("CREATE TABLE Unrelated (x INT)").unwrap();
        db.execute("INSERT INTO Car VALUES ('m','x',1)").unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert_eq!(r.verdicts[0].cause.kind, VerdictKind::BindFailure);
    }

    #[test]
    fn conservative_policy_skips_polls_but_over_invalidates() {
        let (mut db, map, mut inv) = setup();
        let id = QueryTypeId(0);
        inv.set_policy(id, InvalidationPolicy::Conservative);
        db.execute("INSERT INTO Car VALUES ('Dodge','Viper',15000)")
            .unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.contains(&PageKey::raw("URL1")), "over-invalidated");
        assert_eq!(r.polls.issued, 0);
    }

    #[test]
    fn table_level_policy_ignores_predicates() {
        let (mut db, map, mut inv) = setup();
        inv.set_policy(QueryTypeId(0), InvalidationPolicy::TableLevel);
        db.execute("INSERT INTO Car VALUES ('Mitsubishi','Eclipse',20000)")
            .unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(
            r.pages.contains(&PageKey::raw("URL1")),
            "even a non-matching tuple invalidates at table level"
        );
    }

    #[test]
    fn maintained_index_avoids_dbms_polls() {
        let (mut db, map, mut inv) = setup();
        inv.maintain_index(&db, "Mileage", "model").unwrap();
        db.execute("INSERT INTO Car VALUES ('Dodge','Viper',15000)")
            .unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.is_empty());
        assert_eq!(r.polls.issued, 0);
        assert_eq!(r.polls.from_index, 1);
    }

    #[test]
    fn poll_budget_degrades_to_conservative() {
        let (mut db, map, mut inv) = setup();
        inv.config.policy.poll_budget_per_sync = Some(0);
        db.execute("INSERT INTO Car VALUES ('Dodge','Viper',15000)")
            .unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.contains(&PageKey::raw("URL1")));
        assert_eq!(r.polls.issued, 0);
        assert_eq!(r.degraded_by_budget, 1);
    }

    #[test]
    fn update_of_joined_table_invalidates() {
        let (mut db, map, mut inv) = setup();
        // Mileage side: deleting Civic's row changes URL1's join result.
        db.execute("DELETE FROM Mileage WHERE model = 'Civic'")
            .unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.contains(&PageKey::raw("URL1")));
    }

    #[test]
    fn irrelevant_table_does_not_invalidate() {
        let (mut db, map, mut inv) = setup();
        db.execute("CREATE TABLE Unrelated (x INT)").unwrap();
        db.execute("INSERT INTO Unrelated VALUES (1)").unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.is_empty());
        assert_eq!(r.checked_instances, 0);
    }

    #[test]
    fn no_updates_means_empty_report_but_registration_happens() {
        let (db, map, mut inv) = setup();
        map.insert(
            "SELECT * FROM Car WHERE price < 99".to_string(),
            PageKey::raw("URL2"),
            "s".to_string(),
        );
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert_eq!(r.registered, 1);
        assert!(r.pages.is_empty());
        assert_eq!(r.records_consumed, 0);
    }

    #[test]
    fn multiple_instances_share_one_poll() {
        let (mut db, map, mut inv) = setup();
        // Two instances of the same type with different prices, both above
        // the inserted tuple's price → identical residual poll.
        map.insert(
            "SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage \
             WHERE Car.model = Mileage.model AND Car.price < 30000"
                .to_string(),
            PageKey::raw("URL3"),
            "carSearch".to_string(),
        );
        db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',15000)")
            .unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.contains(&PageKey::raw("URL1")));
        assert!(r.pages.contains(&PageKey::raw("URL3")));
        assert_eq!(r.polls.issued, 1, "identical residuals deduplicated");
        assert_eq!(r.polls.from_cache, 1);
    }

    #[test]
    fn batched_polls_decide_whole_update_bursts() {
        let (mut db, map, mut inv) = setup();
        assert!(inv.config().policy.batch_polls);
        // Ten cars passing the price bound, none with Mileage partners →
        // one OR-combined poll, no invalidation.
        for i in 0..10 {
            db.execute(&format!("INSERT INTO Car VALUES ('m','ghost{i}',15000)"))
                .unwrap();
        }
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.is_empty());
        assert_eq!(r.polls.issued, 1, "one poll for the whole burst");
        assert_eq!(r.tuples_analyzed, 10);

        // Same burst, one matching tuple hidden inside → invalidated, still
        // a single poll.
        for i in 0..9 {
            db.execute(&format!("INSERT INTO Car VALUES ('m','ghost2{i}',15000)"))
                .unwrap();
        }
        db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',15000)")
            .unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.contains(&PageKey::raw("URL1")));
        assert_eq!(r.polls.issued, 1);
    }

    #[test]
    fn batched_and_per_tuple_agree_on_outcome() {
        for batch in [false, true] {
            let (mut db, map, mut inv) = setup();
            inv.config.policy.batch_polls = batch;
            for i in 0..5 {
                db.execute(&format!("INSERT INTO Car VALUES ('m','nope{i}',15000)"))
                    .unwrap();
            }
            db.execute("INSERT INTO Car VALUES ('x','Civic',19999)").unwrap();
            db.execute("DELETE FROM Mileage WHERE model = 'Avalon'").unwrap();
            let r = inv.run_sync_point(&db, &map).unwrap();
            assert!(
                r.pages.contains(&PageKey::raw("URL1")),
                "batch={batch}: Civic insert affects URL1"
            );
            if !batch {
                assert!(r.polls.issued > 1, "per-tuple mode polls per tuple");
            }
        }
    }

    #[test]
    fn or_term_chunking_caps_poll_size() {
        let (mut db, map, mut inv) = setup();
        inv.config.policy.max_or_terms_per_poll = 4;
        // 10 surviving tuples → ⌈10/4⌉ = 3 polls (none matching, so all run).
        for i in 0..10 {
            db.execute(&format!("INSERT INTO Car VALUES ('m','zz{i}',15000)"))
                .unwrap();
        }
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert_eq!(r.polls.issued, 3);
        assert!(r.pages.is_empty());
    }

    #[test]
    fn dropped_table_fails_safe_by_ejecting_dependent_pages() {
        let (mut db, map, mut inv) = setup();
        // URL1 depends on Car ⋈ Mileage; drop Mileage out from under it.
        db.execute("DROP TABLE Mileage").unwrap();
        db.execute("CREATE TABLE Unrelated (x INT)").unwrap();
        // Any update to Car forces analysis of URL1's instance.
        db.execute("INSERT INTO Car VALUES ('m','x',1)").unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert_eq!(r.bind_failures, 1);
        assert!(
            r.pages.contains(&PageKey::raw("URL1")),
            "schema change must eject, not error"
        );
    }

    #[test]
    fn compacted_deltas_skip_self_cancelling_bursts() {
        let (mut db, map, mut inv) = setup();
        inv.config.policy.compact_deltas = true;
        // Insert-then-delete of an impactful row within one interval: with
        // compaction the batch nets to nothing and no analysis work happens.
        db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',15000)").unwrap();
        db.execute("DELETE FROM Car WHERE model = 'Avalon' AND price = 15000").unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert_eq!(r.records_consumed, 2);
        assert_eq!(r.tuples_analyzed, 0);
        assert!(r.pages.is_empty());

        // Without compaction the same burst costs analysis and invalidates.
        let (mut db2, map2, mut inv2) = setup();
        db2.execute("INSERT INTO Car VALUES ('Toyota','Avalon',15000)").unwrap();
        db2.execute("DELETE FROM Car WHERE model = 'Avalon' AND price = 15000").unwrap();
        let r2 = inv2.run_sync_point(&db2, &map2).unwrap();
        assert!(r2.tuples_analyzed > 0);
        assert!(r2.pages.contains(&PageKey::raw("URL1")), "conservative endpoint");
    }

    #[test]
    fn batched_delete_guard_still_fires() {
        let (mut db, map, mut inv) = setup();
        // Delete both the Car row and its Mileage partner in one batch:
        // post-state polls find nothing; the guard must still invalidate.
        db.execute("DELETE FROM Car WHERE model = 'Civic'").unwrap();
        db.execute("DELETE FROM Mileage WHERE model = 'Civic'").unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(
            r.pages.contains(&PageKey::raw("URL1")),
            "correlated same-batch deletes must invalidate"
        );
    }

    #[test]
    fn per_type_analysis_timing_is_recorded() {
        let (mut db, map, mut inv) = setup();
        // setup() already consumed the seeding batch (update_batches == 1).
        db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',15000)").unwrap();
        inv.run_sync_point(&db, &map).unwrap();
        let stats = &inv.registry().get(QueryTypeId(0)).stats;
        assert_eq!(stats.update_batches, 2);
        assert!(stats.max_analysis_micros >= stats.avg_analysis_micros() as u64);
        // A further batch accumulates.
        db.execute("INSERT INTO Car VALUES ('Honda','Fit',12000)").unwrap();
        inv.run_sync_point(&db, &map).unwrap();
        let stats = &inv.registry().get(QueryTypeId(0)).stats;
        assert_eq!(stats.update_batches, 3);
        assert!(stats.total_analysis_micros >= stats.max_analysis_micros);
    }

    #[test]
    fn policy_discovery_marks_hot_types_non_cacheable() {
        let (mut db, map, mut inv) = setup();
        inv.config.policy.non_cacheable_invalidation_ratio = Some(0.5);
        inv.config.policy.min_batches_for_ratio = 2;
        for i in 0..3 {
            db.execute(&format!(
                "INSERT INTO Car VALUES ('Toyota','Avalon',{})",
                1000 + i
            ))
            .unwrap();
            inv.run_sync_point(&db, &map).unwrap();
        }
        let ty = inv.registry().get(QueryTypeId(0));
        assert!(!ty.cacheable, "every batch invalidated the only instance");
    }

    /// End-to-end breaker walk through real sync points: a fully faulty
    /// DBMS trips the type open, the next sync degrades without touching
    /// the poll path, and once the DBMS heals the half-open probe closes
    /// the breaker again.
    #[test]
    fn breaker_degrades_and_recovers_across_sync_points() {
        let (mut db, map, mut inv) = setup();
        inv.config.breaker = crate::breaker::BreakerConfig {
            enabled: true,
            fault_threshold: 1,
            cooldown_syncs: 1,
        };
        inv.config.fault = cacheportal_db::FaultPlan::new(cacheportal_db::FaultSpec {
            poll_error: 1.0,
            ..cacheportal_db::FaultSpec::default()
        });

        // Sync 1: the poll faults on every attempt (retries included), the
        // instance fails safe, and the breaker trips open.
        db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',15000)")
            .unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert_eq!(r.poll_faults, 1);
        assert_eq!(r.verdicts[0].cause.kind, VerdictKind::PollFault);
        assert!(r.pages.contains(&PageKey::raw("URL1")));
        assert_eq!((r.breaker_opened, r.breaker_open_types), (1, 1));

        // Sync 2: degraded — no poll reaches the DBMS, the verdict says so,
        // and the elapsed cooldown moves the breaker to half-open.
        db.execute("INSERT INTO Car VALUES ('Honda','Fit',12000)")
            .unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert_eq!(r.verdicts[0].cause.kind, VerdictKind::BreakerDegraded);
        assert_eq!(r.breaker_degraded, 1);
        assert_eq!((r.polls.issued, r.polls.faulted), (0, 0));
        assert_eq!(r.breaker_half_opened, 1);
        assert_eq!(r.breaker_half_open_types, 1);

        // Sync 3: the DBMS healed; the half-open probe polls cleanly and
        // the breaker closes.
        inv.config.fault = cacheportal_db::FaultPlan::none();
        db.execute("INSERT INTO Car VALUES ('Toyota','Camry',14000)")
            .unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert_eq!(r.breaker_closed, 1);
        assert_eq!((r.breaker_open_types, r.breaker_half_open_types), (0, 0));
        assert_eq!(r.poll_faults, 0);
        assert!(r.polls.issued >= 1, "probe actually reached the DBMS");
    }

    /// Breaker verdicts and transitions are identical across worker counts
    /// (the PR 3 parallel-equivalence property extends to degradation).
    #[test]
    fn breaker_behavior_is_worker_count_independent() {
        let runs: Vec<Vec<(u64, u64, u64, usize)>> = [1usize, 4]
            .iter()
            .map(|&workers| {
                let (mut db, map, mut inv) = setup();
                inv.config.workers = workers;
                inv.config.breaker = crate::breaker::BreakerConfig {
                    enabled: true,
                    fault_threshold: 1,
                    cooldown_syncs: 1,
                };
                inv.config.fault =
                    cacheportal_db::FaultPlan::new(cacheportal_db::FaultSpec {
                        poll_error: 1.0,
                        ..cacheportal_db::FaultSpec::default()
                    });
                let mut trace = Vec::new();
                for i in 0..4 {
                    if i == 2 {
                        inv.config.fault = cacheportal_db::FaultPlan::none();
                    }
                    db.execute(&format!(
                        "INSERT INTO Car VALUES ('Toyota','Avalon',{})",
                        1000 + i
                    ))
                    .unwrap();
                    let r = inv.run_sync_point(&db, &map).unwrap();
                    trace.push((
                        r.breaker_opened,
                        r.breaker_closed,
                        r.breaker_degraded,
                        r.pages.len(),
                    ));
                }
                trace
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    /// A single-table equality type: the index skips every instance whose
    /// bound parameter the delta tuple cannot satisfy, and the verdict set
    /// is identical with the index off.
    #[test]
    fn predicate_index_skips_unaffected_equality_instances() {
        let run = |use_index: bool| {
            let mut db = Database::new();
            db.execute("CREATE TABLE T (k INT, v INT)").unwrap();
            let map = QiUrlMap::new();
            for i in 0..50 {
                map.insert(
                    format!("SELECT v FROM T WHERE T.k = {i}"),
                    PageKey::raw(&format!("p{i}")),
                    "s".to_string(),
                );
            }
            let mut inv = Invalidator::new(InvalidatorConfig {
                predicate_index: use_index,
                ..InvalidatorConfig::default()
            });
            inv.run_sync_point(&db, &map).unwrap();
            db.execute("INSERT INTO T VALUES (7, 1)").unwrap();
            let r = inv.run_sync_point(&db, &map).unwrap();
            let mut pages: Vec<PageKey> = r.pages.iter().cloned().collect();
            pages.sort_unstable();
            (pages, r.checked_instances, r.index_skipped)
        };
        let (pages_on, checked_on, skipped_on) = run(true);
        let (pages_off, checked_off, skipped_off) = run(false);
        assert_eq!(pages_on, vec![PageKey::raw("p7")]);
        assert_eq!(pages_on, pages_off, "index must not change verdicts");
        assert_eq!(skipped_off, 0);
        assert_eq!(skipped_on, 49, "49 of 50 instances provably unaffected");
        assert_eq!(checked_on, 1, "only the candidate runs the decision");
        assert_eq!(checked_off, 50, "the scan walks everything");
    }

    /// Differential mode re-runs the scan and reports zero divergences on
    /// a mixed equality/range/join workload (including polls).
    #[test]
    fn differential_mode_reports_zero_divergences() {
        let (mut db, map, mut inv) = setup();
        inv.config.index_differential = true;
        map.insert(
            "SELECT model FROM Car WHERE Car.price < 19000".to_string(),
            PageKey::raw("URL2"),
            "cheap".to_string(),
        );
        map.insert(
            "SELECT model FROM Car WHERE Car.maker = 'Toyota'".to_string(),
            PageKey::raw("URL3"),
            "maker".to_string(),
        );
        for sql in [
            "INSERT INTO Car VALUES ('Toyota','Avalon',15000)",
            "INSERT INTO Car VALUES ('Dodge','Viper',99000)",
            "DELETE FROM Car WHERE model = 'Avalon'",
        ] {
            db.execute(sql).unwrap();
            let r = inv.run_sync_point(&db, &map).unwrap();
            assert_eq!(r.index_divergences, 0, "after {sql}: {r:?}");
        }
    }

    /// The index must stand aside for table-level types (the policy marks
    /// every instance) and for types under differential scrutiny when a
    /// FROM table is dropped (BindFailure parity) — both covered by the
    /// existing policy/drop tests running with the index on; here we pin
    /// the report-level accounting.
    #[test]
    fn report_carries_index_accounting() {
        let mut db = Database::new();
        db.execute("CREATE TABLE T (k INT, v INT)").unwrap();
        let map = QiUrlMap::new();
        map.insert(
            "SELECT v FROM T WHERE T.k = 3".to_string(),
            PageKey::raw("p"),
            "s".to_string(),
        );
        let mut inv = Invalidator::new(InvalidatorConfig::default());
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert_eq!(r.index_size, 1, "registered instance interned");
        db.execute("INSERT INTO T VALUES (3, 1)").unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert_eq!(r.index_probed_types, 1);
        assert_eq!(r.index_candidates, 1);
        assert_eq!(r.index_residual_types, 0);
        assert!(r.pages.contains(&PageKey::raw("p")));
    }

    /// A registered top-2 page over Car prices 40, 30 (maker 'T').
    fn topk_setup() -> (Database, QiUrlMap, Invalidator) {
        let mut db = Database::new();
        db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT)")
            .unwrap();
        db.execute("INSERT INTO Car VALUES ('T','a',40), ('T','b',30)")
            .unwrap();
        let map = QiUrlMap::new();
        map.insert(
            "SELECT model FROM Car WHERE maker = 'T' ORDER BY price DESC LIMIT 2".to_string(),
            PageKey::raw("TOP"),
            "top".to_string(),
        );
        let mut inv = Invalidator::new(InvalidatorConfig::default());
        inv.run_sync_point(&db, &map).unwrap();
        (db, map, inv)
    }

    #[test]
    fn topk_boundary_rule_skips_provably_outside_inserts() {
        let (mut db, map, mut inv) = topk_setup();
        // Post-state boundary is 30 (2nd key of {40,30,10} DESC); the new
        // row's key 10 sorts strictly beyond it, so it can neither enter
        // nor displace the top-2 — the page stays cached.
        db.execute("INSERT INTO Car VALUES ('T','c',10)").unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.is_empty(), "below-boundary insert stays cached");
        assert_eq!(r.shape_topk_skipped, 1);
        assert!(r.shape_boundary_polls >= 1);
        assert_eq!(r.per_type[0].shape, QueryShape::TopK);
        assert_eq!(r.per_type[0].shape_skipped, 1);

        // A tie with the post-state boundary (insert 30 → boundary stays
        // 30) is conservative: ejected, with shape provenance.
        db.execute("INSERT INTO Car VALUES ('T','d',30)").unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.contains(&PageKey::raw("TOP")));
        assert_eq!(r.verdicts[0].cause.kind, VerdictKind::TopKBoundary);

        // Strictly inside: enters the top-2.
        db.execute("INSERT INTO Car VALUES ('T','e',50)").unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.contains(&PageKey::raw("TOP")));
        assert_eq!(r.verdicts[0].cause.kind, VerdictKind::TopKBoundary);
        assert_eq!(r.shape_topk_skipped, 0);
    }

    #[test]
    fn topk_boundary_rule_applies_to_deletes() {
        let (mut db, map, mut inv) = topk_setup();
        db.execute("INSERT INTO Car VALUES ('T','c',10)").unwrap();
        inv.run_sync_point(&db, &map).unwrap();

        // Deleting the row far below the boundary leaves the top-2 as-is.
        db.execute("DELETE FROM Car WHERE model = 'c'").unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.is_empty(), "below-boundary delete stays cached");
        assert_eq!(r.shape_topk_skipped, 1);

        // Deleting a top-2 member shrinks the result below k: the boundary
        // disappears and the conventional path ejects.
        db.execute("DELETE FROM Car WHERE model = 'a'").unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.contains(&PageKey::raw("TOP")));
        assert_eq!(r.shape_topk_skipped, 0);
    }

    #[test]
    fn shape_rules_off_restores_conventional_ejects() {
        let (mut db, map, mut inv) = topk_setup();
        inv.config_mut().shape_rules = false;
        db.execute("INSERT INTO Car VALUES ('T','c',10)").unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(
            r.pages.contains(&PageKey::raw("TOP")),
            "conventional path ejects on any matching tuple"
        );
        assert_eq!(r.verdicts[0].cause.kind, VerdictKind::LocalPredicate);
        assert_eq!(r.shape_boundary_polls, 0);
        assert_eq!(r.shape_topk_skipped, 0);
    }

    /// A registered per-maker COUNT/SUM page.
    fn agg_setup() -> (Database, QiUrlMap, Invalidator) {
        let mut db = Database::new();
        db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT)")
            .unwrap();
        db.execute("INSERT INTO Car VALUES ('Honda','Civic',18000), ('Honda','Fit',15000)")
            .unwrap();
        let map = QiUrlMap::new();
        map.insert(
            "SELECT maker, COUNT(*), SUM(price) FROM Car GROUP BY maker ORDER BY maker"
                .to_string(),
            PageKey::raw("AGG"),
            "agg".to_string(),
        );
        let mut inv = Invalidator::new(InvalidatorConfig::default());
        inv.run_sync_point(&db, &map).unwrap();
        (db, map, inv)
    }

    #[test]
    fn aggregate_rule_keeps_value_preserving_updates_cached() {
        let (mut db, map, mut inv) = agg_setup();
        // Swap one Honda for another at the same price within one batch:
        // every group's row count and sum net to zero, so the page provably
        // renders identically — it stays cached.
        db.execute("DELETE FROM Car WHERE model = 'Fit'").unwrap();
        db.execute("INSERT INTO Car VALUES ('Honda','Jazz',15000)")
            .unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.is_empty(), "value-preserving batch stays cached");
        assert_eq!(r.shape_agg_skipped, 1);
        assert_eq!(r.per_type[0].shape, QueryShape::Aggregate);
        assert_eq!(r.per_type[0].shape_skipped, 1);

        // A new maker adds a group → ejected with aggregate provenance.
        db.execute("INSERT INTO Car VALUES ('Kia','Rio',12000)").unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.contains(&PageKey::raw("AGG")));
        assert_eq!(r.verdicts[0].cause.kind, VerdictKind::AggregateDelta);

        // A price move inside a group changes SUM → ejected.
        db.execute("DELETE FROM Car WHERE model = 'Civic'").unwrap();
        db.execute("INSERT INTO Car VALUES ('Honda','Civic',17000)")
            .unwrap();
        let r = inv.run_sync_point(&db, &map).unwrap();
        assert!(r.pages.contains(&PageKey::raw("AGG")));
        assert_eq!(r.verdicts[0].cause.kind, VerdictKind::AggregateDelta);
        assert_eq!(r.shape_agg_skipped, 0);
    }

    #[test]
    fn shape_rules_never_eject_more_than_conventional() {
        // The on-arm affected set must be a subset of the off-arm set for
        // the same update batch (here: equal workloads replayed on two
        // invalidators, one per arm).
        let updates = [
            "INSERT INTO Car VALUES ('T','x',5)",
            "INSERT INTO Car VALUES ('T','y',45)",
            "DELETE FROM Car WHERE model = 'x'",
            "INSERT INTO Car VALUES ('U','z',99)",
        ];
        let mut arms: Vec<Vec<usize>> = Vec::new();
        for shape_rules in [true, false] {
            let (mut db, map, mut inv) = topk_setup();
            inv.config_mut().shape_rules = shape_rules;
            let mut ejects = Vec::new();
            for (i, sql) in updates.iter().enumerate() {
                db.execute(sql).unwrap();
                let r = inv.run_sync_point(&db, &map).unwrap();
                if !r.pages.is_empty() {
                    ejects.push(i);
                }
            }
            arms.push(ejects);
        }
        let (on, off) = (&arms[0], &arms[1]);
        assert!(on.iter().all(|i| off.contains(i)), "on ⊆ off: {arms:?}");
        assert!(on.len() < off.len(), "strict improvement: {arms:?}");
    }
}

//! Invalidation policies (§4.1.3–§4.1.4) and the polling budget
//! (§4.2.2's quality/real-time trade-off).

use crate::query_type::QueryTypeId;
use std::collections::HashMap;

/// How aggressively to decide "affected" for a query type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidationPolicy {
    /// Full algorithm: local checks, then residual polling queries.
    /// Most precise, costs DBMS polling load.
    Exact,
    /// Local checks only; any tuple passing them invalidates the instance
    /// without polling. No DBMS load; over-invalidates join queries.
    Conservative,
    /// Any update to a table invalidates every instance reading it.
    /// The granularity of commercial middle-tier caches; maximal
    /// over-invalidation, zero analysis cost.
    TableLevel,
}

impl InvalidationPolicy {
    /// Stable kebab-case name (used in provenance verdicts and reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            InvalidationPolicy::Exact => "exact",
            InvalidationPolicy::Conservative => "conservative",
            InvalidationPolicy::TableLevel => "table-level",
        }
    }
}

/// Tunable policy configuration.
#[derive(Debug, Clone)]
pub struct PolicyConfig {
    /// Policy applied to types with no override.
    pub default_policy: InvalidationPolicy,
    /// Hard cap on polling queries *issued to the DBMS* per sync point;
    /// once exhausted, remaining poll decisions degrade to Conservative
    /// (invalidate). `None` = unlimited.
    pub poll_budget_per_sync: Option<u64>,
    /// Policy discovery (§4.1.4): a type whose invalidation ratio exceeds
    /// this threshold is marked non-cacheable. `None` disables the rule.
    pub non_cacheable_invalidation_ratio: Option<f64>,
    /// Minimum update batches observed before the ratio rule may fire.
    pub min_batches_for_ratio: u64,
    /// Grouped update processing (§4.2.1): OR-combine the residuals of all
    /// delta tuples surviving the local checks into one polling query per
    /// (instance, occurrence, op-kind) instead of one per tuple.
    pub batch_polls: bool,
    /// Maximum OR terms per batched poll; longer batches are chunked.
    pub max_or_terms_per_poll: usize,
    /// Net-change delta compaction (cancel insert/delete pairs of identical
    /// rows within one interval). Off by default — see
    /// [`crate::delta::DeltaSet::compacted`] for the safety caveat.
    pub compact_deltas: bool,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            default_policy: InvalidationPolicy::Exact,
            poll_budget_per_sync: None,
            non_cacheable_invalidation_ratio: None,
            min_batches_for_ratio: 10,
            batch_polls: true,
            max_or_terms_per_poll: 16,
            compact_deltas: false,
        }
    }
}

/// Policy store: defaults + per-type overrides (hard-coded registrations
/// from the off-line mode, §4.1).
#[derive(Debug, Default)]
pub struct PolicyStore {
    overrides: HashMap<QueryTypeId, InvalidationPolicy>,
}

impl PolicyStore {
    /// Create an empty store.
    pub fn new() -> Self {
        PolicyStore::default()
    }

    /// Pin a policy for one query type.
    pub fn set_override(&mut self, id: QueryTypeId, policy: InvalidationPolicy) {
        self.overrides.insert(id, policy);
    }

    /// Remove a per-type override.
    pub fn clear_override(&mut self, id: QueryTypeId) {
        self.overrides.remove(&id);
    }

    /// Effective policy for a type (override or default).
    pub fn policy_for(&self, id: QueryTypeId, config: &PolicyConfig) -> InvalidationPolicy {
        self.overrides
            .get(&id)
            .copied()
            .unwrap_or(config.default_policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_wins_over_default() {
        let mut store = PolicyStore::new();
        let config = PolicyConfig::default();
        let id = QueryTypeId(3);
        assert_eq!(store.policy_for(id, &config), InvalidationPolicy::Exact);
        store.set_override(id, InvalidationPolicy::TableLevel);
        assert_eq!(store.policy_for(id, &config), InvalidationPolicy::TableLevel);
        store.clear_override(id);
        assert_eq!(store.policy_for(id, &config), InvalidationPolicy::Exact);
    }
}

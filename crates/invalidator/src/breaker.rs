//! Per-query-type circuit breaker for the polling path.
//!
//! The paper's escape hatch for an unhealthy DBMS is its no-polling
//! conservative policy (§4.1.3): when polls cannot be trusted, assume every
//! candidate instance is affected. This module automates the downgrade. Per
//! query type the breaker walks a classic three-state machine, advanced
//! once per synchronization point that consumes update records (an empty
//! sync point analyzes nothing and leaves the machines untouched):
//!
//! * **Closed** — polls run normally. Faults within consecutive faulty sync
//!   points accumulate; reaching `fault_threshold` trips the breaker. A
//!   clean sync point (polls attempted, none faulted) resets the count.
//! * **Open** — the type is degraded to the conservative policy (verdict
//!   kind `breaker-degraded`): no polls are attempted, so a flapping DBMS
//!   cannot stall or error a sync point. After `cooldown_syncs` sync points
//!   the breaker moves to half-open.
//! * **HalfOpen** — polls are allowed again as a probe. Any fault re-opens
//!   the breaker (restarting the cooldown); a sync point where the type
//!   polled cleanly closes it.
//!
//! Determinism: decisions for a sync point are taken **before** the
//! type-sharded analysis fans out, and the observations that advance the
//! machine are aggregated per type **after** the shards join. Both sides
//! are pure functions of the workload, so verdicts stay independent of the
//! worker count — the PR 3 parallel-equivalence property.

use crate::query_type::QueryTypeId;
use std::collections::HashMap;

/// Breaker tuning knobs (per query type, shared configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Master switch; `false` keeps every type permanently closed.
    pub enabled: bool,
    /// Cumulative poll faults (across consecutive faulty sync points)
    /// that trip a closed breaker.
    pub fault_threshold: u64,
    /// Sync points an open breaker waits before half-open re-probing.
    pub cooldown_syncs: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            enabled: true,
            fault_threshold: 3,
            cooldown_syncs: 2,
        }
    }
}

/// What the invalidator should do with a type this sync point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Closed: poll normally.
    Normal,
    /// Open: force the conservative no-polling policy.
    Degrade,
    /// Half-open: poll normally, but this sync point is a probe.
    Probe,
}

/// Per-type observation for one sync point, aggregated after the shards
/// join (shard-order independent: plain sums keyed by type).
#[derive(Debug, Clone, Copy, Default)]
pub struct TypeObservation {
    /// Poll attempts that reached the DBMS fault site for this type.
    pub polls_attempted: u64,
    /// Attempts that faulted (including failed retries).
    pub poll_faults: u64,
}

/// State transitions the breaker made in one sync point (metric deltas).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerEvents {
    /// Types that tripped closed/half-open → open.
    pub opened: u64,
    /// Types that moved open → half-open (probe window).
    pub half_opened: u64,
    /// Types whose half-open probe succeeded → closed.
    pub closed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed { recent_faults: u64 },
    Open { cooldown_left: u64 },
    HalfOpen,
}

/// The breaker bank: one state machine per query type, advanced once per
/// synchronization point.
#[derive(Debug, Default)]
pub struct CircuitBreaker {
    states: HashMap<QueryTypeId, State>,
}

impl CircuitBreaker {
    /// A bank with every type closed.
    pub fn new() -> Self {
        CircuitBreaker::default()
    }

    /// The decision for `ty` this sync point. Unknown types are closed.
    pub fn decision(&self, ty: QueryTypeId, cfg: &BreakerConfig) -> BreakerDecision {
        if !cfg.enabled {
            return BreakerDecision::Normal;
        }
        match self.states.get(&ty) {
            None | Some(State::Closed { .. }) => BreakerDecision::Normal,
            Some(State::Open { .. }) => BreakerDecision::Degrade,
            Some(State::HalfOpen) => BreakerDecision::Probe,
        }
    }

    /// Advance every machine by one sync point, given the aggregated
    /// per-type observations. Types not observed this sync point (not a
    /// candidate, or degraded) still age their open cooldowns. Returns the
    /// transition deltas for metrics.
    pub fn observe_sync(
        &mut self,
        cfg: &BreakerConfig,
        observations: &HashMap<QueryTypeId, TypeObservation>,
    ) -> BreakerEvents {
        let mut events = BreakerEvents::default();
        if !cfg.enabled {
            return events;
        }
        // Phase 1: fold this sync point's evidence into closed/half-open
        // machines (sorted for deterministic iteration).
        let mut observed: Vec<(&QueryTypeId, &TypeObservation)> = observations.iter().collect();
        observed.sort_by_key(|(ty, _)| **ty);
        let mut just_opened: Vec<QueryTypeId> = Vec::new();
        for (ty, obs) in observed {
            let state = self
                .states
                .entry(*ty)
                .or_insert(State::Closed { recent_faults: 0 });
            match *state {
                State::Closed { recent_faults } => {
                    if obs.poll_faults > 0 {
                        let total = recent_faults + obs.poll_faults;
                        if total >= cfg.fault_threshold {
                            *state = State::Open {
                                cooldown_left: cfg.cooldown_syncs,
                            };
                            events.opened += 1;
                            just_opened.push(*ty);
                        } else {
                            *state = State::Closed {
                                recent_faults: total,
                            };
                        }
                    } else if obs.polls_attempted > 0 {
                        // A clean sync point with real DBMS evidence clears
                        // the consecutive-fault accumulator.
                        *state = State::Closed { recent_faults: 0 };
                    }
                }
                State::HalfOpen => {
                    if obs.poll_faults > 0 {
                        *state = State::Open {
                            cooldown_left: cfg.cooldown_syncs,
                        };
                        events.opened += 1;
                        just_opened.push(*ty);
                    } else {
                        // The probe ran without faults (or the type needed
                        // no DBMS polls at all): healthy again.
                        *state = State::Closed { recent_faults: 0 };
                        events.closed += 1;
                    }
                }
                State::Open { .. } => {
                    // Degraded types never poll; cooldown ages in phase 2.
                }
            }
        }
        // Phase 2: age every open cooldown by this sync point, except
        // breakers that opened just now.
        let mut ids: Vec<QueryTypeId> = self.states.keys().copied().collect();
        ids.sort_unstable();
        for ty in ids {
            if just_opened.contains(&ty) {
                continue;
            }
            if let Some(state @ State::Open { .. }) = self.states.get_mut(&ty) {
                let State::Open { cooldown_left } = *state else { unreachable!() };
                if cooldown_left <= 1 {
                    *state = State::HalfOpen;
                    events.half_opened += 1;
                } else {
                    *state = State::Open {
                        cooldown_left: cooldown_left - 1,
                    };
                }
            }
        }
        events
    }

    /// Types currently open (degraded).
    pub fn open_count(&self) -> u64 {
        self.states
            .values()
            .filter(|s| matches!(s, State::Open { .. }))
            .count() as u64
    }

    /// Types currently half-open (probing).
    pub fn half_open_count(&self) -> u64 {
        self.states
            .values()
            .filter(|s| matches!(s, State::HalfOpen))
            .count() as u64
    }

    /// Human-readable state of one type (for explain/debug output).
    pub fn state_name(&self, ty: QueryTypeId) -> &'static str {
        match self.states.get(&ty) {
            None | Some(State::Closed { .. }) => "closed",
            Some(State::Open { .. }) => "open",
            Some(State::HalfOpen) => "half-open",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(faults: u64, attempts: u64) -> HashMap<QueryTypeId, TypeObservation> {
        let mut m = HashMap::new();
        m.insert(
            QueryTypeId(0),
            TypeObservation {
                polls_attempted: attempts,
                poll_faults: faults,
            },
        );
        m
    }

    /// The deterministic scripted walk the acceptance criteria name:
    /// closed → open → half-open → closed.
    #[test]
    fn scripted_error_sequence_walks_all_states() {
        let cfg = BreakerConfig {
            enabled: true,
            fault_threshold: 3,
            cooldown_syncs: 2,
        };
        let ty = QueryTypeId(0);
        let mut b = CircuitBreaker::new();
        assert_eq!(b.decision(ty, &cfg), BreakerDecision::Normal);

        // Sync 1: two faults — under threshold, stays closed.
        let e = b.observe_sync(&cfg, &obs(2, 4));
        assert_eq!(e, BreakerEvents::default());
        assert_eq!(b.decision(ty, &cfg), BreakerDecision::Normal);
        assert_eq!(b.state_name(ty), "closed");

        // Sync 2: one more fault — cumulative 3 hits the threshold: OPEN.
        let e = b.observe_sync(&cfg, &obs(1, 2));
        assert_eq!(e.opened, 1);
        assert_eq!(b.decision(ty, &cfg), BreakerDecision::Degrade);
        assert_eq!(b.state_name(ty), "open");
        assert_eq!(b.open_count(), 1);

        // Syncs 3–4: degraded (no observations for the type); the cooldown
        // ages and expires into HALF-OPEN.
        let e = b.observe_sync(&cfg, &HashMap::new());
        assert_eq!(e, BreakerEvents::default());
        assert_eq!(b.decision(ty, &cfg), BreakerDecision::Degrade);
        let e = b.observe_sync(&cfg, &HashMap::new());
        assert_eq!(e.half_opened, 1);
        assert_eq!(b.decision(ty, &cfg), BreakerDecision::Probe);
        assert_eq!(b.half_open_count(), 1);

        // Sync 5: the probe polls cleanly: CLOSED again.
        let e = b.observe_sync(&cfg, &obs(0, 3));
        assert_eq!(e.closed, 1);
        assert_eq!(b.decision(ty, &cfg), BreakerDecision::Normal);
        assert_eq!(b.state_name(ty), "closed");
        assert_eq!((b.open_count(), b.half_open_count()), (0, 0));
    }

    #[test]
    fn failed_probe_reopens_with_full_cooldown() {
        let cfg = BreakerConfig {
            enabled: true,
            fault_threshold: 1,
            cooldown_syncs: 1,
        };
        let ty = QueryTypeId(0);
        let mut b = CircuitBreaker::new();
        b.observe_sync(&cfg, &obs(1, 1)); // trip
        assert_eq!(b.decision(ty, &cfg), BreakerDecision::Degrade);
        b.observe_sync(&cfg, &HashMap::new()); // cooldown → half-open
        assert_eq!(b.decision(ty, &cfg), BreakerDecision::Probe);
        let e = b.observe_sync(&cfg, &obs(1, 1)); // probe faults → reopen
        assert_eq!(e.opened, 1);
        assert_eq!(b.decision(ty, &cfg), BreakerDecision::Degrade);
    }

    #[test]
    fn clean_syncs_reset_the_fault_accumulator() {
        let cfg = BreakerConfig {
            enabled: true,
            fault_threshold: 3,
            cooldown_syncs: 2,
        };
        let ty = QueryTypeId(0);
        let mut b = CircuitBreaker::new();
        b.observe_sync(&cfg, &obs(2, 4));
        b.observe_sync(&cfg, &obs(0, 4)); // clean: accumulator resets
        b.observe_sync(&cfg, &obs(2, 4)); // 2 again, still under threshold
        assert_eq!(b.decision(ty, &cfg), BreakerDecision::Normal);
        assert_eq!(b.open_count(), 0);
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let cfg = BreakerConfig {
            enabled: false,
            ..BreakerConfig::default()
        };
        let mut b = CircuitBreaker::new();
        for _ in 0..10 {
            b.observe_sync(&cfg, &obs(100, 100));
        }
        assert_eq!(b.decision(QueryTypeId(0), &cfg), BreakerDecision::Normal);
        assert_eq!(b.open_count(), 0);
    }

    #[test]
    fn independent_types_trip_independently() {
        let cfg = BreakerConfig {
            enabled: true,
            fault_threshold: 1,
            cooldown_syncs: 5,
        };
        let mut m = HashMap::new();
        m.insert(QueryTypeId(1), TypeObservation { polls_attempted: 2, poll_faults: 2 });
        m.insert(QueryTypeId(2), TypeObservation { polls_attempted: 2, poll_faults: 0 });
        let mut b = CircuitBreaker::new();
        let e = b.observe_sync(&cfg, &m);
        assert_eq!(e.opened, 1);
        assert_eq!(b.decision(QueryTypeId(1), &cfg), BreakerDecision::Degrade);
        assert_eq!(b.decision(QueryTypeId(2), &cfg), BreakerDecision::Normal);
    }
}

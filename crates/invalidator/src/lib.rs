#![warn(missing_docs)]

//! # cacheportal-invalidator
//!
//! The CachePortal **invalidator** (paper §4): watches the database update
//! log and decides which cached pages are stale.
//!
//! * [`query_type`] — query-type registration & discovery, the
//!   type/instance/page registry (registration module, §4.1).
//! * [`delta`] — update-log batching into Δ⁺R / Δ⁻R (§4.2.1).
//! * [`analysis`] — the Example 4.1 decision algorithm: local predicate
//!   checks and residual polling-query construction.
//! * [`polling`] — polling execution with per-sync dedup and maintained
//!   join-attribute indexes (information management module, §4.3).
//! * [`policy`] — Exact / Conservative / TableLevel policies, the polling
//!   budget, and policy discovery (§4.1.3–§4.1.4).
//! * [`breaker`] — per-query-type circuit breaker that degrades flaky
//!   polling paths to the conservative no-polling policy.
//! * [`predicate_index`] — equality/range/residual predicate index mapping
//!   an updated tuple directly to candidate query instances, so analysis
//!   cost scales with *affected* instances rather than *registered* ones.
//! * [`invalidator`] — the orchestrator: one `run_sync_point` per
//!   synchronization interval, producing the pages to eject.

pub mod analysis;
pub mod breaker;
pub mod delta;
pub mod invalidator;
pub mod policy;
pub mod polling;
pub mod predicate_index;
pub mod query_type;

pub use analysis::{analyze_tuple, analyze_tuple_batch, BatchImpact, BoundInstance, PollingQuery, SchemaProvider, TupleImpact};
pub use breaker::{BreakerConfig, BreakerDecision, BreakerEvents, CircuitBreaker, TypeObservation};
pub use delta::{DeltaGroupStat, DeltaSet, TableDelta};
pub use invalidator::{
    InstanceVerdict, InvalidationReport, Invalidator, InvalidatorConfig, TypeSyncStat, VerdictCause,
    VerdictKind,
};
pub use policy::{InvalidationPolicy, PolicyConfig, PolicyStore};
pub use polling::{InfoManager, MaintainedIndex, PollAnswer, PollRunner, PollStats};
pub use predicate_index::{Probe, TypeIndex};
pub use query_type::{IndexStats, QueryType, QueryTypeId, Registry, TypeStats};

//! Update processing (§4.2.1): pull the DBMS update log at each
//! synchronization point and group the records per relation into Δ⁺R
//! (insertions) and Δ⁻R (deletions).

use cacheportal_db::table::Row;
use cacheportal_db::{LogOp, LogRecord, Lsn};
use std::collections::HashMap;

/// One relation's delta for a sync interval.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TableDelta {
    /// Δ⁺R — inserted rows.
    pub inserted: Vec<Row>,
    /// Δ⁻R — deleted rows (old images).
    pub deleted: Vec<Row>,
}

impl TableDelta {
    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }

    /// Number of delta tuples.
    pub fn len(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }

    /// Iterate all delta tuples, tagged with whether they were inserted.
    pub fn tuples(&self) -> impl Iterator<Item = (&Row, bool)> {
        self.inserted
            .iter()
            .map(|r| (r, true))
            .chain(self.deleted.iter().map(|r| (r, false)))
    }
}

/// Per-table ΔR group sizes (provenance summary of one sync batch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaGroupStat {
    /// Lower-cased table name.
    pub table: String,
    /// |Δ⁺R| — rows inserted.
    pub inserted: u64,
    /// |Δ⁻R| — rows deleted.
    pub deleted: u64,
}

/// All deltas for one sync interval.
#[derive(Debug, Default, Clone)]
pub struct DeltaSet {
    /// Lower-cased table name → delta.
    tables: HashMap<String, TableDelta>,
    /// First LSN *after* this batch.
    pub next_lsn: Lsn,
    /// Raw record count.
    pub records: usize,
}

impl DeltaSet {
    /// Group a slice of log records (as returned by `pull_since`).
    pub fn from_records(records: &[LogRecord]) -> DeltaSet {
        let mut set = DeltaSet::default();
        for rec in records {
            let delta = set
                .tables
                .entry(rec.table.to_ascii_lowercase())
                .or_default();
            match &rec.op {
                LogOp::Insert(row) => delta.inserted.push(row.clone()),
                LogOp::Delete(row) => delta.deleted.push(row.clone()),
            }
            set.next_lsn = set.next_lsn.max(rec.lsn + 1);
        }
        set.records = records.len();
        set
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Delta for `table`, if it changed this interval.
    pub fn for_table(&self, table: &str) -> Option<&TableDelta> {
        self.tables.get(&table.to_ascii_lowercase())
    }

    /// Names (lower-cased) of tables with changes.
    pub fn touched_tables(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Per-table ΔR group sizes, sorted by table name (the HashMap iteration
    /// order is not deterministic; provenance records must be).
    pub fn group_stats(&self) -> Vec<DeltaGroupStat> {
        let mut groups: Vec<DeltaGroupStat> = self
            .tables
            .iter()
            .map(|(t, d)| DeltaGroupStat {
                table: t.clone(),
                inserted: d.inserted.len() as u64,
                deleted: d.deleted.len() as u64,
            })
            .collect();
        groups.sort_by(|a, b| a.table.cmp(&b.table));
        groups
    }

    /// Did `table` have deletions this interval? (Used by the same-batch
    /// correlated-delete guard in the analysis module.)
    pub fn has_deletions(&self, table: &str) -> bool {
        self.tables
            .get(&table.to_ascii_lowercase())
            .is_some_and(|d| !d.deleted.is_empty())
    }

    /// Total delta tuples across all tables.
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(TableDelta::len).sum()
    }

    /// **Net-change compaction**: cancel matching insert/delete pairs of
    /// identical rows within the interval (an inserted-then-deleted row, or
    /// a value-preserving UPDATE's delete+insert pair, nets to nothing
    /// between the interval's endpoints).
    ///
    /// Caveat (documented in DESIGN.md): compaction reasons about the
    /// *endpoint* states only. A page generated from a mid-interval
    /// transient state can depend on a cancelled tuple; deployments where
    /// pages may be generated concurrently with update bursts should leave
    /// this off (the default). It is sound whenever page generation and
    /// update application do not interleave within one sync interval.
    pub fn compacted(&self) -> DeltaSet {
        let mut out = DeltaSet {
            tables: HashMap::with_capacity(self.tables.len()),
            next_lsn: self.next_lsn,
            records: 0,
        };
        for (name, delta) in &self.tables {
            // Multiset difference in both directions.
            let mut del_counts: HashMap<&Row, usize> = HashMap::new();
            for d in &delta.deleted {
                *del_counts.entry(d).or_insert(0) += 1;
            }
            let mut inserted = Vec::new();
            for i in &delta.inserted {
                match del_counts.get_mut(i) {
                    Some(c) if *c > 0 => *c -= 1, // cancels one deletion
                    _ => inserted.push(i.clone()),
                }
            }
            let mut deleted = Vec::new();
            for d in &delta.deleted {
                if let Some(c) = del_counts.get_mut(d) {
                    if *c > 0 {
                        *c -= 1;
                        deleted.push(d.clone());
                    }
                }
            }
            let compacted = TableDelta { inserted, deleted };
            if !compacted.is_empty() {
                out.records += compacted.len();
                out.tables.insert(name.clone(), compacted);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cacheportal_db::Value;

    fn rec(lsn: Lsn, table: &str, op: LogOp) -> LogRecord {
        LogRecord {
            lsn,
            table: table.into(),
            op,
        }
    }

    #[test]
    fn groups_by_table_and_op() {
        let records = vec![
            rec(0, "Car", LogOp::Insert(vec![Value::Int(1)])),
            rec(1, "Car", LogOp::Delete(vec![Value::Int(2)])),
            rec(2, "Mileage", LogOp::Insert(vec![Value::Int(3)])),
        ];
        let set = DeltaSet::from_records(&records);
        assert_eq!(set.records, 3);
        assert_eq!(set.next_lsn, 3);
        let car = set.for_table("CAR").unwrap();
        assert_eq!(car.inserted.len(), 1);
        assert_eq!(car.deleted.len(), 1);
        assert_eq!(car.len(), 2);
        assert!(set.for_table("mileage").is_some());
        assert!(set.for_table("absent").is_none());
        assert!(set.has_deletions("car"));
        assert!(!set.has_deletions("mileage"));
    }

    #[test]
    fn empty_batch() {
        let set = DeltaSet::from_records(&[]);
        assert!(set.is_empty());
        assert_eq!(set.next_lsn, 0);
        assert_eq!(set.touched_tables().count(), 0);
    }

    #[test]
    fn compaction_cancels_matching_pairs() {
        let row = |i: i64| vec![Value::Int(i)];
        let records = vec![
            rec(0, "t", LogOp::Insert(row(1))), // inserted then deleted → nets out
            rec(1, "t", LogOp::Delete(row(1))),
            rec(2, "t", LogOp::Delete(row(2))), // value-preserving update → nets out
            rec(3, "t", LogOp::Insert(row(2))),
            rec(4, "t", LogOp::Insert(row(3))), // survives
            rec(5, "t", LogOp::Delete(row(4))), // survives
        ];
        let set = DeltaSet::from_records(&records).compacted();
        let d = set.for_table("t").unwrap();
        assert_eq!(d.inserted, vec![row(3)]);
        assert_eq!(d.deleted, vec![row(4)]);
        assert_eq!(set.next_lsn, 6, "LSN progress preserved");
    }

    #[test]
    fn compaction_respects_multiplicities() {
        let row = vec![Value::Int(7)];
        // 3 inserts, 1 delete of the same row → net 2 inserts.
        let records = vec![
            rec(0, "t", LogOp::Insert(row.clone())),
            rec(1, "t", LogOp::Insert(row.clone())),
            rec(2, "t", LogOp::Insert(row.clone())),
            rec(3, "t", LogOp::Delete(row.clone())),
        ];
        let set = DeltaSet::from_records(&records).compacted();
        let d = set.for_table("t").unwrap();
        assert_eq!(d.inserted.len(), 2);
        assert!(d.deleted.is_empty());
    }

    #[test]
    fn compaction_drops_fully_cancelled_tables() {
        let row = vec![Value::Int(1)];
        let records = vec![
            rec(0, "t", LogOp::Insert(row.clone())),
            rec(1, "t", LogOp::Delete(row)),
        ];
        let set = DeltaSet::from_records(&records).compacted();
        assert!(set.for_table("t").is_none());
        assert_eq!(set.total_tuples(), 0);
    }

    #[test]
    fn tuples_iterates_both_kinds() {
        let records = vec![
            rec(0, "t", LogOp::Insert(vec![Value::Int(1)])),
            rec(1, "t", LogOp::Delete(vec![Value::Int(2)])),
        ];
        let set = DeltaSet::from_records(&records);
        let tags: Vec<bool> = set.for_table("t").unwrap().tuples().map(|(_, i)| i).collect();
        assert_eq!(tags, vec![true, false]);
    }
}

//! The QI/URL map (§2.4): the sniffer's output, the invalidator's input.
//!
//! Each row associates one *bound* query instance (canonical SQL text) with
//! one page key. Rows are deduplicated — re-requesting a cached page must
//! not grow the map.

use cacheportal_web::PageKey;
use parking_lot::Mutex;
use std::collections::HashSet;

/// One row of the QI/URL map.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct QiUrlEntry {
    /// Unique row id.
    pub id: u64,
    /// Canonical bound SQL text of the query instance.
    pub sql: String,
    /// The page whose content depends on this query instance.
    pub page_key: PageKey,
    /// Servlet that generated the page.
    pub servlet: String,
}

/// The map itself, with a read cursor for the invalidator's online
/// registration scan.
#[derive(Default)]
pub struct QiUrlMap {
    inner: Mutex<MapInner>,
}

#[derive(Default)]
struct MapInner {
    entries: Vec<QiUrlEntry>,
    seen: HashSet<(String, PageKey)>,
    next_id: u64,
}

impl QiUrlMap {
    /// Create an empty map.
    pub fn new() -> Self {
        QiUrlMap::default()
    }

    /// Insert a (query instance, page) association; returns true if new.
    pub fn insert(&self, sql: String, page_key: PageKey, servlet: String) -> bool {
        let mut inner = self.inner.lock();
        if !inner.seen.insert((sql.clone(), page_key.clone())) {
            return false;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.entries.push(QiUrlEntry {
            id,
            sql,
            page_key,
            servlet,
        });
        true
    }

    /// Entries with id >= `cursor`; returns them plus the next cursor.
    /// This is the invalidator's "constantly listening to the QI/URL map"
    /// interface (§4.1.2).
    pub fn entries_since(&self, cursor: u64) -> (Vec<QiUrlEntry>, u64) {
        let inner = self.inner.lock();
        let start = inner.entries.partition_point(|e| e.id < cursor);
        (inner.entries[start..].to_vec(), inner.next_id)
    }

    /// Every entry (diagnostics, tests).
    pub fn all(&self) -> Vec<QiUrlEntry> {
        self.inner.lock().entries.clone()
    }

    /// All QI rows registered for `page` — the QI→URL half of an eject
    /// provenance chain ("which query instances does this URL depend on?").
    pub fn entries_for_page(&self, page: &PageKey) -> Vec<QiUrlEntry> {
        let inner = self.inner.lock();
        inner
            .entries
            .iter()
            .filter(|e| &e.page_key == page)
            .cloned()
            .collect()
    }

    /// Remove all rows for the given pages (e.g. pages evicted from every
    /// cache no longer need invalidation tracking).
    pub fn remove_pages(&self, pages: &HashSet<PageKey>) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.entries.len();
        inner.entries.retain(|e| !pages.contains(&e.page_key));
        inner.seen.retain(|(_, pk)| !pages.contains(pk));
        before - inner.entries.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when the map has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialize every row to JSON — the transfer format when the sniffer
    /// and the invalidator run on different machines (the invalidator
    /// "fetches the logs from the appropriate servers at regular
    /// intervals", §2.2 / Figure 7 arrow (c)).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.inner.lock().entries).expect("entries serialize")
    }

    /// Rebuild a map from [`QiUrlMap::to_json`] output. Row ids, the dedup
    /// set, and the registration cursor position are all reconstructed.
    pub fn from_json(s: &str) -> Result<QiUrlMap, serde_json::Error> {
        let entries: Vec<QiUrlEntry> = serde_json::from_str(s)?;
        let seen = entries
            .iter()
            .map(|e| (e.sql.clone(), e.page_key.clone()))
            .collect();
        let next_id = entries.iter().map(|e| e.id + 1).max().unwrap_or(0);
        Ok(QiUrlMap {
            inner: Mutex::new(MapInner {
                entries,
                seen,
                next_id,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_on_sql_page_pair() {
        let m = QiUrlMap::new();
        assert!(m.insert("Q1".into(), PageKey::raw("p1"), "s".into()));
        assert!(!m.insert("Q1".into(), PageKey::raw("p1"), "s".into()));
        assert!(m.insert("Q1".into(), PageKey::raw("p2"), "s".into()));
        assert!(m.insert("Q2".into(), PageKey::raw("p1"), "s".into()));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn cursor_scan_sees_only_new_entries() {
        let m = QiUrlMap::new();
        m.insert("Q1".into(), PageKey::raw("p1"), "s".into());
        let (batch1, cur) = m.entries_since(0);
        assert_eq!(batch1.len(), 1);
        m.insert("Q2".into(), PageKey::raw("p2"), "s".into());
        let (batch2, cur2) = m.entries_since(cur);
        assert_eq!(batch2.len(), 1);
        assert_eq!(batch2[0].sql, "Q2");
        let (batch3, _) = m.entries_since(cur2);
        assert!(batch3.is_empty());
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let m = QiUrlMap::new();
        m.insert("Q1".into(), PageKey::raw("p1"), "s1".into());
        m.insert("Q2".into(), PageKey::raw("p2"), "s2".into());
        let json = m.to_json();
        let rebuilt = QiUrlMap::from_json(&json).unwrap();
        assert_eq!(rebuilt.all(), m.all());
        // Dedup set survives the trip…
        assert!(!rebuilt.insert("Q1".into(), PageKey::raw("p1"), "s1".into()));
        // …and new ids continue where the original left off.
        assert!(rebuilt.insert("Q3".into(), PageKey::raw("p3"), "s3".into()));
        assert_eq!(rebuilt.all().last().unwrap().id, 2);
        assert!(QiUrlMap::from_json("not json").is_err());
    }

    #[test]
    fn remove_pages_purges_seen_set_too() {
        let m = QiUrlMap::new();
        m.insert("Q1".into(), PageKey::raw("p1"), "s".into());
        let mut gone = HashSet::new();
        gone.insert(PageKey::raw("p1"));
        assert_eq!(m.remove_pages(&gone), 1);
        assert!(m.is_empty());
        // Re-inserting after removal must work (seen set purged).
        assert!(m.insert("Q1".into(), PageKey::raw("p1"), "s".into()));
    }
}

//! The query log (the sniffer's *query logger*, §3.2) — the JDBC-wrapper
//! analogue.
//!
//! [`LoggedConnection`] wraps any [`Connection`]. Because every servlet,
//! pool, and data source hands out connections through the same factory
//! seam, wrapping the factory captures *all* queries regardless of how the
//! application obtained the connection — the paper's argument for wrapping
//! at the driver.

use cacheportal_db::{DbResult, ExecOutcome, QueryResult, Value};
use cacheportal_web::clock::{Clock, Micros};
use cacheportal_web::Connection;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One logged query.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QueryRecord {
    /// Unique query id.
    pub id: u64,
    /// The SQL as the application issued it (may contain `$n` / `?`).
    pub sql: String,
    /// Bound parameter values.
    pub params: Vec<Value>,
    /// True for SELECTs (the only kind the mapper maps to pages).
    pub is_select: bool,
    /// Query receive time (when the driver got it).
    pub received: Micros,
    /// Result delivery time.
    pub delivered: Micros,
}

/// Append-only query log shared by all logged connections.
pub struct QueryLog {
    records: Mutex<Vec<QueryRecord>>,
    next_id: AtomicU64,
}

impl QueryLog {
    /// Create an empty shared log / wrap a connection.
    pub fn new() -> Arc<Self> {
        Arc::new(QueryLog {
            records: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
        })
    }

    /// Append one query record.
    pub fn record(
        &self,
        sql: &str,
        params: &[Value],
        is_select: bool,
        received: Micros,
        delivered: Micros,
    ) {
        let rec = QueryRecord {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            sql: sql.to_string(),
            params: params.to_vec(),
            is_select,
            received,
            delivered,
        };
        self.records.lock().push(rec);
    }

    /// Take every record currently in the log.
    pub fn drain(&self) -> Vec<QueryRecord> {
        std::mem::take(&mut *self.records.lock())
    }

    /// Put unconsumed records back (the mapper retains queries whose
    /// enclosing request has not been logged yet).
    pub fn restore(&self, records: Vec<QueryRecord>) {
        let mut guard = self.records.lock();
        let mut merged = records;
        merged.append(&mut guard);
        *guard = merged;
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Connection wrapper that records every statement with timestamps.
pub struct LoggedConnection<C: Connection> {
    inner: C,
    log: Arc<QueryLog>,
    clock: Arc<dyn Clock>,
}

impl<C: Connection> LoggedConnection<C> {
    /// Create an empty shared log / wrap a connection.
    pub fn new(inner: C, log: Arc<QueryLog>, clock: Arc<dyn Clock>) -> Self {
        LoggedConnection { inner, log, clock }
    }
}

impl<C: Connection> Connection for LoggedConnection<C> {
    fn query(&mut self, sql: &str, params: &[Value]) -> DbResult<QueryResult> {
        let received = self.clock.tick();
        let result = self.inner.query(sql, params);
        let delivered = self.clock.tick();
        if result.is_ok() {
            self.log.record(sql, params, true, received, delivered);
        }
        result
    }

    fn execute(&mut self, sql: &str, params: &[Value]) -> DbResult<ExecOutcome> {
        let received = self.clock.tick();
        let result = self.inner.execute(sql, params);
        let delivered = self.clock.tick();
        if result.is_ok() {
            self.log.record(sql, params, false, received, delivered);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cacheportal_db::Database;
    use cacheportal_web::{shared, DbConnection, ManualClock};

    fn setup() -> (LoggedConnection<DbConnection>, Arc<QueryLog>, Arc<ManualClock>) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        let log = QueryLog::new();
        let clock = ManualClock::new();
        let conn = LoggedConnection::new(DbConnection::new(shared(db)), log.clone(), clock.clone());
        (conn, log, clock)
    }

    #[test]
    fn queries_logged_with_interval() {
        let (mut conn, log, clock) = setup();
        clock.set(100);
        conn.query("SELECT * FROM t WHERE a = $1", &[Value::Int(1)]).unwrap();
        let recs = log.drain();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert!(r.is_select);
        assert_eq!(r.params, vec![Value::Int(1)]);
        assert!(r.received > 100 && r.delivered > r.received);
    }

    #[test]
    fn executes_logged_as_non_select() {
        let (mut conn, log, _) = setup();
        conn.execute("INSERT INTO t VALUES (2)", &[]).unwrap();
        let recs = log.drain();
        assert_eq!(recs.len(), 1);
        assert!(!recs[0].is_select);
    }

    #[test]
    fn failed_statements_not_logged() {
        let (mut conn, log, _) = setup();
        assert!(conn.query("SELECT * FROM missing", &[]).is_err());
        assert!(log.is_empty());
    }

    #[test]
    fn restore_prepends() {
        let (mut conn, log, _) = setup();
        conn.query("SELECT * FROM t", &[]).unwrap();
        let first = log.drain();
        conn.query("SELECT a FROM t", &[]).unwrap();
        log.restore(first);
        let all = log.drain();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].sql, "SELECT * FROM t");
        assert_eq!(all[1].sql, "SELECT a FROM t");
    }
}

//! The query log (the sniffer's *query logger*, §3.2) — the JDBC-wrapper
//! analogue.
//!
//! [`LoggedConnection`] wraps any [`Connection`]. Because every servlet,
//! pool, and data source hands out connections through the same factory
//! seam, wrapping the factory captures *all* queries regardless of how the
//! application obtained the connection — the paper's argument for wrapping
//! at the driver.

use cacheportal_db::{DbResult, ExecOutcome, FaultPlan, QueryResult, Value};
use cacheportal_web::clock::{Clock, Micros};
use cacheportal_web::Connection;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One logged query.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QueryRecord {
    /// Unique query id.
    pub id: u64,
    /// The SQL as the application issued it (may contain `$n` / `?`).
    pub sql: String,
    /// Bound parameter values.
    pub params: Vec<Value>,
    /// True for SELECTs (the only kind the mapper maps to pages).
    pub is_select: bool,
    /// Query receive time (when the driver got it).
    pub received: Micros,
    /// Result delivery time.
    pub delivered: Micros,
}

/// Append-only query log shared by all logged connections.
///
/// An installed [`FaultPlan`] models a lossy sniffer: records may be
/// dropped (never reach the mapper), duplicated, or delivered out of order.
/// The log counts what it lost so the sync-point pipeline can compensate —
/// a dropped SELECT means some cached page may be missing a dependency
/// edge, which downstream turns into a conservative eject.
pub struct QueryLog {
    records: Mutex<Vec<QueryRecord>>,
    next_id: AtomicU64,
    fault: Mutex<FaultPlan>,
    lost: AtomicU64,
    duplicated: AtomicU64,
}

impl QueryLog {
    /// Create an empty shared log / wrap a connection.
    pub fn new() -> Arc<Self> {
        Arc::new(QueryLog {
            records: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            fault: Mutex::new(FaultPlan::default()),
            lost: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
        })
    }

    /// Install a fault plan (harness only; the default plan is inert).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.fault.lock() = plan;
    }

    /// SELECT records the sniffer lost to injected drops, cumulatively.
    /// The mapper reports the per-run delta so the portal can eject
    /// conservatively.
    pub fn lost(&self) -> u64 {
        self.lost.load(Ordering::Relaxed)
    }

    /// Records duplicated by injected faults, cumulatively.
    pub fn duplicated(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }

    /// Append one query record.
    pub fn record(
        &self,
        sql: &str,
        params: &[Value],
        is_select: bool,
        received: Micros,
        delivered: Micros,
    ) {
        let rec = QueryRecord {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            sql: sql.to_string(),
            params: params.to_vec(),
            is_select,
            received,
            delivered,
        };
        let fault = self.fault.lock().clone();
        if fault.drop_query_record(rec.id) {
            // Only SELECT drops threaten safety (non-SELECTs never map to
            // pages), but count every loss — the portal over-compensates
            // rather than reason about which kind vanished.
            self.lost.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let duplicate = fault.duplicate_query_record(rec.id);
        let mut guard = self.records.lock();
        if duplicate {
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            guard.push(rec.clone());
        }
        guard.push(rec);
    }

    /// Take every record currently in the log. Under an injected reorder
    /// fault the batch comes out in a deterministic shuffle (reversed) —
    /// the mapper must not depend on log order.
    pub fn drain(&self) -> Vec<QueryRecord> {
        let mut records = std::mem::take(&mut *self.records.lock());
        if self.fault.lock().reorder_query_records() {
            records.reverse();
        }
        records
    }

    /// Put unconsumed records back (the mapper retains queries whose
    /// enclosing request has not been logged yet).
    pub fn restore(&self, records: Vec<QueryRecord>) {
        let mut guard = self.records.lock();
        let mut merged = records;
        merged.append(&mut guard);
        *guard = merged;
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Connection wrapper that records every statement with timestamps.
pub struct LoggedConnection<C: Connection> {
    inner: C,
    log: Arc<QueryLog>,
    clock: Arc<dyn Clock>,
}

impl<C: Connection> LoggedConnection<C> {
    /// Create an empty shared log / wrap a connection.
    pub fn new(inner: C, log: Arc<QueryLog>, clock: Arc<dyn Clock>) -> Self {
        LoggedConnection { inner, log, clock }
    }
}

impl<C: Connection> Connection for LoggedConnection<C> {
    fn query(&mut self, sql: &str, params: &[Value]) -> DbResult<QueryResult> {
        let received = self.clock.tick();
        let result = self.inner.query(sql, params);
        let delivered = self.clock.tick();
        if result.is_ok() {
            self.log.record(sql, params, true, received, delivered);
        }
        result
    }

    fn execute(&mut self, sql: &str, params: &[Value]) -> DbResult<ExecOutcome> {
        let received = self.clock.tick();
        let result = self.inner.execute(sql, params);
        let delivered = self.clock.tick();
        if result.is_ok() {
            self.log.record(sql, params, false, received, delivered);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cacheportal_db::Database;
    use cacheportal_web::{shared, DbConnection, ManualClock};

    fn setup() -> (LoggedConnection<DbConnection>, Arc<QueryLog>, Arc<ManualClock>) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        let log = QueryLog::new();
        let clock = ManualClock::new();
        let conn = LoggedConnection::new(DbConnection::new(shared(db)), log.clone(), clock.clone());
        (conn, log, clock)
    }

    #[test]
    fn queries_logged_with_interval() {
        let (mut conn, log, clock) = setup();
        clock.set(100);
        conn.query("SELECT * FROM t WHERE a = $1", &[Value::Int(1)]).unwrap();
        let recs = log.drain();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert!(r.is_select);
        assert_eq!(r.params, vec![Value::Int(1)]);
        assert!(r.received > 100 && r.delivered > r.received);
    }

    #[test]
    fn executes_logged_as_non_select() {
        let (mut conn, log, _) = setup();
        conn.execute("INSERT INTO t VALUES (2)", &[]).unwrap();
        let recs = log.drain();
        assert_eq!(recs.len(), 1);
        assert!(!recs[0].is_select);
    }

    #[test]
    fn failed_statements_not_logged() {
        let (mut conn, log, _) = setup();
        assert!(conn.query("SELECT * FROM missing", &[]).is_err());
        assert!(log.is_empty());
    }

    #[test]
    fn restore_prepends() {
        let (mut conn, log, _) = setup();
        conn.query("SELECT * FROM t", &[]).unwrap();
        let first = log.drain();
        conn.query("SELECT a FROM t", &[]).unwrap();
        log.restore(first);
        let all = log.drain();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].sql, "SELECT * FROM t");
        assert_eq!(all[1].sql, "SELECT a FROM t");
    }
}

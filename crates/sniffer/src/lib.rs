#![warn(missing_docs)]

//! # cacheportal-sniffer
//!
//! The CachePortal **sniffer** (paper §3): three loosely coupled parts that
//! build the QI/URL map without touching servlets, the web server, or the
//! DBMS.
//!
//! * [`request_log::RequestLog`] — servlet-wrapper request logger.
//! * [`query_log::LoggedConnection`] — JDBC-wrapper query logger.
//! * [`mapper::Mapper`] — interval-containment join of the two logs,
//!   producing the [`map::QiUrlMap`].

pub mod map;
pub mod mapper;
pub mod query_log;
pub mod request_log;

pub use map::{QiUrlEntry, QiUrlMap};
pub use mapper::{canonical_bound_sql, Mapper, MapperReport};
pub use query_log::{LoggedConnection, QueryLog, QueryRecord};
pub use request_log::RequestLog;

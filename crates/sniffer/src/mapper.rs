//! The request-to-query mapper (§3.3).
//!
//! At every run it joins the two logs on *interval containment*: a query
//! issued and answered inside a request's [receive, delivery] window is
//! attributed to that request. Under concurrency a query interval can fall
//! inside several request windows; the mapper then attributes it to all of
//! them — conservative in exactly the direction invalidation safety needs
//! (a page is never missing a dependency, it can only have spurious ones).

use crate::map::QiUrlMap;
use crate::query_log::{QueryLog, QueryRecord};
use crate::request_log::RequestLog;
use cacheportal_db::sql::parser::parse;
use cacheportal_db::sql::rewrite::substitute_params;
use cacheportal_db::sql::ast::Statement;
use cacheportal_web::RequestRecord;
use std::sync::Arc;

/// Outcome counters for one mapper run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MapperReport {
    /// (query, request) associations written to the map (after dedup the
    /// map itself may record fewer).
    pub mapped: u64,
    /// Queries that matched more than one request window.
    pub ambiguous: u64,
    /// Queries retained for the next run (enclosing request not yet logged).
    pub retained: u64,
    /// Queries dropped after exceeding the retention limit.
    pub dropped: u64,
    /// Non-SELECT statements discarded.
    pub non_select: u64,
    /// SELECTs that could not be canonicalized (unparseable by the
    /// invalidator's dialect) and were skipped.
    pub unparseable: u64,
    /// Records the query logger lost (injected drops) since the previous
    /// run. Nonzero means some page admitted since then may be missing a
    /// dependency edge — the portal must eject those pages conservatively.
    pub lost: u64,
    /// Wall-clock microseconds this run took (mapping latency).
    pub elapsed_micros: u64,
}

/// The mapper. Owns retention state between runs.
///
/// ```
/// use cacheportal_sniffer::{Mapper, QiUrlMap, QueryLog, RequestLog};
/// use cacheportal_web::{PageKey, RequestObserver, RequestRecord};
/// use cacheportal_db::Value;
/// use std::sync::Arc;
///
/// let requests = Arc::new(RequestLog::new());
/// let queries = QueryLog::new();
/// let map = Arc::new(QiUrlMap::new());
///
/// // A request window [10, 20] containing one query [12, 14].
/// requests.on_request(RequestRecord {
///     id: 1, servlet: "cars".into(),
///     request_string: "/cars?maxprice=20000".into(),
///     cookie_string: String::new(), post_string: String::new(),
///     page_key: PageKey::raw("shop/cars?g:maxprice=20000"),
///     received: 10, delivered: 20,
/// });
/// queries.record("SELECT * FROM Car WHERE price < $1",
///                &[Value::Int(20000)], true, 12, 14);
///
/// let mut mapper = Mapper::new(requests, queries, map.clone());
/// let report = mapper.run_once();
/// assert_eq!(report.mapped, 1);
/// assert_eq!(map.all()[0].sql, "SELECT * FROM Car WHERE price < 20000");
/// ```
pub struct Mapper {
    requests: Arc<RequestLog>,
    queries: Arc<QueryLog>,
    map: Arc<QiUrlMap>,
    /// (record, runs it has been retained).
    pending: Vec<(QueryRecord, u8)>,
    /// How many runs an unmatched query survives before being dropped.
    max_retention: u8,
    /// Cumulative `QueryLog::lost` already reported in earlier runs.
    lost_cursor: u64,
}

impl Mapper {
    /// Create a mapper over the two logs, writing into `map`.
    pub fn new(requests: Arc<RequestLog>, queries: Arc<QueryLog>, map: Arc<QiUrlMap>) -> Self {
        Mapper {
            requests,
            queries,
            map,
            pending: Vec::new(),
            max_retention: 2,
            lost_cursor: 0,
        }
    }

    /// How many runs an unmatched query survives before being dropped.
    pub fn with_max_retention(mut self, runs: u8) -> Self {
        self.max_retention = runs;
        self
    }

    /// The QI/URL map this mapper writes to.
    pub fn map(&self) -> &Arc<QiUrlMap> {
        &self.map
    }

    /// Process everything currently in the logs.
    pub fn run_once(&mut self) -> MapperReport {
        let start = std::time::Instant::now();
        let mut report = MapperReport::default();
        let lost_total = self.queries.lost();
        report.lost = lost_total - self.lost_cursor;
        self.lost_cursor = lost_total;
        let requests = self.requests.drain();
        let mut queries: Vec<(QueryRecord, u8)> =
            std::mem::take(&mut self.pending);
        for q in self.queries.drain() {
            queries.push((q, 0));
        }

        for (q, age) in queries {
            if !q.is_select {
                report.non_select += 1;
                continue;
            }
            let owners: Vec<&RequestRecord> = requests
                .iter()
                .filter(|r| r.received <= q.received && q.delivered <= r.delivered)
                .collect();
            match owners.len() {
                0 => {
                    if age >= self.max_retention {
                        report.dropped += 1;
                    } else {
                        report.retained += 1;
                        self.pending.push((q, age + 1));
                    }
                }
                n => {
                    if n > 1 {
                        report.ambiguous += 1;
                    }
                    match canonical_bound_sql(&q) {
                        Some(sql) => {
                            for r in owners {
                                self.map.insert(
                                    sql.clone(),
                                    r.page_key.clone(),
                                    r.servlet.clone(),
                                );
                                report.mapped += 1;
                            }
                        }
                        None => report.unparseable += 1,
                    }
                }
            }
        }
        report.elapsed_micros = start.elapsed().as_micros() as u64;
        report
    }
}

/// Canonical bound SQL text of a logged query: parse, substitute parameters,
/// re-render. Returns `None` for statements outside the supported dialect.
pub fn canonical_bound_sql(q: &QueryRecord) -> Option<String> {
    match parse(&q.sql) {
        Ok(Statement::Select(sel)) => {
            let bound = substitute_params(&sel, &q.params).ok()?;
            Some(Statement::Select(bound).to_sql())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cacheportal_db::Value;
    use cacheportal_web::{PageKey, RequestObserver};

    fn request(id: u64, recv: u64, deliver: u64) -> RequestRecord {
        RequestRecord {
            id,
            servlet: "s".into(),
            request_string: format!("/s?id={id}"),
            cookie_string: String::new(),
            post_string: String::new(),
            page_key: PageKey::raw(format!("page{id}")),
            received: recv,
            delivered: deliver,
        }
    }

    fn query(sql: &str, params: Vec<Value>, recv: u64, deliver: u64) -> QueryRecord {
        QueryRecord {
            id: 0,
            sql: sql.into(),
            params,
            is_select: true,
            received: recv,
            delivered: deliver,
        }
    }

    fn setup() -> (Arc<RequestLog>, Arc<QueryLog>, Mapper) {
        let rl = Arc::new(RequestLog::new());
        let ql = QueryLog::new();
        let map = Arc::new(QiUrlMap::new());
        let mapper = Mapper::new(rl.clone(), ql.clone(), map);
        (rl, ql, mapper)
    }

    fn push_query(ql: &QueryLog, q: QueryRecord) {
        ql.record(&q.sql, &q.params, q.is_select, q.received, q.delivered);
    }

    #[test]
    fn contained_query_maps_to_its_request() {
        let (rl, ql, mut mapper) = setup();
        rl.on_request(request(1, 10, 20));
        rl.on_request(request(2, 30, 40));
        push_query(&ql, query("SELECT * FROM Car WHERE price < $1", vec![Value::Int(5)], 12, 15));
        push_query(&ql, query("SELECT * FROM Car WHERE price < $1", vec![Value::Int(9)], 31, 39));
        let rep = mapper.run_once();
        assert_eq!(rep.mapped, 2);
        assert_eq!(rep.ambiguous, 0);
        let entries = mapper.map().all();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].sql, "SELECT * FROM Car WHERE price < 5");
        assert_eq!(entries[0].page_key, PageKey::raw("page1"));
        assert_eq!(entries[1].page_key, PageKey::raw("page2"));
    }

    #[test]
    fn overlapping_requests_map_conservatively() {
        let (rl, ql, mut mapper) = setup();
        rl.on_request(request(1, 10, 50));
        rl.on_request(request(2, 20, 40));
        // Query inside both windows.
        push_query(&ql, query("SELECT * FROM Car", vec![], 25, 30));
        let rep = mapper.run_once();
        assert_eq!(rep.mapped, 2);
        assert_eq!(rep.ambiguous, 1);
        assert_eq!(mapper.map().len(), 2);
    }

    #[test]
    fn orphan_query_retained_then_dropped() {
        let (_rl, ql, mut mapper) = setup();
        push_query(&ql, query("SELECT * FROM Car", vec![], 5, 6));
        let r1 = mapper.run_once();
        assert_eq!(r1.retained, 1);
        let r2 = mapper.run_once();
        assert_eq!(r2.retained, 1);
        let r3 = mapper.run_once();
        assert_eq!(r3.dropped, 1);
        let r4 = mapper.run_once();
        assert_eq!(r4.dropped + r4.retained, 0);
    }

    #[test]
    fn retained_query_maps_when_request_arrives_late() {
        let (rl, ql, mut mapper) = setup();
        push_query(&ql, query("SELECT * FROM Car", vec![], 15, 18));
        mapper.run_once();
        // The enclosing request finishes (and is logged) later.
        rl.on_request(request(7, 10, 20));
        let rep = mapper.run_once();
        assert_eq!(rep.mapped, 1);
        assert_eq!(mapper.map().all()[0].page_key, PageKey::raw("page7"));
    }

    #[test]
    fn non_selects_and_unparseable_skipped() {
        let (rl, ql, mut mapper) = setup();
        rl.on_request(request(1, 0, 100));
        ql.record("INSERT INTO t VALUES (1)", &[], false, 10, 11);
        ql.record("SELECT garbage FROM", &[], true, 20, 21);
        let rep = mapper.run_once();
        assert_eq!(rep.non_select, 1);
        assert_eq!(rep.unparseable, 1);
        assert_eq!(rep.mapped, 0);
    }

    #[test]
    fn canonicalization_normalizes_case_and_spacing() {
        let q = query(
            "select  *  from Car where PRICE < $1",
            vec![Value::Int(7)],
            0,
            0,
        );
        assert_eq!(
            canonical_bound_sql(&q).unwrap(),
            "SELECT * FROM Car WHERE PRICE < 7"
        );
    }
}

//! The HTTP request log (the sniffer's *request logger*, §3.1).
//!
//! Implemented as a [`RequestObserver`] installed on the application server —
//! the servlet-wrapper design from the paper: nothing in the servlet or the
//! web server changes.

use cacheportal_web::{RequestObserver, RequestRecord};
use parking_lot::Mutex;

/// Append-only request log with a consumption cursor for the mapper.
#[derive(Default)]
pub struct RequestLog {
    inner: Mutex<Vec<RequestRecord>>,
}

impl RequestLog {
    /// Create an empty log.
    pub fn new() -> Self {
        RequestLog::default()
    }

    /// Take every record currently in the log (the mapper consumes them).
    pub fn drain(&self) -> Vec<RequestRecord> {
        std::mem::take(&mut *self.inner.lock())
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl RequestObserver for RequestLog {
    fn on_request(&self, record: RequestRecord) {
        self.inner.lock().push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cacheportal_web::PageKey;

    fn record(id: u64) -> RequestRecord {
        RequestRecord {
            id,
            servlet: "s".into(),
            request_string: "/s?a=1".into(),
            cookie_string: String::new(),
            post_string: String::new(),
            page_key: PageKey::raw(format!("k{id}")),
            received: id * 10,
            delivered: id * 10 + 5,
        }
    }

    #[test]
    fn drain_empties_the_log() {
        let log = RequestLog::new();
        log.on_request(record(1));
        log.on_request(record(2));
        assert_eq!(log.len(), 2);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert!(log.is_empty());
        assert!(log.drain().is_empty());
    }
}

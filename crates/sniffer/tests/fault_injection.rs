//! Sniffer behavior under injected log faults.
//!
//! The mapper's interval-containment join is only safe if losses are
//! *visible*: a dropped SELECT record means some page may be cached with a
//! missing dependency edge, and the portal compensates by ejecting pages
//! admitted in that window. These tests pin the contract the portal relies
//! on — `QueryLog::lost()` counts every drop, `MapperReport::lost` reports
//! the per-run delta exactly once, duplicates and reorders never lose or
//! invent associations.

use cacheportal_db::{FaultPlan, FaultSpec, Value};
use cacheportal_sniffer::{Mapper, QiUrlMap, QueryLog, RequestLog};
use cacheportal_web::{PageKey, RequestObserver, RequestRecord};
use std::sync::Arc;

fn request(id: u64, recv: u64, deliver: u64) -> RequestRecord {
    RequestRecord {
        id,
        servlet: "s".into(),
        request_string: format!("/s?id={id}"),
        cookie_string: String::new(),
        post_string: String::new(),
        page_key: PageKey::raw(format!("page{id}")),
        received: recv,
        delivered: deliver,
    }
}

fn setup() -> (Arc<RequestLog>, Arc<QueryLog>, Mapper) {
    let rl = Arc::new(RequestLog::new());
    let ql = QueryLog::new();
    let map = Arc::new(QiUrlMap::new());
    let mapper = Mapper::new(rl.clone(), ql.clone(), map);
    (rl, ql, mapper)
}

#[test]
fn dropped_records_are_counted_never_silently_skipped() {
    let (rl, ql, mut mapper) = setup();
    ql.set_fault_plan(FaultPlan::new(FaultSpec {
        sniffer_drop: 1.0,
        ..FaultSpec::default()
    }));
    rl.on_request(request(1, 0, 100));
    ql.record("SELECT * FROM Car", &[], true, 10, 20);
    ql.record("SELECT * FROM Car WHERE price < $1", &[Value::Int(5)], true, 30, 40);
    assert!(ql.is_empty(), "p=1.0 drops every record before buffering");
    assert_eq!(ql.lost(), 2);

    let rep = mapper.run_once();
    assert_eq!(rep.mapped, 0, "dropped records cannot map");
    assert_eq!(rep.lost, 2, "the mapper surfaces the loss to its caller");

    // The delta is reported exactly once.
    let rep2 = mapper.run_once();
    assert_eq!(rep2.lost, 0);
}

#[test]
fn partial_drop_still_maps_survivors() {
    let (rl, ql, mut mapper) = setup();
    // Seeded 50% drop: with 40 records, both outcomes occur.
    ql.set_fault_plan(FaultPlan::new(FaultSpec {
        seed: 7,
        sniffer_drop: 0.5,
        ..FaultSpec::default()
    }));
    rl.on_request(request(1, 0, 1_000));
    for i in 0..40 {
        ql.record(
            "SELECT * FROM Car WHERE price < $1",
            &[Value::Int(i)],
            true,
            10 + i as u64,
            11 + i as u64,
        );
    }
    let rep = mapper.run_once();
    assert!(rep.lost > 0, "some records dropped");
    assert!(rep.mapped > 0, "some records survived");
    assert_eq!(rep.mapped + rep.lost, 40, "every record accounted for");
}

#[test]
fn duplicated_records_map_to_the_same_dependency() {
    let (rl, ql, mut mapper) = setup();
    ql.set_fault_plan(FaultPlan::new(FaultSpec {
        sniffer_dup: 1.0,
        ..FaultSpec::default()
    }));
    rl.on_request(request(1, 0, 100));
    ql.record("SELECT * FROM Car", &[], true, 10, 20);
    assert_eq!(ql.len(), 2, "record duplicated in the log");
    assert_eq!(ql.duplicated(), 1);

    let rep = mapper.run_once();
    assert_eq!(rep.lost, 0, "duplication loses nothing");
    assert_eq!(rep.mapped, 2, "both copies map");
    // The QI/URL map dedups (same SQL, same page): no spurious entries.
    assert_eq!(mapper.map().len(), 1);
    assert_eq!(mapper.map().all()[0].page_key, PageKey::raw("page1"));
}

#[test]
fn reordered_log_produces_identical_map() {
    let build = |reorder: bool| {
        let (rl, ql, mut mapper) = setup();
        ql.set_fault_plan(FaultPlan::new(FaultSpec {
            sniffer_reorder: reorder,
            // An inert spec collapses to the no-op plan; keep a second
            // (never-firing) site active so `reorder=false` also exercises
            // the faulted code path.
            sniffer_drop: if reorder { 0.0 } else { f64::MIN_POSITIVE },
            ..FaultSpec::default()
        }));
        rl.on_request(request(1, 0, 50));
        rl.on_request(request(2, 60, 100));
        ql.record("SELECT * FROM Car WHERE price < $1", &[Value::Int(1)], true, 10, 20);
        ql.record("SELECT * FROM Car WHERE price < $1", &[Value::Int(2)], true, 70, 80);
        ql.record("SELECT maker FROM Car", &[], true, 30, 40);
        let rep = mapper.run_once();
        let mut entries: Vec<(String, String)> = mapper
            .map()
            .all()
            .iter()
            .map(|e| (e.sql.clone(), e.page_key.to_string()))
            .collect();
        entries.sort();
        (rep.mapped, entries)
    };
    let (mapped_inorder, inorder) = build(false);
    let (mapped_reordered, reordered) = build(true);
    assert_eq!(mapped_inorder, 3);
    assert_eq!(mapped_inorder, mapped_reordered);
    assert_eq!(inorder, reordered, "mapping is order-insensitive");
}

#[test]
fn drop_of_one_of_two_queries_leaves_partial_mapping() {
    // The scenario that makes "eject only unmapped pages" unsound: a page
    // issues two queries, one is dropped. The page still maps (via the
    // survivor), yet it is missing a dependency edge. The portal must treat
    // any nonzero `lost` as tainting every page admitted in the window.
    let (rl, ql, mut mapper) = setup();
    // seed chosen so exactly one of the two record ids (1, 2) drops.
    let mut seed = 0;
    loop {
        let probe = FaultPlan::new(FaultSpec {
            seed,
            sniffer_drop: 0.5,
            ..FaultSpec::default()
        });
        let d1 = probe.drop_query_record(1);
        let d2 = probe.drop_query_record(2);
        if d1 != d2 {
            break;
        }
        seed += 1;
    }
    ql.set_fault_plan(FaultPlan::new(FaultSpec {
        seed,
        sniffer_drop: 0.5,
        ..FaultSpec::default()
    }));
    rl.on_request(request(1, 0, 100));
    ql.record("SELECT * FROM Car", &[], true, 10, 20);
    ql.record("SELECT EPA FROM Mileage", &[], true, 30, 40);
    let rep = mapper.run_once();
    assert_eq!(rep.mapped, 1, "the surviving query still maps");
    assert_eq!(rep.lost, 1, "…but the loss is reported alongside it");
}

#[test]
fn inert_plan_changes_nothing() {
    let (rl, ql, mut mapper) = setup();
    ql.set_fault_plan(FaultPlan::none());
    rl.on_request(request(1, 0, 100));
    ql.record("SELECT * FROM Car", &[], true, 10, 20);
    let rep = mapper.run_once();
    assert_eq!(rep.mapped, 1);
    assert_eq!(rep.lost, 0);
    assert_eq!(ql.lost(), 0);
    assert_eq!(ql.duplicated(), 0);
}

//! Property tests for the interval-containment mapper.
//!
//! * With non-overlapping request windows (serial requests), every query is
//!   attributed to exactly the request that issued it.
//! * With arbitrary (possibly overlapping) windows, the attribution is a
//!   superset of the truth — conservative in the safe direction.

use cacheportal_db::Value;
use cacheportal_sniffer::{Mapper, QiUrlMap, QueryLog, RequestLog};
use cacheportal_web::{PageKey, RequestObserver, RequestRecord};
use proptest::prelude::*;
use std::sync::Arc;

fn request(id: u64, recv: u64, deliver: u64) -> RequestRecord {
    RequestRecord {
        id,
        servlet: "s".into(),
        request_string: format!("/s?id={id}"),
        cookie_string: String::new(),
        post_string: String::new(),
        page_key: PageKey::raw(format!("page{id}")),
        received: recv,
        delivered: deliver,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serial (non-overlapping) requests: exact attribution, no ambiguity.
    #[test]
    fn serial_requests_map_exactly(
        // (request duration, #queries, gap to next request)
        spec in prop::collection::vec((2u64..40, 1usize..4, 1u64..10), 1..20),
    ) {
        let rl = Arc::new(RequestLog::new());
        let ql = QueryLog::new();
        let map = Arc::new(QiUrlMap::new());

        let mut t = 0u64;
        let mut expected = Vec::new(); // (query marker, page id)
        for (id, (dur, nq, gap)) in spec.iter().enumerate() {
            let recv = t;
            let deliver = t + dur;
            // Queries strictly inside the window, distinct values so every
            // map row is unique.
            for q in 0..*nq {
                let qt = recv + 1 + (q as u64 % dur.saturating_sub(1).max(1));
                let marker = (id * 10 + q) as i64;
                ql.record(
                    "SELECT * FROM t WHERE a = $1",
                    &[Value::Int(marker)],
                    true,
                    qt.min(deliver - 1),
                    (qt + 1).min(deliver),
                );
                expected.push((marker, id as u64));
            }
            rl.on_request(request(id as u64, recv, deliver));
            t = deliver + gap;
        }

        let mut mapper = Mapper::new(rl, ql, map.clone());
        let report = mapper.run_once();
        prop_assert_eq!(report.ambiguous, 0, "serial windows cannot overlap");
        prop_assert_eq!(report.mapped as usize, expected.len());
        let rows = map.all();
        for (marker, req_id) in expected {
            let row = rows
                .iter()
                .find(|r| r.sql.ends_with(&format!("a = {marker}")))
                .expect("every query mapped");
            prop_assert_eq!(
                row.page_key.clone(),
                PageKey::raw(format!("page{req_id}")),
                "query {} attributed to the wrong request",
                marker
            );
        }
    }

    /// Arbitrary windows: the true owner is always among the attributions
    /// (the conservative superset property invalidation safety relies on).
    #[test]
    fn overlapping_requests_never_lose_the_true_owner(
        windows in prop::collection::vec((0u64..100, 5u64..60), 2..12),
    ) {
        let rl = Arc::new(RequestLog::new());
        let ql = QueryLog::new();
        let map = Arc::new(QiUrlMap::new());
        let mut truth = Vec::new();
        for (id, (start, dur)) in windows.iter().enumerate() {
            let recv = *start;
            let deliver = start + dur;
            // One query strictly inside this request's window.
            let qt = recv + dur / 2;
            ql.record(
                "SELECT * FROM t WHERE a = $1",
                &[Value::Int(id as i64)],
                true,
                qt,
                qt + 1,
            );
            truth.push((id as i64, id as u64));
            rl.on_request(request(id as u64, recv, deliver));
        }
        let mut mapper = Mapper::new(rl, ql, map.clone());
        mapper.run_once();
        let rows = map.all();
        for (marker, req_id) in truth {
            let owners: Vec<_> = rows
                .iter()
                .filter(|r| r.sql.ends_with(&format!("a = {marker}")))
                .map(|r| r.page_key.clone())
                .collect();
            prop_assert!(
                owners.contains(&PageKey::raw(format!("page{req_id}"))),
                "true owner page{req_id} missing from attributions of query {marker}: {owners:?}"
            );
        }
    }
}

//! Named metric registry: counters, gauges, and latency histograms.
//!
//! Instruments obtain `Arc` handles once (registration takes a write lock)
//! and then update them with plain atomic operations; the registry itself is
//! only locked again to take snapshots. Metric names are dotted paths such
//! as `cache.page.hits` or `invalidator.polls.issued`.

use crate::histogram::Histogram;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotone event counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite with a cumulative total maintained elsewhere. For metrics
    /// integrated from component-owned stats structs at sync points.
    pub fn set_total(&self, total: u64) {
        self.0.store(total, Ordering::Relaxed);
    }
}

/// Instantaneous signed level (pool sizes, queue depths).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Registry of named instruments. Cheap to share (`Arc` internally); cloning
/// handles out of it is the intended usage pattern.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Convenience: read a counter's current value (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.read().get(name).map_or(0, |c| c.get())
    }

    /// Convenience: read a gauge's current value (0 if absent).
    pub fn gauge_value(&self, name: &str) -> i64 {
        self.gauges.read().get(name).map_or(0, |g| g.get())
    }

    /// Snapshot every instrument as JSON:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name: {count, ..}}}`.
    ///
    /// Keys are explicitly sorted so snapshot artifacts (results/*.json) are
    /// byte-stable across runs regardless of registration order.
    pub fn snapshot(&self) -> serde_json::Value {
        use serde_json::Value;
        let mut counters: Vec<(String, Value)> = self
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Value::UInt(v.get())))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, Value)> = self
            .gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Value::Int(v.get())))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, Value)> = self
            .histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot().to_json()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("gauges".to_string(), Value::Object(gauges)),
            ("histograms".to_string(), Value::Object(histograms)),
        ])
    }

    /// Render every instrument in Prometheus text exposition format
    /// (version 0.0.4), sorted by metric name for stable output.
    ///
    /// Dotted registry names map to `cacheportal_<name with non-alphanumeric
    /// characters as '_'>`; counters additionally get the conventional
    /// `_total` suffix, and histograms are rendered as summaries with
    /// `quantile` labels plus `_sum`/`_count` series.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();

        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .iter()
            .map(|(k, v)| (prometheus_name(k), v.get()))
            .collect();
        counters.sort();
        for (name, v) in counters {
            let _ = writeln!(out, "# TYPE {name}_total counter\n{name}_total {v}");
        }

        let mut gauges: Vec<(String, i64)> = self
            .gauges
            .read()
            .iter()
            .map(|(k, v)| (prometheus_name(k), v.get()))
            .collect();
        gauges.sort();
        for (name, v) in gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }

        let mut summaries: Vec<(String, crate::HistogramSnapshot)> = self
            .histograms
            .read()
            .iter()
            .map(|(k, v)| (prometheus_name(k), v.snapshot()))
            .collect();
        summaries.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, s) in summaries {
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, v) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", s.sum, s.count);
        }
        out
    }

    /// Human-readable dump, one instrument per line, sorted by name.
    pub fn fmt_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (k, v) in self.counters.read().iter() {
            let _ = writeln!(out, "counter    {k:<48} {}", v.get());
        }
        for (k, v) in self.gauges.read().iter() {
            let _ = writeln!(out, "gauge      {k:<48} {}", v.get());
        }
        for (k, v) in self.histograms.read().iter() {
            let s = v.snapshot();
            let _ = writeln!(
                out,
                "histogram  {k:<48} n={} mean={:.1} p50={} p95={} p99={} max={}",
                s.count, s.mean, s.p50, s.p95, s.p99, s.max
            );
        }
        out
    }
}

/// `cache.page.hits` → `cacheportal_cache_page_hits`.
pub fn prometheus_name(dotted: &str) -> String {
    let mut name = String::with_capacity(dotted.len() + 12);
    name.push_str("cacheportal_");
    for c in dotted.chars() {
        if c.is_ascii_alphanumeric() {
            name.push(c);
        } else {
            name.push('_');
        }
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared() {
        let r = MetricsRegistry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        a.inc();
        b.add(2);
        assert_eq!(r.counter_value("x.hits"), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn gauge_levels() {
        let r = MetricsRegistry::new();
        let g = r.gauge("pool.size");
        g.set(5);
        g.add(-2);
        assert_eq!(r.gauge_value("pool.size"), 3);
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_well_formed() {
        let r = MetricsRegistry::new();
        // Register deliberately out of order; output must be sorted.
        r.counter("web.requests").add(3);
        r.counter("cache.page.hits").add(7);
        r.gauge("db.log.pending").set(-2);
        r.histogram("invalidator.sync.micros").record(100);
        r.histogram("invalidator.sync.micros").record(200);
        let text = r.render_prometheus();

        let hits = text.find("cacheportal_cache_page_hits_total 7").unwrap();
        let reqs = text.find("cacheportal_web_requests_total 3").unwrap();
        assert!(hits < reqs, "counters not sorted:\n{text}");
        assert!(text.contains("# TYPE cacheportal_cache_page_hits_total counter"));
        assert!(text.contains("# TYPE cacheportal_db_log_pending gauge"));
        assert!(text.contains("cacheportal_db_log_pending -2"));
        assert!(text.contains("# TYPE cacheportal_invalidator_sync_micros summary"));
        assert!(text.contains("cacheportal_invalidator_sync_micros{quantile=\"0.5\"}"));
        assert!(text.contains("cacheportal_invalidator_sync_micros_sum 300"));
        assert!(text.contains("cacheportal_invalidator_sync_micros_count 2"));

        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(name.starts_with("cacheportal_"), "bad name in {line}");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
        }
    }

    #[test]
    fn snapshot_and_exposition_are_deterministic_across_registration_order() {
        let build = |names: &[&str]| {
            let r = MetricsRegistry::new();
            for (i, n) in names.iter().enumerate() {
                r.counter(n).add(i as u64 + 1);
            }
            // Same values regardless of registration order.
            for (i, n) in names.iter().enumerate() {
                r.counter(n).set_total(10 + i as u64);
            }
            r
        };
        let a = build(&["z.last", "a.first", "m.mid"]);
        let b = build(&["m.mid", "z.last", "a.first"]);
        // set_total indexed by iteration order differs; normalize values.
        for n in ["z.last", "a.first", "m.mid"] {
            a.counter(n).set_total(5);
            b.counter(n).set_total(5);
        }
        assert_eq!(
            serde_json::to_string(&a.snapshot()).unwrap(),
            serde_json::to_string(&b.snapshot()).unwrap()
        );
        assert_eq!(a.render_prometheus(), b.render_prometheus());
    }

    #[test]
    fn snapshot_shape() {
        let r = MetricsRegistry::new();
        r.counter("a").inc();
        r.gauge("b").set(-1);
        r.histogram("c").record(10);
        let s = r.snapshot();
        assert_eq!(s["counters"]["a"].as_u64(), Some(1));
        assert_eq!(s["gauges"]["b"].as_i64(), Some(-1));
        assert_eq!(s["histograms"]["c"]["count"].as_u64(), Some(1));
        // Round-trips through JSON text.
        let text = serde_json::to_string(&s).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["counters"]["a"].as_u64(), Some(1));
    }
}

//! Named metric registry: counters, gauges, and latency histograms.
//!
//! Instruments obtain `Arc` handles once (registration takes a write lock)
//! and then update them with plain atomic operations; the registry itself is
//! only locked again to take snapshots. Metric names are dotted paths such
//! as `cache.page.hits` or `invalidator.polls.issued`.

use crate::histogram::Histogram;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotone event counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite with a cumulative total maintained elsewhere. For metrics
    /// integrated from component-owned stats structs at sync points.
    pub fn set_total(&self, total: u64) {
        self.0.store(total, Ordering::Relaxed);
    }
}

/// Instantaneous signed level (pool sizes, queue depths).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Registry of named instruments. Cheap to share (`Arc` internally); cloning
/// handles out of it is the intended usage pattern.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Convenience: read a counter's current value (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.read().get(name).map_or(0, |c| c.get())
    }

    /// Convenience: read a gauge's current value (0 if absent).
    pub fn gauge_value(&self, name: &str) -> i64 {
        self.gauges.read().get(name).map_or(0, |g| g.get())
    }

    /// Snapshot every instrument as JSON:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name: {count, ..}}}`.
    pub fn snapshot(&self) -> serde_json::Value {
        use serde_json::Value;
        let counters = self
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Value::UInt(v.get())))
            .collect();
        let gauges = self
            .gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Value::Int(v.get())))
            .collect();
        let histograms = self
            .histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot().to_json()))
            .collect();
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("gauges".to_string(), Value::Object(gauges)),
            ("histograms".to_string(), Value::Object(histograms)),
        ])
    }

    /// Human-readable dump, one instrument per line, sorted by name.
    pub fn fmt_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (k, v) in self.counters.read().iter() {
            let _ = writeln!(out, "counter    {k:<48} {}", v.get());
        }
        for (k, v) in self.gauges.read().iter() {
            let _ = writeln!(out, "gauge      {k:<48} {}", v.get());
        }
        for (k, v) in self.histograms.read().iter() {
            let s = v.snapshot();
            let _ = writeln!(
                out,
                "histogram  {k:<48} n={} mean={:.1} p50={} p95={} p99={} max={}",
                s.count, s.mean, s.p50, s.p95, s.p99, s.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared() {
        let r = MetricsRegistry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        a.inc();
        b.add(2);
        assert_eq!(r.counter_value("x.hits"), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn gauge_levels() {
        let r = MetricsRegistry::new();
        let g = r.gauge("pool.size");
        g.set(5);
        g.add(-2);
        assert_eq!(r.gauge_value("pool.size"), 3);
    }

    #[test]
    fn snapshot_shape() {
        let r = MetricsRegistry::new();
        r.counter("a").inc();
        r.gauge("b").set(-1);
        r.histogram("c").record(10);
        let s = r.snapshot();
        assert_eq!(s["counters"]["a"].as_u64(), Some(1));
        assert_eq!(s["gauges"]["b"].as_i64(), Some(-1));
        assert_eq!(s["histograms"]["c"]["count"].as_u64(), Some(1));
        // Round-trips through JSON text.
        let text = serde_json::to_string(&s).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["counters"]["a"].as_u64(), Some(1));
    }
}

//! JSONL event export: stream trace events and provenance records to any
//! `io::Write` for offline analysis.
//!
//! The exporter is cursor-based: each call emits only events recorded since
//! the previous call, one JSON object per line. Five kinds of lines:
//!
//! ```json
//! {"kind":"trace","seq":3,"ts":120,"scope":"core","name":"sync.point","detail":"...","duration_micros":17,"trace_id":2,"span_id":5,"parent_span":0}
//! {"kind":"eject","seq":0,"sync_seq":1,"lsn_first":0,...,"url":"...","causes":[...]}
//! {"kind":"scorecard","version":4,"type_id":0,"hits":12,"hit_rate":0.75,...}
//! {"kind":"alert","seq":0,"ts":120,"objective":"staleness-p99","pair":"fast","severity":"page","state":"firing",...}
//! {"kind":"flightrecord","seq":0,"ts":130,"reason":"slo-breach:...","bytes":4096,"path":"..."}
//! ```
//!
//! Trace lines carry causal ids when present, and scorecard lines are a
//! full snapshot of every per-query-type row, re-emitted only when the
//! board's version counter moved — downstream admission-policy tooling can
//! keep the latest version per `type_id`.
//!
//! Because both rings are bounded, events that rotate out between calls are
//! lost; the per-call [`ExportStats`] reports how many were skipped so the
//! gap is visible in tooling.

use std::io;

use crate::Obs;

/// What one [`JsonlExporter::export`] call wrote.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExportStats {
    /// Trace-event lines written.
    pub trace_events: u64,
    /// Eject-record lines written.
    pub eject_records: u64,
    /// Scorecard rows written.
    pub scorecard_rows: u64,
    /// SLO alert-transition lines written.
    pub alerts: u64,
    /// Flight-record index lines written.
    pub flight_records: u64,
    /// Events that rotated out of the bounded rings before this call and
    /// were therefore never written.
    pub skipped: u64,
}

/// Incremental JSONL exporter over an [`Obs`] bundle.
#[derive(Debug, Default)]
pub struct JsonlExporter {
    next_trace_seq: u64,
    next_eject_seq: u64,
    last_scorecard_version: u64,
    next_alert_seq: u64,
    next_flight_seq: u64,
}

impl JsonlExporter {
    /// An exporter starting from the beginning of both rings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write all trace events and eject records recorded since the last
    /// call as JSONL, advancing the cursors.
    pub fn export<W: io::Write>(&mut self, obs: &Obs, w: &mut W) -> io::Result<ExportStats> {
        let mut stats = ExportStats::default();

        let events = obs.tracer.recent(usize::MAX);
        if let Some(first) = events.first() {
            stats.skipped += first.seq.saturating_sub(self.next_trace_seq);
        }
        let trace_cursor = self.next_trace_seq;
        for e in events.iter().filter(|e| e.seq >= trace_cursor) {
            let mut obj = vec![
                ("kind".to_string(), serde_json::Value::String("trace".to_string())),
                ("seq".to_string(), serde_json::Value::UInt(e.seq)),
                ("ts".to_string(), serde_json::Value::UInt(e.ts)),
                ("scope".to_string(), serde_json::Value::String(e.scope.to_string())),
                ("name".to_string(), serde_json::Value::String(e.name.to_string())),
                ("detail".to_string(), serde_json::Value::String(e.detail.clone())),
            ];
            if let Some(d) = e.duration_micros {
                obj.push(("duration_micros".to_string(), serde_json::Value::UInt(d)));
            }
            if e.trace_id != 0 {
                obj.push(("trace_id".to_string(), serde_json::Value::UInt(e.trace_id)));
                obj.push(("span_id".to_string(), serde_json::Value::UInt(e.span_id)));
                obj.push(("parent_span".to_string(), serde_json::Value::UInt(e.parent_span)));
            }
            let line = serde_json::to_string(&serde_json::Value::Object(obj))
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            writeln!(w, "{line}")?;
            stats.trace_events += 1;
            self.next_trace_seq = e.seq + 1;
        }

        let records = obs.provenance.since(self.next_eject_seq);
        if let Some(first) = records.first() {
            stats.skipped += first.seq.saturating_sub(self.next_eject_seq);
        }
        for r in &records {
            let mut obj = vec![(
                "kind".to_string(),
                serde_json::Value::String("eject".to_string()),
            )];
            if let serde_json::Value::Object(fields) = r.to_json() {
                obj.extend(fields);
            }
            let line = serde_json::to_string(&serde_json::Value::Object(obj))
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            writeln!(w, "{line}")?;
            stats.eject_records += 1;
            self.next_eject_seq = r.seq + 1;
        }

        let version = obs.scorecards.version();
        if version != self.last_scorecard_version {
            for row in obs.scorecards.rows() {
                let mut obj = vec![
                    (
                        "kind".to_string(),
                        serde_json::Value::String("scorecard".to_string()),
                    ),
                    ("version".to_string(), serde_json::Value::UInt(version)),
                ];
                if let serde_json::Value::Object(fields) = crate::ScorecardBoard::row_to_json(&row) {
                    obj.extend(fields);
                }
                let line = serde_json::to_string(&serde_json::Value::Object(obj))
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                writeln!(w, "{line}")?;
                stats.scorecard_rows += 1;
            }
            self.last_scorecard_version = version;
        }

        let alerts = obs.slo.alerts_since(self.next_alert_seq);
        if let Some(first) = alerts.first() {
            stats.skipped += first.seq.saturating_sub(self.next_alert_seq);
        }
        for a in &alerts {
            let mut obj = vec![(
                "kind".to_string(),
                serde_json::Value::String("alert".to_string()),
            )];
            if let serde_json::Value::Object(fields) = a.to_json() {
                obj.extend(fields);
            }
            let line = serde_json::to_string(&serde_json::Value::Object(obj))
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            writeln!(w, "{line}")?;
            stats.alerts += 1;
            self.next_alert_seq = a.seq + 1;
        }

        let dumps = obs.recorder.index_since(self.next_flight_seq);
        if let Some(first) = dumps.first() {
            stats.skipped += first.seq.saturating_sub(self.next_flight_seq);
        }
        for m in &dumps {
            let mut obj = vec![(
                "kind".to_string(),
                serde_json::Value::String("flightrecord".to_string()),
            )];
            if let serde_json::Value::Object(fields) = m.to_json() {
                obj.extend(fields);
            }
            let line = serde_json::to_string(&serde_json::Value::Object(obj))
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            writeln!(w, "{line}")?;
            stats.flight_records += 1;
            self.next_flight_seq = m.seq + 1;
        }

        w.flush()?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::{Cause, DeltaGroup, EjectRecord};

    fn eject(url: &str, lsn: u64) -> EjectRecord {
        EjectRecord {
            seq: 0,
            sync_seq: 1,
            ts: 99,
            lsn_first: lsn,
            lsn_last: lsn,
            deltas: vec![DeltaGroup {
                table: "car".into(),
                inserted: 1,
                deleted: 0,
            }],
            url: url.to_string(),
            resident: true,
            causes: vec![Cause {
                query_type: 0,
                type_sql: "SELECT 1".into(),
                params: vec![],
                verdict: "local-predicate".into(),
                detail: "".into(),
            }],
            trace_id: 0,
            span_id: 0,
            parent_span: 0,
        }
    }

    #[test]
    fn exports_incrementally_as_valid_jsonl() {
        let obs = Obs::new();
        obs.tracer.event("core", "update.commit", 10, "lsn=0");
        obs.provenance.record(eject("/a", 0));

        let mut exporter = JsonlExporter::new();
        let mut out = Vec::new();
        let stats = exporter.export(&obs, &mut out).unwrap();
        assert_eq!(stats.trace_events, 1);
        assert_eq!(stats.eject_records, 1);
        assert_eq!(stats.skipped, 0);

        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["kind"].as_str(), Some("trace"));
        assert_eq!(first["name"].as_str(), Some("update.commit"));
        let second: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second["kind"].as_str(), Some("eject"));
        assert_eq!(second["url"].as_str(), Some("/a"));
        assert_eq!(second["causes"][0]["verdict"].as_str(), Some("local-predicate"));

        // Second export with nothing new writes nothing.
        let mut out2 = Vec::new();
        let stats2 = exporter.export(&obs, &mut out2).unwrap();
        assert_eq!(stats2, ExportStats::default());
        assert!(out2.is_empty());

        // New events only.
        obs.tracer.event("core", "sync.point", 20, "");
        let mut out3 = Vec::new();
        let stats3 = exporter.export(&obs, &mut out3).unwrap();
        assert_eq!(stats3.trace_events, 1);
        assert_eq!(stats3.eject_records, 0);
    }

    #[test]
    fn exports_causal_ids_and_scorecard_snapshots() {
        let obs = Obs::new();
        let root = obs.tracer.start_trace("core", "sync.point", 5, "sync#0");
        obs.tracer.child_event(root, "cache", "eject", 6, "page:a");
        obs.scorecards.note_sync(&[crate::TypeSyncOutcome {
            type_id: 2,
            sql: "SELECT 1".into(),
            invalidations: 1,
            ..Default::default()
        }]);

        let mut exporter = JsonlExporter::new();
        let mut out = Vec::new();
        let stats = exporter.export(&obs, &mut out).unwrap();
        assert_eq!(stats.trace_events, 2);
        assert_eq!(stats.scorecard_rows, 1);

        let text = String::from_utf8(out).unwrap();
        let lines: Vec<serde_json::Value> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(lines[0]["trace_id"].as_u64(), Some(root.trace_id));
        assert_eq!(lines[0]["parent_span"].as_u64(), Some(0));
        assert_eq!(lines[1]["parent_span"].as_u64(), Some(root.span_id));
        let card = &lines[2];
        assert_eq!(card["kind"].as_str(), Some("scorecard"));
        assert_eq!(card["type_id"].as_u64(), Some(2));
        assert_eq!(card["invalidations"].as_u64(), Some(1));

        // Unchanged board: no scorecard re-emission.
        let mut out2 = Vec::new();
        let stats2 = exporter.export(&obs, &mut out2).unwrap();
        assert_eq!(stats2.scorecard_rows, 0);
        assert!(out2.is_empty());

        // Board moved: the full snapshot is re-emitted at the new version.
        obs.scorecards.note_sync(&[crate::TypeSyncOutcome {
            type_id: 3,
            ..Default::default()
        }]);
        let mut out3 = Vec::new();
        let stats3 = exporter.export(&obs, &mut out3).unwrap();
        assert_eq!(stats3.scorecard_rows, 2);
    }

    #[test]
    fn reports_skipped_when_ring_rotates() {
        let obs = Obs::with_capacity(2, 2);
        let mut exporter = JsonlExporter::new();
        for i in 0..5u64 {
            obs.provenance.record(eject(&format!("/p{i}"), i));
        }
        let mut out = Vec::new();
        let stats = exporter.export(&obs, &mut out).unwrap();
        // Ring holds the last 2 of 5; the first 3 rotated out unexported.
        assert_eq!(stats.eject_records, 2);
        assert_eq!(stats.skipped, 3);
    }

    #[test]
    fn exports_alert_transitions_incrementally() {
        use crate::slo::{Objective, SloKind, SloPolicy};
        let obs = Obs::new();
        obs.slo.configure(SloPolicy {
            objectives: vec![Objective::new(SloKind::StalenessP99, 100, 0.99, true)],
            pairs: SloPolicy::default_pairs(),
            bucket_micros: 60_000_000,
            alert_log_cap: 32,
        });
        obs.slo.observe_latency(SloKind::StalenessP99, 1_000, 5_000, 10);
        obs.slo.evaluate(1_000);

        let mut exporter = JsonlExporter::new();
        let mut out = Vec::new();
        let stats = exporter.export(&obs, &mut out).unwrap();
        assert_eq!(stats.alerts, 2, "fast + slow firing transitions");
        let text = String::from_utf8(out).unwrap();
        let first: serde_json::Value =
            serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(first["kind"].as_str(), Some("alert"));
        assert_eq!(first["objective"].as_str(), Some("staleness-p99"));
        assert_eq!(first["state"].as_str(), Some("firing"));
        assert_eq!(first["severity"].as_str(), Some("page"));

        // Steady firing: no new transitions, nothing re-exported.
        obs.slo.evaluate(2_000);
        let mut out2 = Vec::new();
        let stats2 = exporter.export(&obs, &mut out2).unwrap();
        assert_eq!(stats2.alerts, 0);
        assert!(out2.is_empty());

        // Resolution produces fresh lines past the cursor.
        obs.slo.evaluate(2_000 + 8 * 3_600_000_000);
        let mut out3 = Vec::new();
        let stats3 = exporter.export(&obs, &mut out3).unwrap();
        assert_eq!(stats3.alerts, 2);
        let text3 = String::from_utf8(out3).unwrap();
        assert!(text3.contains("\"resolved\""));
    }

    #[test]
    fn reports_skipped_when_alert_log_overflows() {
        use crate::slo::{Objective, SloKind, SloPolicy};
        let obs = Obs::new();
        obs.slo.configure(SloPolicy {
            objectives: vec![Objective::new(SloKind::StalenessP99, 100, 0.99, true)],
            pairs: SloPolicy::default_pairs(),
            bucket_micros: 60_000_000,
            alert_log_cap: 2,
        });
        // Flap 3×: fire (bad burst) then resolve (age out) = 12 transitions
        // against a 2-entry log.
        let mut now = 1_000u64;
        for _ in 0..3 {
            obs.slo.observe_latency(SloKind::StalenessP99, now, 5_000, 10);
            obs.slo.evaluate(now);
            now += 8 * 3_600_000_000;
            obs.slo.evaluate(now);
            now += 60_000_000;
        }
        let mut exporter = JsonlExporter::new();
        let mut out = Vec::new();
        let stats = exporter.export(&obs, &mut out).unwrap();
        assert_eq!(stats.alerts, 2, "only what survived the bounded log");
        assert_eq!(stats.skipped, 10, "the truncation gap is visible");
    }

    #[test]
    fn exports_flight_record_index_with_overflow_marker() {
        let obs = Obs::new();
        let doc = serde_json::Value::Object(vec![(
            "schema".to_string(),
            serde_json::Value::String(crate::FLIGHT_RECORD_SCHEMA.to_string()),
        )]);
        obs.recorder.record("on-demand", 10, &doc).unwrap();
        obs.recorder.record("slo-breach:staleness-p99:fast", 20, &doc).unwrap();

        let mut exporter = JsonlExporter::new();
        let mut out = Vec::new();
        let stats = exporter.export(&obs, &mut out).unwrap();
        assert_eq!(stats.flight_records, 2);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<serde_json::Value> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(lines[0]["kind"].as_str(), Some("flightrecord"));
        assert_eq!(lines[1]["reason"].as_str(), Some("slo-breach:staleness-p99:fast"));
        assert!(lines[0]["bytes"].as_u64().unwrap() > 0);

        // Incremental: nothing new, nothing written.
        let mut out2 = Vec::new();
        assert_eq!(exporter.export(&obs, &mut out2).unwrap().flight_records, 0);

        // Overflow the bounded index (default cap 64): the cursor reports
        // the rotated-out rows as skipped instead of silently resuming.
        for i in 0..70u64 {
            obs.recorder.record(&format!("r{i}"), 100 + i, &doc).unwrap();
        }
        let mut out3 = Vec::new();
        let stats3 = exporter.export(&obs, &mut out3).unwrap();
        assert_eq!(stats3.flight_records, 64);
        assert_eq!(stats3.skipped, 6);
    }
}

//! Live health state behind the admin endpoint's `/healthz`.
//!
//! The portal's components publish their condition into a [`HealthState`]
//! (lock-free atomics, cheap to update from the sync-point path); the admin
//! endpoint renders a [`HealthSnapshot`] per request. The contract:
//!
//! * **healthy** — every breaker closed, no recovery in progress, no WAL
//!   errors: `200` with the plain `ok` body probes expect.
//! * **degraded** — breakers half-open (probing) but nothing worse: still
//!   `200` (the portal serves correctly — conservatively), JSON body.
//! * **unhealthy** — breakers open, recovery in progress, or the durable
//!   layer reported write errors (crash safety is compromised): `503` with
//!   a JSON body naming every reason.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Shared mutable health flags; one per portal, updated by the sync-point
/// and recovery paths, read by `/healthz`.
#[derive(Debug, Default)]
pub struct HealthState {
    breaker_open: AtomicU64,
    breaker_half_open: AtomicU64,
    recovering: AtomicBool,
    wal_errors: AtomicU64,
    recovery_gap_ejects: AtomicU64,
    recoveries: AtomicU64,
}

impl HealthState {
    /// A fresh, healthy state.
    pub fn new() -> Self {
        HealthState::default()
    }

    /// Publish the breaker gauges after a sync point.
    pub fn set_breaker(&self, open: u64, half_open: u64) {
        self.breaker_open.store(open, Ordering::Relaxed);
        self.breaker_half_open.store(half_open, Ordering::Relaxed);
    }

    /// Mark crash recovery as started (`true`) or finished (`false`).
    pub fn set_recovering(&self, active: bool) {
        self.recovering.store(active, Ordering::Relaxed);
        if !active {
            self.recoveries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count a failed WAL append/sync/checkpoint. Durability errors are
    /// sticky: once the crash-safety guarantee is gone, the portal stays
    /// unhealthy until restarted.
    pub fn record_wal_error(&self) {
        self.wal_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Count pages ejected by the recovery gap scan (informational).
    pub fn add_recovery_gap_ejects(&self, n: u64) {
        self.recovery_gap_ejects.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy for rendering.
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            breaker_open: self.breaker_open.load(Ordering::Relaxed),
            breaker_half_open: self.breaker_half_open.load(Ordering::Relaxed),
            recovering: self.recovering.load(Ordering::Relaxed),
            wal_errors: self.wal_errors.load(Ordering::Relaxed),
            recovery_gap_ejects: self.recovery_gap_ejects.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time health flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Query types whose poll-path breaker is open (degraded).
    pub breaker_open: u64,
    /// Query types half-open (probing).
    pub breaker_half_open: u64,
    /// Crash recovery currently rebuilding state.
    pub recovering: bool,
    /// Durable-layer write failures since start (sticky).
    pub wal_errors: u64,
    /// Pages conservatively ejected by recovery gap scans.
    pub recovery_gap_ejects: u64,
    /// Completed crash recoveries since start.
    pub recoveries: u64,
}

/// Overall status bucket a snapshot maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// Everything nominal.
    Healthy,
    /// Serving correctly but conservatively (half-open breakers).
    Degraded,
    /// Open breakers, in-flight recovery, or lost durability.
    Unhealthy,
}

impl HealthStatus {
    /// Lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Healthy => "healthy",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Unhealthy => "unhealthy",
        }
    }
}

/// A rendered `/healthz` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthResponse {
    /// HTTP status code (`200` or `503`).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HealthResponse {
    /// The legacy always-healthy reply (used by sources with no health
    /// signal — keeps plain probes working).
    pub fn ok() -> Self {
        HealthResponse {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: "ok\n".to_string(),
        }
    }
}

impl HealthSnapshot {
    /// Classify the snapshot.
    pub fn status(&self) -> HealthStatus {
        if self.breaker_open > 0 || self.recovering || self.wal_errors > 0 {
            HealthStatus::Unhealthy
        } else if self.breaker_half_open > 0 {
            HealthStatus::Degraded
        } else {
            HealthStatus::Healthy
        }
    }

    /// Render the `/healthz` reply. Healthy keeps the exact plain `ok`
    /// body existing probes and scripts match on; anything else is a JSON
    /// document naming the reasons, with `503` when unhealthy.
    pub fn to_response(&self) -> HealthResponse {
        let status = self.status();
        if status == HealthStatus::Healthy {
            return HealthResponse::ok();
        }
        let mut reasons: Vec<serde_json::Value> = Vec::new();
        if self.breaker_open > 0 {
            reasons.push(serde_json::Value::String(format!(
                "{} query type(s) breaker-open (polling degraded to conservative)",
                self.breaker_open
            )));
        }
        if self.recovering {
            reasons.push(serde_json::Value::String(
                "crash recovery in progress".to_string(),
            ));
        }
        if self.wal_errors > 0 {
            reasons.push(serde_json::Value::String(format!(
                "{} durable-layer write error(s); crash safety compromised",
                self.wal_errors
            )));
        }
        if self.breaker_half_open > 0 {
            reasons.push(serde_json::Value::String(format!(
                "{} query type(s) half-open (probing)",
                self.breaker_half_open
            )));
        }
        let doc = serde_json::Value::Object(vec![
            (
                "status".to_string(),
                serde_json::Value::String(status.as_str().to_string()),
            ),
            ("reasons".to_string(), serde_json::Value::Array(reasons)),
            (
                "breaker_open_types".to_string(),
                serde_json::Value::UInt(self.breaker_open),
            ),
            (
                "breaker_half_open_types".to_string(),
                serde_json::Value::UInt(self.breaker_half_open),
            ),
            (
                "recovering".to_string(),
                serde_json::Value::Bool(self.recovering),
            ),
            (
                "wal_errors".to_string(),
                serde_json::Value::UInt(self.wal_errors),
            ),
            (
                "recovery_gap_ejects".to_string(),
                serde_json::Value::UInt(self.recovery_gap_ejects),
            ),
            (
                "recoveries".to_string(),
                serde_json::Value::UInt(self.recoveries),
            ),
        ]);
        HealthResponse {
            status: if status == HealthStatus::Unhealthy {
                503
            } else {
                200
            },
            content_type: "application/json",
            body: serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_state_keeps_the_plain_ok_contract() {
        let h = HealthState::new();
        let resp = h.snapshot().to_response();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "ok\n");
    }

    #[test]
    fn open_breakers_flip_to_503_and_back() {
        let h = HealthState::new();
        h.set_breaker(2, 0);
        let resp = h.snapshot().to_response();
        assert_eq!(resp.status, 503);
        assert!(resp.body.contains("breaker-open"));
        assert_eq!(h.snapshot().status(), HealthStatus::Unhealthy);

        h.set_breaker(0, 1);
        let resp = h.snapshot().to_response();
        assert_eq!(resp.status, 200, "half-open still serves correctly");
        assert!(resp.body.contains("half-open"));
        assert_eq!(h.snapshot().status(), HealthStatus::Degraded);

        h.set_breaker(0, 0);
        assert_eq!(h.snapshot().to_response().body, "ok\n");
    }

    #[test]
    fn recovery_and_wal_errors_are_unhealthy() {
        let h = HealthState::new();
        h.set_recovering(true);
        assert_eq!(h.snapshot().status(), HealthStatus::Unhealthy);
        h.set_recovering(false);
        assert_eq!(h.snapshot().status(), HealthStatus::Healthy);
        assert_eq!(h.snapshot().recoveries, 1);

        h.record_wal_error();
        let resp = h.snapshot().to_response();
        assert_eq!(resp.status, 503);
        assert!(resp.body.contains("crash safety compromised"));
    }
}

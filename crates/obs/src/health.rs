//! Live health state behind the admin endpoint's `/healthz`.
//!
//! The portal's components publish their condition into a [`HealthState`]
//! (lock-free atomics, cheap to update from the sync-point path); the admin
//! endpoint renders a [`HealthSnapshot`] per request. The contract:
//!
//! * **healthy** — every breaker closed, no recovery in progress, no WAL
//!   errors, no fast-burn SLO alert: `200` with the plain `ok` body probes
//!   expect.
//! * **degraded** — breakers half-open (probing) or a slow-burn SLO alert,
//!   but nothing worse: still `200` (the portal serves correctly —
//!   conservatively), JSON body.
//! * **unhealthy** — breakers open, recovery in progress, lost durability
//!   (crash safety compromised), or a fast-burn SLO alert firing: `503`
//!   with a JSON body naming every reason.
//!
//! Every degradation cause is a [`Reason`] with one canonical kebab-case
//! code — `/healthz`, `/slo` context, flight-record bundles, and the
//! `health.reason.*` metric gauges all render the same strings, so
//! dashboards, alert routes, and scripts key on a single vocabulary.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Canonical degradation causes. The `as_str` code is the single source
/// of truth for every rendering (`/healthz` reasons, `/slo` context,
/// `health.reason.*` gauges, flight-record bundles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reason {
    /// Poll-path circuit breaker open for one or more query types.
    BreakerOpen,
    /// Breaker half-open (probing) for one or more query types.
    BreakerHalfOpen,
    /// Crash recovery rebuilding state.
    CrashRecovery,
    /// Durable-layer write errors (crash safety compromised, sticky).
    WalError,
    /// A fast-burn (page severity) SLO alert is firing.
    SloFastBurn,
    /// A slow-burn (ticket severity) SLO alert is firing.
    SloSlowBurn,
    /// One or more bus edges unreachable; they self-eject conservatively
    /// (TTL/Vcache-style degradation) until the partition heals.
    EdgePartitioned,
}

impl Reason {
    /// Every reason, in rendering order.
    pub const ALL: [Reason; 7] = [
        Reason::BreakerOpen,
        Reason::CrashRecovery,
        Reason::WalError,
        Reason::SloFastBurn,
        Reason::BreakerHalfOpen,
        Reason::SloSlowBurn,
        Reason::EdgePartitioned,
    ];

    /// The canonical kebab-case code.
    pub fn as_str(self) -> &'static str {
        match self {
            Reason::BreakerOpen => "breaker-open",
            Reason::BreakerHalfOpen => "breaker-half-open",
            Reason::CrashRecovery => "crash-recovery",
            Reason::WalError => "wal-error",
            Reason::SloFastBurn => "slo-fast-burn",
            Reason::SloSlowBurn => "slo-slow-burn",
            Reason::EdgePartitioned => "edge-partitioned",
        }
    }

    /// Whether this reason alone makes the portal unhealthy (`503`) or
    /// merely degraded (`200` + JSON). A partitioned edge is degraded,
    /// not unhealthy: the edge serves conservatively (self-ejected) and
    /// the origin portal is still correct.
    pub fn unhealthy(self) -> bool {
        !matches!(
            self,
            Reason::BreakerHalfOpen | Reason::SloSlowBurn | Reason::EdgePartitioned
        )
    }
}

/// Shared mutable health flags; one per portal, updated by the sync-point
/// and recovery paths, read by `/healthz`.
#[derive(Debug, Default)]
pub struct HealthState {
    breaker_open: AtomicU64,
    breaker_half_open: AtomicU64,
    recovering: AtomicBool,
    wal_errors: AtomicU64,
    recovery_gap_ejects: AtomicU64,
    recoveries: AtomicU64,
    slo_fast_firing: AtomicU64,
    slo_slow_firing: AtomicU64,
    edges_partitioned: AtomicU64,
}

impl HealthState {
    /// A fresh, healthy state.
    pub fn new() -> Self {
        HealthState::default()
    }

    /// Publish the breaker gauges after a sync point.
    pub fn set_breaker(&self, open: u64, half_open: u64) {
        self.breaker_open.store(open, Ordering::Relaxed);
        self.breaker_half_open.store(half_open, Ordering::Relaxed);
    }

    /// Publish the firing SLO alert counts after an evaluation pass.
    pub fn set_slo(&self, fast_firing: u64, slow_firing: u64) {
        self.slo_fast_firing.store(fast_firing, Ordering::Relaxed);
        self.slo_slow_firing.store(slow_firing, Ordering::Relaxed);
    }

    /// Publish how many bus edges are currently marked partitioned.
    pub fn set_edges_partitioned(&self, n: u64) {
        self.edges_partitioned.store(n, Ordering::Relaxed);
    }

    /// Mark crash recovery as started (`true`) or finished (`false`).
    pub fn set_recovering(&self, active: bool) {
        self.recovering.store(active, Ordering::Relaxed);
        if !active {
            self.recoveries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count a failed WAL append/sync/checkpoint. Durability errors are
    /// sticky: once the crash-safety guarantee is gone, the portal stays
    /// unhealthy until restarted.
    pub fn record_wal_error(&self) {
        self.wal_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Count pages ejected by the recovery gap scan (informational).
    pub fn add_recovery_gap_ejects(&self, n: u64) {
        self.recovery_gap_ejects.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy for rendering.
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            breaker_open: self.breaker_open.load(Ordering::Relaxed),
            breaker_half_open: self.breaker_half_open.load(Ordering::Relaxed),
            recovering: self.recovering.load(Ordering::Relaxed),
            wal_errors: self.wal_errors.load(Ordering::Relaxed),
            recovery_gap_ejects: self.recovery_gap_ejects.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            slo_fast_firing: self.slo_fast_firing.load(Ordering::Relaxed),
            slo_slow_firing: self.slo_slow_firing.load(Ordering::Relaxed),
            edges_partitioned: self.edges_partitioned.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time health flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Query types whose poll-path breaker is open (degraded).
    pub breaker_open: u64,
    /// Query types half-open (probing).
    pub breaker_half_open: u64,
    /// Crash recovery currently rebuilding state.
    pub recovering: bool,
    /// Durable-layer write failures since start (sticky).
    pub wal_errors: u64,
    /// Pages conservatively ejected by recovery gap scans.
    pub recovery_gap_ejects: u64,
    /// Completed crash recoveries since start.
    pub recoveries: u64,
    /// (objective, pair) combinations firing on a fast-burn pair.
    pub slo_fast_firing: u64,
    /// (objective, pair) combinations firing on a slow-burn pair.
    pub slo_slow_firing: u64,
    /// Bus edges currently marked partitioned (self-ejecting).
    pub edges_partitioned: u64,
}

/// Overall status bucket a snapshot maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// Everything nominal.
    Healthy,
    /// Serving correctly but conservatively (half-open breakers or a
    /// slow-burn SLO alert).
    Degraded,
    /// Open breakers, in-flight recovery, lost durability, or a fast-burn
    /// SLO alert.
    Unhealthy,
}

impl HealthStatus {
    /// Lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Healthy => "healthy",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Unhealthy => "unhealthy",
        }
    }
}

/// A rendered `/healthz` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthResponse {
    /// HTTP status code (`200` or `503`).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HealthResponse {
    /// The legacy always-healthy reply (used by sources with no health
    /// signal — keeps plain probes working).
    pub fn ok() -> Self {
        HealthResponse {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: "ok\n".to_string(),
        }
    }
}

impl HealthSnapshot {
    /// How many instances of `reason` the snapshot carries (0 = not
    /// active). One shared accessor so `/healthz`, `/slo`, and the
    /// `health.reason.*` gauges can never disagree.
    pub fn reason_count(&self, reason: Reason) -> u64 {
        match reason {
            Reason::BreakerOpen => self.breaker_open,
            Reason::BreakerHalfOpen => self.breaker_half_open,
            Reason::CrashRecovery => u64::from(self.recovering),
            Reason::WalError => self.wal_errors,
            Reason::SloFastBurn => self.slo_fast_firing,
            Reason::SloSlowBurn => self.slo_slow_firing,
            Reason::EdgePartitioned => self.edges_partitioned,
        }
    }

    /// Active reasons with their counts and a human detail line.
    pub fn reasons(&self) -> Vec<(Reason, u64, String)> {
        Reason::ALL
            .iter()
            .filter_map(|&r| {
                let n = self.reason_count(r);
                if n == 0 {
                    return None;
                }
                let detail = match r {
                    Reason::BreakerOpen => format!(
                        "{n} query type(s) breaker-open (polling degraded to conservative)"
                    ),
                    Reason::BreakerHalfOpen => {
                        format!("{n} query type(s) half-open (probing)")
                    }
                    Reason::CrashRecovery => "crash recovery in progress".to_string(),
                    Reason::WalError => format!(
                        "{n} durable-layer write error(s); crash safety compromised"
                    ),
                    Reason::SloFastBurn => format!(
                        "{n} fast-burn SLO alert(s) firing (error budget burning at page rate)"
                    ),
                    Reason::SloSlowBurn => {
                        format!("{n} slow-burn SLO alert(s) firing")
                    }
                    Reason::EdgePartitioned => format!(
                        "{n} bus edge(s) partitioned (self-ejecting until catch-up)"
                    ),
                };
                Some((r, n, detail))
            })
            .collect()
    }

    /// Classify the snapshot.
    pub fn status(&self) -> HealthStatus {
        let reasons = self.reasons();
        if reasons.iter().any(|(r, _, _)| r.unhealthy()) {
            HealthStatus::Unhealthy
        } else if reasons.is_empty() {
            HealthStatus::Healthy
        } else {
            HealthStatus::Degraded
        }
    }

    /// The snapshot as a JSON object (flight-record bundles, `/slo`
    /// context). Reasons appear as `{code, count, detail}` rows using the
    /// canonical [`Reason`] codes.
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        let reasons: Vec<Value> = self
            .reasons()
            .into_iter()
            .map(|(r, n, detail)| {
                Value::Object(vec![
                    ("code".to_string(), Value::String(r.as_str().to_string())),
                    ("count".to_string(), Value::UInt(n)),
                    ("detail".to_string(), Value::String(detail)),
                ])
            })
            .collect();
        Value::Object(vec![
            (
                "status".to_string(),
                Value::String(self.status().as_str().to_string()),
            ),
            ("reasons".to_string(), Value::Array(reasons)),
            ("breaker_open_types".to_string(), Value::UInt(self.breaker_open)),
            (
                "breaker_half_open_types".to_string(),
                Value::UInt(self.breaker_half_open),
            ),
            ("recovering".to_string(), Value::Bool(self.recovering)),
            ("wal_errors".to_string(), Value::UInt(self.wal_errors)),
            (
                "recovery_gap_ejects".to_string(),
                Value::UInt(self.recovery_gap_ejects),
            ),
            ("recoveries".to_string(), Value::UInt(self.recoveries)),
            (
                "slo_fast_firing".to_string(),
                Value::UInt(self.slo_fast_firing),
            ),
            (
                "slo_slow_firing".to_string(),
                Value::UInt(self.slo_slow_firing),
            ),
            (
                "edges_partitioned".to_string(),
                Value::UInt(self.edges_partitioned),
            ),
        ])
    }

    /// Render the `/healthz` reply. Healthy keeps the exact plain `ok`
    /// body existing probes and scripts match on; anything else is the
    /// [`HealthSnapshot::to_json`] document, with `503` when unhealthy.
    pub fn to_response(&self) -> HealthResponse {
        let status = self.status();
        if status == HealthStatus::Healthy {
            return HealthResponse::ok();
        }
        HealthResponse {
            status: if status == HealthStatus::Unhealthy {
                503
            } else {
                200
            },
            content_type: "application/json",
            body: serde_json::to_string_pretty(&self.to_json())
                .unwrap_or_else(|_| "{}".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_state_keeps_the_plain_ok_contract() {
        let h = HealthState::new();
        let resp = h.snapshot().to_response();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "ok\n");
    }

    #[test]
    fn open_breakers_flip_to_503_and_back() {
        let h = HealthState::new();
        h.set_breaker(2, 0);
        let resp = h.snapshot().to_response();
        assert_eq!(resp.status, 503);
        assert!(resp.body.contains("breaker-open"));
        assert_eq!(h.snapshot().status(), HealthStatus::Unhealthy);

        h.set_breaker(0, 1);
        let resp = h.snapshot().to_response();
        assert_eq!(resp.status, 200, "half-open still serves correctly");
        assert!(resp.body.contains("half-open"));
        assert_eq!(h.snapshot().status(), HealthStatus::Degraded);

        h.set_breaker(0, 0);
        assert_eq!(h.snapshot().to_response().body, "ok\n");
    }

    #[test]
    fn recovery_and_wal_errors_are_unhealthy() {
        let h = HealthState::new();
        h.set_recovering(true);
        assert_eq!(h.snapshot().status(), HealthStatus::Unhealthy);
        h.set_recovering(false);
        assert_eq!(h.snapshot().status(), HealthStatus::Healthy);
        assert_eq!(h.snapshot().recoveries, 1);

        h.record_wal_error();
        let resp = h.snapshot().to_response();
        assert_eq!(resp.status, 503);
        assert!(resp.body.contains("crash safety compromised"));
    }

    #[test]
    fn slo_burns_map_to_status_like_breakers() {
        let h = HealthState::new();
        h.set_slo(0, 1);
        let resp = h.snapshot().to_response();
        assert_eq!(resp.status, 200, "slow burn degrades, does not page");
        assert!(resp.body.contains("slo-slow-burn"));
        assert_eq!(h.snapshot().status(), HealthStatus::Degraded);

        h.set_slo(2, 1);
        let resp = h.snapshot().to_response();
        assert_eq!(resp.status, 503, "fast burn is unhealthy");
        assert!(resp.body.contains("slo-fast-burn"));

        h.set_slo(0, 0);
        assert_eq!(h.snapshot().to_response().body, "ok\n");
    }

    #[test]
    fn partitioned_edges_degrade_without_paging() {
        let h = HealthState::new();
        h.set_edges_partitioned(1);
        let resp = h.snapshot().to_response();
        assert_eq!(resp.status, 200, "partitioned edge degrades, serves safely");
        assert!(resp.body.contains("edge-partitioned"));
        assert_eq!(h.snapshot().status(), HealthStatus::Degraded);
        assert_eq!(h.snapshot().reason_count(Reason::EdgePartitioned), 1);

        h.set_edges_partitioned(0);
        assert_eq!(h.snapshot().to_response().body, "ok\n");
    }

    #[test]
    fn reasons_use_canonical_codes_everywhere() {
        let h = HealthState::new();
        h.set_breaker(1, 2);
        h.set_slo(1, 0);
        let snap = h.snapshot();
        let codes: Vec<&str> = snap.reasons().iter().map(|(r, _, _)| r.as_str()).collect();
        assert_eq!(codes, vec!["breaker-open", "slo-fast-burn", "breaker-half-open"]);
        // The JSON rendering carries the same codes as {code, count, detail}.
        let doc = snap.to_json();
        assert_eq!(doc["reasons"][0]["code"].as_str(), Some("breaker-open"));
        assert_eq!(doc["reasons"][0]["count"].as_u64(), Some(1));
        // Counts come from the single shared accessor.
        assert_eq!(snap.reason_count(Reason::BreakerHalfOpen), 2);
        assert_eq!(snap.reason_count(Reason::CrashRecovery), 0);
    }
}

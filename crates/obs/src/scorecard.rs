//! Per-query-type cost/benefit scorecards behind the `/scorecards` admin
//! endpoint.
//!
//! A cost-aware admission policy (ROADMAP item 5) needs, per cached query
//! type: what caching *saves* (observed hit rate, recompute cost of a miss)
//! and what it *costs* (invalidation churn, polling-query spend, staleness
//! exposure). The portal feeds the board from two sides:
//!
//! * the request path calls [`ScorecardBoard::note_request`] per served URL
//!   (hit/miss plus a deterministic render-cost measure — database rows
//!   scanned while generating the page, NOT wall time, so scorecards are
//!   byte-stable across seeded runs);
//! * each sync point resolves pending URLs to their registered query types
//!   via [`ScorecardBoard::attribute_pending`] and folds in that sync's
//!   per-type invalidation/poll/staleness outcome via
//!   [`ScorecardBoard::note_sync`].
//!
//! URLs served before their query types register (or that never register —
//! non-cacheable paths) fold into the `unattributed` bucket instead of
//! leaking memory. Rendering is sorted by type id and fully deterministic.

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Request-side tallies for one URL, pending attribution to query types.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageTally {
    /// Cache hits served.
    pub hits: u64,
    /// Misses (page generated).
    pub misses: u64,
    /// Generations with a measured render cost.
    pub renders: u64,
    /// Deterministic render cost units (db rows scanned during generation).
    pub render_cost_units: u64,
}

impl PageTally {
    fn fold(&mut self, other: &PageTally) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.renders += other.renders;
        self.render_cost_units += other.render_cost_units;
    }
}

/// One sync point's outcome for one query type (built by the portal from
/// the invalidation report's deterministic per-type stats).
#[derive(Debug, Clone, Default)]
pub struct TypeSyncOutcome {
    /// Query type id.
    pub type_id: u32,
    /// Parameterized SQL template (kept current on the score row).
    pub sql: String,
    /// Instance verdicts naming this type this sync.
    pub invalidations: u64,
    /// Pages named by this type's verdicts (churn; overlapping pages count
    /// once per naming type).
    pub pages_ejected: u64,
    /// Polling queries attempted for this type.
    pub polls: u64,
    /// Modeled poll spend: polls x configured poll RTT (deterministic).
    pub poll_spend_micros: u64,
    /// Commit→eject staleness window (logical micros) attributed to this
    /// type this sync, summed over its invalidated instances.
    pub staleness_micros: u64,
    /// Staleness observations behind `staleness_micros`.
    pub staleness_events: u64,
    /// Instances the predicate index handed to the decision loop.
    pub index_candidates: u64,
    /// Instances the predicate index proved unaffected and skipped.
    pub index_skipped: u64,
    /// Instances scanned via the residual (unindexable) fallback.
    pub index_residual: u64,
    /// Query-shape classifier verdict for this type ("conjunctive",
    /// "topk", "aggregate", "like", "in"); empty when unreported.
    pub shape: String,
    /// Instances a shape rule (top-k boundary / aggregate delta) kept
    /// cached where the conventional path would have ejected.
    pub shape_skipped: u64,
}

/// Cumulative cost/benefit score for one query type.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TypeScore {
    /// Query type id.
    pub type_id: u32,
    /// Parameterized SQL template.
    pub sql: String,
    /// Request-side benefit measures.
    pub pages: PageTally,
    /// Update batches (sync points) that touched this type.
    pub sync_touches: u64,
    /// Instance invalidations across all syncs.
    pub invalidations: u64,
    /// Pages ejected on this type's behalf.
    pub pages_ejected: u64,
    /// Polling queries attempted.
    pub polls: u64,
    /// Modeled poll spend in (deterministic) microseconds.
    pub poll_spend_micros: u64,
    /// Cumulative attributed staleness, logical microseconds.
    pub staleness_micros: u64,
    /// Observations behind `staleness_micros`.
    pub staleness_events: u64,
    /// Instances the predicate index handed to the decision loop.
    pub index_candidates: u64,
    /// Instances the predicate index proved unaffected and skipped.
    pub index_skipped: u64,
    /// Instances scanned via the residual (unindexable) fallback.
    pub index_residual: u64,
    /// Query-shape classifier verdict (kept current on the score row).
    pub shape: String,
    /// Cumulative instances the shape rules kept cached.
    pub shape_skipped: u64,
}

impl TypeScore {
    /// Observed hit rate over requests attributed to this type.
    pub fn hit_rate(&self) -> f64 {
        let total = self.pages.hits + self.pages.misses;
        if total == 0 {
            0.0
        } else {
            self.pages.hits as f64 / total as f64
        }
    }

    /// Mean render cost units per generation.
    pub fn avg_render_cost(&self) -> f64 {
        if self.pages.renders == 0 {
            0.0
        } else {
            self.pages.render_cost_units as f64 / self.pages.renders as f64
        }
    }

    /// Mean attributed staleness window per observation (logical micros).
    pub fn avg_staleness_micros(&self) -> f64 {
        if self.staleness_events == 0 {
            0.0
        } else {
            self.staleness_micros as f64 / self.staleness_events as f64
        }
    }

    /// Fraction of registered-instance visits the predicate index skipped
    /// (0.0 when no instances were considered — e.g. index disabled).
    pub fn index_hit_rate(&self) -> f64 {
        let total = self.index_candidates + self.index_skipped + self.index_residual;
        if total == 0 {
            0.0
        } else {
            self.index_skipped as f64 / total as f64
        }
    }

    /// Fraction of instance visits that went through the residual full
    /// scan (the index could not classify or narrow them).
    pub fn residual_fraction(&self) -> f64 {
        let total = self.index_candidates + self.index_skipped + self.index_residual;
        if total == 0 {
            0.0
        } else {
            self.index_residual as f64 / total as f64
        }
    }
}

/// The scorecard aggregation board. All methods take `&self`.
pub struct ScorecardBoard {
    /// URL → tallies accumulated since the last sync point.
    pending: Mutex<HashMap<String, PageTally>>,
    /// type id → cumulative score (BTreeMap: sorted, deterministic render).
    scores: Mutex<BTreeMap<u32, TypeScore>>,
    /// Tallies for URLs that never resolved to a query type.
    unattributed: Mutex<PageTally>,
    /// Bumped on every attribution/sync fold; lets exporters skip unchanged
    /// boards.
    version: AtomicU64,
    pending_cap: usize,
    pending_dropped: AtomicU64,
    enabled: AtomicBool,
}

impl ScorecardBoard {
    /// A board holding at most `pending_cap` distinct unattributed URLs
    /// between sync points.
    pub fn new(pending_cap: usize) -> Self {
        ScorecardBoard {
            pending: Mutex::new(HashMap::new()),
            scores: Mutex::new(BTreeMap::new()),
            unattributed: Mutex::new(PageTally::default()),
            version: AtomicU64::new(0),
            pending_cap: pending_cap.max(1),
            pending_dropped: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Turn request-side recording on or off (for overhead A/B benches).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is recording enabled?
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record one served request for `url`. `render_cost` is the
    /// deterministic unit count for a generated page (None for cache hits).
    pub fn note_request(&self, url: &str, hit: bool, render_cost: Option<u64>) {
        if !self.enabled() {
            return;
        }
        let mut pending = self.pending.lock();
        if !pending.contains_key(url) && pending.len() >= self.pending_cap {
            self.pending_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let t = pending.entry(url.to_string()).or_default();
        if hit {
            t.hits += 1;
        } else {
            t.misses += 1;
        }
        if let Some(cost) = render_cost {
            t.renders += 1;
            t.render_cost_units += cost;
        }
    }

    /// Drain pending URL tallies, attributing each to the query types
    /// `resolve` reports for it (a URL feeding several types credits each).
    /// Unresolvable URLs fold into the `unattributed` bucket.
    pub fn attribute_pending(&self, mut resolve: impl FnMut(&str) -> Vec<(u32, String)>) {
        let drained: Vec<(String, PageTally)> = {
            let mut pending = self.pending.lock();
            let mut items: Vec<_> = pending.drain().collect();
            // Deterministic fold order regardless of hash iteration.
            items.sort_by(|a, b| a.0.cmp(&b.0));
            items
        };
        if drained.is_empty() {
            return;
        }
        let mut scores = self.scores.lock();
        for (url, tally) in drained {
            let types = resolve(&url);
            if types.is_empty() {
                self.unattributed.lock().fold(&tally);
                continue;
            }
            for (type_id, sql) in types {
                let row = scores.entry(type_id).or_default();
                row.type_id = type_id;
                if row.sql.is_empty() {
                    row.sql = sql;
                }
                row.pages.fold(&tally);
            }
        }
        self.version.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one sync point's per-type outcomes into the board.
    pub fn note_sync(&self, outcomes: &[TypeSyncOutcome]) {
        if outcomes.is_empty() {
            return;
        }
        let mut scores = self.scores.lock();
        for o in outcomes {
            let row = scores.entry(o.type_id).or_default();
            row.type_id = o.type_id;
            if row.sql.is_empty() {
                row.sql = o.sql.clone();
            }
            row.sync_touches += 1;
            row.invalidations += o.invalidations;
            row.pages_ejected += o.pages_ejected;
            row.polls += o.polls;
            row.poll_spend_micros += o.poll_spend_micros;
            row.staleness_micros += o.staleness_micros;
            row.staleness_events += o.staleness_events;
            row.index_candidates += o.index_candidates;
            row.index_skipped += o.index_skipped;
            row.index_residual += o.index_residual;
            if !o.shape.is_empty() {
                row.shape = o.shape.clone();
            }
            row.shape_skipped += o.shape_skipped;
        }
        self.version.fetch_add(1, Ordering::Relaxed);
    }

    /// Monotone change counter (bumped by attribution and sync folds).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// URLs rejected by the pending-map bound.
    pub fn pending_dropped(&self) -> u64 {
        self.pending_dropped.load(Ordering::Relaxed)
    }

    /// Current rows, sorted by type id.
    pub fn rows(&self) -> Vec<TypeScore> {
        self.scores.lock().values().cloned().collect()
    }

    /// Render one score row as a JSON object (used by `/scorecards` and the
    /// JSONL exporter so both emit the identical shape).
    pub fn row_to_json(row: &TypeScore) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            ("type_id".to_string(), Value::UInt(row.type_id as u64)),
            ("sql".to_string(), Value::String(row.sql.clone())),
            ("hits".to_string(), Value::UInt(row.pages.hits)),
            ("misses".to_string(), Value::UInt(row.pages.misses)),
            ("hit_rate".to_string(), Value::Float(row.hit_rate())),
            ("renders".to_string(), Value::UInt(row.pages.renders)),
            (
                "render_cost_units".to_string(),
                Value::UInt(row.pages.render_cost_units),
            ),
            ("avg_render_cost".to_string(), Value::Float(row.avg_render_cost())),
            ("sync_touches".to_string(), Value::UInt(row.sync_touches)),
            ("invalidations".to_string(), Value::UInt(row.invalidations)),
            ("pages_ejected".to_string(), Value::UInt(row.pages_ejected)),
            ("polls".to_string(), Value::UInt(row.polls)),
            (
                "poll_spend_micros".to_string(),
                Value::UInt(row.poll_spend_micros),
            ),
            (
                "staleness_micros".to_string(),
                Value::UInt(row.staleness_micros),
            ),
            (
                "staleness_events".to_string(),
                Value::UInt(row.staleness_events),
            ),
            (
                "avg_staleness_micros".to_string(),
                Value::Float(row.avg_staleness_micros()),
            ),
            (
                "index_candidates".to_string(),
                Value::UInt(row.index_candidates),
            ),
            ("index_skipped".to_string(), Value::UInt(row.index_skipped)),
            ("index_residual".to_string(), Value::UInt(row.index_residual)),
            ("index_hit_rate".to_string(), Value::Float(row.index_hit_rate())),
            (
                "residual_fraction".to_string(),
                Value::Float(row.residual_fraction()),
            ),
            ("shape".to_string(), Value::String(row.shape.clone())),
            ("shape_skipped".to_string(), Value::UInt(row.shape_skipped)),
        ])
    }

    /// The `/scorecards` JSON document: sorted rows plus the unattributed
    /// bucket and pending-map health. Fully deterministic for a fixed seed
    /// (no wall-clock fields anywhere).
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        let rows = self.rows().iter().map(Self::row_to_json).collect();
        let un = self.unattributed.lock().clone();
        Value::Object(vec![
            ("version".to_string(), Value::UInt(self.version())),
            (
                "pending_urls".to_string(),
                Value::UInt(self.pending.lock().len() as u64),
            ),
            (
                "pending_dropped".to_string(),
                Value::UInt(self.pending_dropped()),
            ),
            (
                "unattributed".to_string(),
                Value::Object(vec![
                    ("hits".to_string(), Value::UInt(un.hits)),
                    ("misses".to_string(), Value::UInt(un.misses)),
                    ("renders".to_string(), Value::UInt(un.renders)),
                    (
                        "render_cost_units".to_string(),
                        Value::UInt(un.render_cost_units),
                    ),
                ]),
            ),
            ("scorecards".to_string(), Value::Array(rows)),
        ])
    }
}

impl Default for ScorecardBoard {
    /// 4096-URL pending bound.
    fn default() -> Self {
        ScorecardBoard::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolve_fixed(url: &str) -> Vec<(u32, String)> {
        match url {
            "page:a" => vec![(1, "SELECT x FROM t WHERE k = $1".to_string())],
            "page:b" => vec![
                (1, "SELECT x FROM t WHERE k = $1".to_string()),
                (2, "SELECT y FROM u WHERE k = $1".to_string()),
            ],
            _ => Vec::new(),
        }
    }

    #[test]
    fn request_tallies_attribute_to_types() {
        let board = ScorecardBoard::default();
        board.note_request("page:a", false, Some(12));
        board.note_request("page:a", true, None);
        board.note_request("page:b", true, None);
        board.note_request("page:zzz", false, Some(5));
        board.attribute_pending(resolve_fixed);

        let rows = board.rows();
        assert_eq!(rows.len(), 2);
        let t1 = &rows[0];
        assert_eq!(t1.type_id, 1);
        assert_eq!(t1.pages.hits, 2); // page:a hit + page:b hit
        assert_eq!(t1.pages.misses, 1);
        assert_eq!(t1.pages.render_cost_units, 12);
        assert!((t1.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        let t2 = &rows[1];
        assert_eq!(t2.type_id, 2);
        assert_eq!(t2.pages.hits, 1);

        // Unresolvable URL landed in the unattributed bucket, not a row.
        let j = board.to_json();
        assert_eq!(j["unattributed"]["misses"].as_u64(), Some(1));
        assert_eq!(j["unattributed"]["render_cost_units"].as_u64(), Some(5));
        assert_eq!(j["pending_urls"].as_u64(), Some(0));
    }

    #[test]
    fn sync_outcomes_fold_and_bump_version() {
        let board = ScorecardBoard::default();
        assert_eq!(board.version(), 0);
        board.note_sync(&[TypeSyncOutcome {
            type_id: 3,
            sql: "SELECT 1".to_string(),
            invalidations: 2,
            pages_ejected: 4,
            polls: 1,
            poll_spend_micros: 400,
            staleness_micros: 90,
            staleness_events: 2,
            index_candidates: 0,
            index_skipped: 0,
            index_residual: 0,
            shape: "topk".to_string(),
            shape_skipped: 1,
        }]);
        assert_eq!(board.version(), 1);
        board.note_sync(&[TypeSyncOutcome {
            type_id: 3,
            invalidations: 1,
            ..Default::default()
        }]);
        let rows = board.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].invalidations, 3);
        assert_eq!(rows[0].sync_touches, 2);
        assert_eq!(rows[0].poll_spend_micros, 400);
        assert!((rows[0].avg_staleness_micros() - 45.0).abs() < 1e-9);
        // Empty outcome list does not bump the version.
        let v = board.version();
        board.note_sync(&[]);
        assert_eq!(board.version(), v);
    }

    #[test]
    fn rendering_is_sorted_and_byte_stable_across_insertion_order() {
        let run = |ids: &[u32]| {
            let board = ScorecardBoard::default();
            for &id in ids {
                board.note_sync(&[TypeSyncOutcome {
                    type_id: id,
                    sql: format!("SELECT {id}"),
                    invalidations: id as u64,
                    ..Default::default()
                }]);
            }
            board.note_request("page:b", true, None);
            board.note_request("page:a", false, Some(7));
            board.attribute_pending(resolve_fixed);
            serde_json::to_string(&board.to_json()).unwrap()
        };
        assert_eq!(run(&[5, 1, 9]), run(&[9, 5, 1]));
        let doc: serde_json::Value = serde_json::from_str(&run(&[5, 1, 9])).unwrap();
        let rows = doc["scorecards"].as_array().unwrap();
        let ids: Vec<u64> = rows.iter().map(|r| r["type_id"].as_u64().unwrap()).collect();
        assert_eq!(ids, vec![1, 2, 5, 9]);
    }

    #[test]
    fn pending_bound_drops_new_urls_and_counts() {
        let board = ScorecardBoard::new(2);
        board.note_request("page:a", true, None);
        board.note_request("page:b", true, None);
        board.note_request("page:c", true, None); // over cap: dropped
        board.note_request("page:a", true, None); // existing: still folds
        assert_eq!(board.pending_dropped(), 1);
        board.attribute_pending(resolve_fixed);
        assert_eq!(board.rows()[0].pages.hits, 3);
    }

    #[test]
    fn disabled_board_records_nothing() {
        let board = ScorecardBoard::default();
        board.set_enabled(false);
        board.note_request("page:a", true, None);
        board.attribute_pending(resolve_fixed);
        assert!(board.rows().is_empty());
        assert_eq!(board.version(), 0);
    }
}

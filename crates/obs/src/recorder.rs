//! Black-box flight recorder: on any SLO breach (or on demand) a
//! self-contained snapshot bundle — recent causal traces, the sync
//! timeline, metrics, scorecards, the provenance tail, breaker/WAL health,
//! and the SLO evaluation itself — is captured as one versioned JSON
//! document (`cacheportal.flightrecord.v1`) for offline post-mortems.
//!
//! The recorder owns storage only; the portal assembles the bundle (it is
//! the one holding every section). Bundles land in a bounded in-memory
//! ring (served by `/flightrecord?seq=N`) and, when a directory is armed,
//! are atomically persisted as `flightrecord-<seq>.json` — written to a
//! temp file first, then renamed, so a crash mid-dump never leaves a torn
//! bundle.
//!
//! [`verify_flight_record`] checks the bundle's *internal* coherence: every
//! provenance record's causal chain must resolve against the bundle's own
//! trace section (eject-phase span → `sync.point` root), the offline
//! mirror of `CachePortal::verify_causal_chains`.

use parking_lot::Mutex;
use serde_json::Value;
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};

/// Schema marker stamped into every bundle.
pub const FLIGHT_RECORD_SCHEMA: &str = "cacheportal.flightrecord.v1";

/// Index entry for one captured bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecordMeta {
    /// Monotone capture sequence number (exporter cursor key).
    pub seq: u64,
    /// Logical timestamp of the capture.
    pub ts: u64,
    /// Why the bundle was captured ("on-demand", "slo-breach:…").
    pub reason: String,
    /// On-disk path when a dump directory is armed.
    pub path: Option<String>,
    /// Serialized bundle size in bytes.
    pub bytes: u64,
}

impl FlightRecordMeta {
    /// JSON object (one index row / exporter line body).
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            ("seq".to_string(), Value::UInt(self.seq)),
            ("ts".to_string(), Value::UInt(self.ts)),
            ("reason".to_string(), Value::String(self.reason.clone())),
            ("bytes".to_string(), Value::UInt(self.bytes)),
        ];
        match &self.path {
            Some(p) => fields.push(("path".to_string(), Value::String(p.clone()))),
            None => fields.push(("path".to_string(), Value::Null)),
        }
        Value::Object(fields)
    }
}

struct RecorderInner {
    dir: Option<PathBuf>,
    index: VecDeque<FlightRecordMeta>,
    index_cap: usize,
    index_dropped: u64,
    bundles: VecDeque<(u64, Value)>,
    bundle_cap: usize,
    next_seq: u64,
}

/// Bounded storage for flight-record bundles (in-memory ring + optional
/// atomic disk dumps).
pub struct FlightRecorder {
    inner: Mutex<RecorderInner>,
}

impl Default for FlightRecorder {
    /// 8 retained bundles, 64 index rows, no disk directory.
    fn default() -> Self {
        FlightRecorder::new(8, 64)
    }
}

impl FlightRecorder {
    /// Recorder retaining the newest `bundle_cap` full bundles and
    /// `index_cap` index rows.
    pub fn new(bundle_cap: usize, index_cap: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Mutex::new(RecorderInner {
                dir: None,
                index: VecDeque::new(),
                index_cap: index_cap.max(1),
                index_dropped: 0,
                bundles: VecDeque::new(),
                bundle_cap: bundle_cap.max(1),
                next_seq: 0,
            }),
        }
    }

    /// Arm on-disk persistence: bundles are atomically written under
    /// `dir` (created if missing) as `flightrecord-<seq>.json`.
    pub fn set_dir(&self, dir: impl Into<PathBuf>) -> io::Result<()> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        self.inner.lock().dir = Some(dir);
        Ok(())
    }

    /// The armed dump directory, if any.
    pub fn dir(&self) -> Option<PathBuf> {
        self.inner.lock().dir.clone()
    }

    /// Store one bundle: ring + index, plus an atomic disk dump when a
    /// directory is armed. The caller passes the assembled document; the
    /// recorder never mutates it, so byte-stable inputs stay byte-stable.
    pub fn record(&self, reason: &str, ts: u64, doc: &Value) -> io::Result<FlightRecordMeta> {
        let rendered = serde_json::to_string_pretty(doc)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let path = match inner.dir.clone() {
            Some(dir) => Some(write_atomic(&dir, seq, &rendered)?),
            None => None,
        };
        let meta = FlightRecordMeta {
            seq,
            ts,
            reason: reason.to_string(),
            path,
            bytes: rendered.len() as u64,
        };
        if inner.index.len() >= inner.index_cap {
            inner.index.pop_front();
            inner.index_dropped += 1;
        }
        inner.index.push_back(meta.clone());
        if inner.bundles.len() >= inner.bundle_cap {
            inner.bundles.pop_front();
        }
        inner.bundles.push_back((seq, doc.clone()));
        Ok(meta)
    }

    /// Total bundles ever captured.
    pub fn recorded(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Index rows evicted from the bounded index.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().index_dropped
    }

    /// Index rows with `seq >= since`, oldest first (exporter cursor).
    pub fn index_since(&self, since: u64) -> Vec<FlightRecordMeta> {
        let inner = self.inner.lock();
        inner.index.iter().filter(|m| m.seq >= since).cloned().collect()
    }

    /// The newest `n` index rows, oldest first.
    pub fn index_recent(&self, n: usize) -> Vec<FlightRecordMeta> {
        let inner = self.inner.lock();
        let skip = inner.index.len().saturating_sub(n);
        inner.index.iter().skip(skip).cloned().collect()
    }

    /// A retained bundle by capture sequence number (None once it has
    /// rotated out of the in-memory ring — the disk copy, if armed,
    /// outlives the ring).
    pub fn bundle(&self, seq: u64) -> Option<Value> {
        let inner = self.inner.lock();
        inner.bundles.iter().find(|(s, _)| *s == seq).map(|(_, d)| d.clone())
    }

    /// The newest retained bundle.
    pub fn latest(&self) -> Option<Value> {
        self.inner.lock().bundles.back().map(|(_, d)| d.clone())
    }

    /// The `/flightrecord` index document.
    pub fn index_to_json(&self) -> Value {
        let inner = self.inner.lock();
        Value::Object(vec![
            ("schema".to_string(), Value::String(format!("{FLIGHT_RECORD_SCHEMA}.index"))),
            ("recorded".to_string(), Value::UInt(inner.next_seq)),
            ("dropped".to_string(), Value::UInt(inner.index_dropped)),
            (
                "dir".to_string(),
                match &inner.dir {
                    Some(d) => Value::String(d.display().to_string()),
                    None => Value::Null,
                },
            ),
            (
                "dumps".to_string(),
                Value::Array(inner.index.iter().map(|m| m.to_json()).collect()),
            ),
        ])
    }
}

/// Write `rendered` to `dir/flightrecord-<seq>.json` atomically (temp file
/// then rename) and return the final path.
fn write_atomic(dir: &Path, seq: u64, rendered: &str) -> io::Result<String> {
    let tmp = dir.join(format!(".flightrecord-{seq:06}.json.tmp"));
    let fin = dir.join(format!("flightrecord-{seq:06}.json"));
    std::fs::write(&tmp, rendered)?;
    std::fs::rename(&tmp, &fin)?;
    Ok(fin.display().to_string())
}

/// Verify a bundle's internal causal coherence: every provenance record
/// carrying a trace id must resolve, *within the bundle's own trace
/// section*, through its eject-phase parent span up to a `sync.point`
/// root. Returns the number of records verified; `Ok(0)` when the
/// bundle's trace section is truncated (evidence legitimately rotated
/// out) or carries no traced records.
pub fn verify_flight_record(doc: &Value) -> Result<u64, String> {
    if doc["schema"].as_str() != Some(FLIGHT_RECORD_SCHEMA) {
        return Err(format!(
            "not a flight record: schema {:?}",
            doc["schema"].as_str()
        ));
    }
    let trace = &doc["trace"];
    if trace["truncated"].as_bool() == Some(true) {
        return Ok(0);
    }
    // (trace_id, span_id) → (name, parent_span) over the embedded events.
    let mut spans = std::collections::HashMap::new();
    if let Some(events) = trace["recent"].as_array() {
        for e in events {
            let (Some(tid), Some(sid)) = (e["trace_id"].as_u64(), e["span_id"].as_u64()) else {
                continue;
            };
            let name = e["name"].as_str().unwrap_or("").to_string();
            let parent = e["parent_span"].as_u64().unwrap_or(0);
            spans.insert((tid, sid), (name, parent));
        }
    }
    let records = doc["provenance"]["recent"]
        .as_array()
        .ok_or_else(|| "bundle has no provenance section".to_string())?;
    let mut verified = 0u64;
    for rec in records {
        let tid = rec["trace_id"].as_u64().unwrap_or(0);
        if tid == 0 {
            continue; // untraced eject (recovery gap, tracing disabled)
        }
        let url = rec["url"].as_str().unwrap_or("?");
        let mut span = rec["parent_span"]
            .as_u64()
            .ok_or_else(|| format!("record for {url} lacks parent_span"))?;
        let Some((first_name, mut parent)) = spans.get(&(tid, span)).cloned() else {
            return Err(format!(
                "record for {url}: span {span} of trace {tid} not in bundle trace section"
            ));
        };
        if first_name != "sync.phase.eject" {
            return Err(format!(
                "record for {url}: parent span is {first_name:?}, expected sync.phase.eject"
            ));
        }
        let mut root_name = first_name;
        let mut hops = 0;
        while parent != 0 {
            span = parent;
            let Some((name, next)) = spans.get(&(tid, span)).cloned() else {
                return Err(format!(
                    "record for {url}: chain breaks at span {span} of trace {tid}"
                ));
            };
            root_name = name;
            parent = next;
            hops += 1;
            if hops > 64 {
                return Err(format!("record for {url}: span cycle in trace {tid}"));
            }
        }
        if root_name != "sync.point" {
            return Err(format!(
                "record for {url}: chain roots at {root_name:?}, expected sync.point"
            ));
        }
        verified += 1;
    }
    Ok(verified)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bundle(reason: &str) -> Value {
        Value::Object(vec![
            ("schema".to_string(), Value::String(FLIGHT_RECORD_SCHEMA.to_string())),
            ("reason".to_string(), Value::String(reason.to_string())),
            ("trace".to_string(), Value::Object(vec![
                ("truncated".to_string(), Value::Bool(false)),
                ("recent".to_string(), Value::Array(vec![])),
            ])),
            ("provenance".to_string(), Value::Object(vec![
                ("recent".to_string(), Value::Array(vec![])),
            ])),
        ])
    }

    fn trace_event(tid: u64, sid: u64, parent: u64, name: &str) -> Value {
        Value::Object(vec![
            ("name".to_string(), Value::String(name.to_string())),
            ("trace_id".to_string(), Value::UInt(tid)),
            ("span_id".to_string(), Value::UInt(sid)),
            ("parent_span".to_string(), Value::UInt(parent)),
        ])
    }

    fn eject_record(tid: u64, parent: u64, url: &str) -> Value {
        Value::Object(vec![
            ("url".to_string(), Value::String(url.to_string())),
            ("trace_id".to_string(), Value::UInt(tid)),
            ("span_id".to_string(), Value::UInt(99)),
            ("parent_span".to_string(), Value::UInt(parent)),
        ])
    }

    fn coherent_bundle() -> Value {
        let mut doc = bundle("test");
        let trace = Value::Object(vec![
            ("truncated".to_string(), Value::Bool(false)),
            ("recent".to_string(), Value::Array(vec![
                trace_event(7, 1, 0, "sync.point"),
                trace_event(7, 2, 1, "sync.phase.eject"),
            ])),
        ]);
        let prov = Value::Object(vec![(
            "recent".to_string(),
            Value::Array(vec![eject_record(7, 2, "http://x/a")]),
        )]);
        if let Value::Object(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "trace" {
                    *v = trace.clone();
                }
                if k == "provenance" {
                    *v = prov.clone();
                }
            }
        }
        doc
    }

    #[test]
    fn ring_and_index_are_bounded() {
        let r = FlightRecorder::new(2, 3);
        for i in 0..5 {
            r.record(&format!("r{i}"), i, &bundle("x")).unwrap();
        }
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.index_since(0).len(), 3);
        assert_eq!(r.index_since(0)[0].seq, 2);
        // Only the newest 2 bundles are retained in memory.
        assert!(r.bundle(2).is_none());
        assert!(r.bundle(4).is_some());
        let idx = r.index_to_json();
        assert_eq!(idx["recorded"].as_u64(), Some(5));
        assert_eq!(idx["dumps"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn atomic_disk_dump_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "cacheportal-fr-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let r = FlightRecorder::default();
        r.set_dir(&dir).unwrap();
        let meta = r.record("on-demand", 42, &coherent_bundle()).unwrap();
        let path = meta.path.clone().expect("disk path");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.len() as u64, meta.bytes);
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["schema"].as_str(), Some(FLIGHT_RECORD_SCHEMA));
        assert_eq!(verify_flight_record(&back), Ok(1));
        // No temp files left behind.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".tmp")
            })
            .collect();
        assert!(stray.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_rejects_broken_chains() {
        // Wrong schema.
        let mut doc = coherent_bundle();
        if let Value::Object(fields) = &mut doc {
            fields[0].1 = Value::String("bogus".to_string());
        }
        assert!(verify_flight_record(&doc).is_err());

        // A record whose parent span is missing from the trace section.
        let mut doc = coherent_bundle();
        if let Value::Object(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "provenance" {
                    *v = Value::Object(vec![(
                        "recent".to_string(),
                        Value::Array(vec![eject_record(7, 999, "http://x/b")]),
                    )]);
                }
            }
        }
        let err = verify_flight_record(&doc).unwrap_err();
        assert!(err.contains("not in bundle trace section"), "{err}");

        // Truncated trace: verification degrades to Ok(0), not an error.
        let mut doc = coherent_bundle();
        if let Value::Object(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "trace" {
                    *v = Value::Object(vec![
                        ("truncated".to_string(), Value::Bool(true)),
                        ("recent".to_string(), Value::Array(vec![])),
                    ]);
                }
            }
        }
        assert_eq!(verify_flight_record(&doc), Ok(0));
    }

    #[test]
    fn untraced_records_are_skipped_not_failed() {
        let mut doc = coherent_bundle();
        if let Value::Object(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "provenance" {
                    *v = Value::Object(vec![(
                        "recent".to_string(),
                        Value::Array(vec![
                            eject_record(0, 0, "http://x/recovery"),
                            eject_record(7, 2, "http://x/a"),
                        ]),
                    )]);
                }
            }
        }
        assert_eq!(verify_flight_record(&doc), Ok(1));
    }
}

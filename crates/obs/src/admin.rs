//! Minimal admin/introspection HTTP endpoint over `std::net::TcpListener`.
//!
//! Deliberately dependency-free: one accept thread, `HTTP/1.1` with
//! `Connection: close`, GET only. Routes:
//!
//! * `GET /healthz` — liveness, plain `ok`.
//! * `GET /metrics` — Prometheus text exposition (version 0.0.4).
//! * `GET /explain?url=<percent-encoded url>` — eject provenance as JSON.
//! * `GET /explain?lsn=<n>` — update provenance as JSON.
//! * `GET /trace[?n=<limit>]` — recent causal trace events as JSON.
//! * `GET /timeline[?stable=1][?format=chrome]` — per-sync-point stage
//!   timeline; `format=chrome` renders Chrome `trace_event` JSON for
//!   chrome://tracing, `stable=1` zeroes wall-clock fields for byte-stable
//!   output.
//! * `GET /scorecards` — per-query-type cost/benefit scorecards as JSON.
//! * `GET /slo[?stable=1]` — sliding-window SLO evaluation with burn
//!   rates and the alert log; `stable=1` drops wall-fed objectives for
//!   byte-stable output.
//! * `GET /bus` — per-edge invalidation-bus delivery state (watermarks,
//!   lag, retries, partition state) as JSON.
//! * `GET /flightrecord` — flight-recorder dump index;
//!   `?dump=1[&stable=1]` captures and returns an on-demand bundle,
//!   `?seq=N` fetches a retained bundle.
//!
//! The server is decoupled from `CachePortal` through [`AdminSource`]; the
//! core crate implements it over the live registry + provenance log and
//! exposes `CachePortal::serve_admin(addr)`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What the admin endpoint serves. Implementations must be cheap enough to
/// call per-request (snapshots, not recomputation).
pub trait AdminSource: Send + Sync {
    /// Body for `GET /metrics` (Prometheus text exposition).
    fn prometheus(&self) -> String;
    /// Body for `GET /explain?url=…`.
    fn explain_url(&self, url: &str) -> serde_json::Value;
    /// Body for `GET /explain?lsn=…`.
    fn explain_lsn(&self, lsn: u64) -> serde_json::Value;
    /// Reply for `GET /healthz`. The default keeps the legacy
    /// always-healthy plain `ok`; real portals return their
    /// [`crate::HealthSnapshot::to_response`] so open breakers, in-flight
    /// recovery, and WAL errors surface as `503`.
    fn health(&self) -> crate::HealthResponse {
        crate::HealthResponse::ok()
    }
    /// Body for `GET /trace` — the `n` most recent causal trace events.
    /// Default: no tracer wired.
    fn trace(&self, _limit: usize) -> serde_json::Value {
        serde_json::Value::Null
    }
    /// Body for `GET /timeline`. `stable` zeroes wall-clock fields so the
    /// document is byte-stable for a fixed seed. Default: no timeline wired.
    fn timeline(&self, _stable: bool) -> serde_json::Value {
        serde_json::Value::Null
    }
    /// Body for `GET /timeline?format=chrome` (Chrome `trace_event` JSON).
    /// Default: no timeline wired.
    fn timeline_chrome(&self) -> serde_json::Value {
        serde_json::Value::Null
    }
    /// Body for `GET /scorecards`. Default: no scorecards wired.
    fn scorecards(&self) -> serde_json::Value {
        serde_json::Value::Null
    }
    /// Body for `GET /slo`. `stable` drops wall-fed objectives so the
    /// document is byte-stable for a fixed seed. Default: no SLO engine
    /// wired.
    fn slo(&self, _stable: bool) -> serde_json::Value {
        serde_json::Value::Null
    }
    /// Body for `GET /bus` — per-edge invalidation-bus delivery state
    /// (watermarks, lag, retries, partition state). Default: no bus wired.
    fn bus(&self) -> serde_json::Value {
        serde_json::Value::Null
    }
    /// Body for `GET /flightrecord` — the flight-recorder dump index.
    /// Default: no recorder wired.
    fn flightrecord_index(&self) -> serde_json::Value {
        serde_json::Value::Null
    }
    /// Body for `GET /flightrecord?dump=1` — capture an on-demand bundle
    /// and return it (`stable` controls the returned rendering). Default:
    /// no recorder wired.
    fn flightrecord_dump(&self, _stable: bool) -> serde_json::Value {
        serde_json::Value::Null
    }
    /// Body for `GET /flightrecord?seq=N` — a retained bundle by capture
    /// sequence number. Default: no recorder wired.
    fn flightrecord_get(&self, _seq: u64) -> serde_json::Value {
        serde_json::Value::Null
    }
}

/// A running admin endpoint. Dropping (or calling [`AdminServer::shutdown`])
/// stops the accept loop and joins the thread.
pub struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `source` on a
    /// background thread.
    pub fn serve(addr: &str, source: Arc<dyn AdminSource>) -> std::io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let thread = std::thread::Builder::new()
            .name("cacheportal-admin".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(mut stream) = conn {
                        let _ = handle_conn(&mut stream, source.as_ref());
                    }
                }
            })?;
        Ok(AdminServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if self.thread.is_none() {
            return;
        }
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the (blocking) accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn handle_conn(stream: &mut TcpStream, source: &dyn AdminSource) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let request_line = read_request_line(stream)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(stream, 405, "text/plain; charset=utf-8", "method not allowed\n");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/healthz" => {
            let h = source.health();
            respond(stream, h.status, h.content_type, &h.body)
        }
        "/metrics" => respond(
            stream,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            &source.prometheus(),
        ),
        "/explain" => {
            if let Some(url) = query_param(query, "url") {
                let body = serde_json::to_string_pretty(&source.explain_url(&url))
                    .unwrap_or_else(|_| "{}".to_string());
                respond(stream, 200, "application/json", &body)
            } else if let Some(lsn) = query_param(query, "lsn").and_then(|v| v.parse::<u64>().ok()) {
                let body = serde_json::to_string_pretty(&source.explain_lsn(lsn))
                    .unwrap_or_else(|_| "{}".to_string());
                respond(stream, 200, "application/json", &body)
            } else {
                respond(
                    stream,
                    400,
                    "text/plain; charset=utf-8",
                    "expected ?url=<url> or ?lsn=<n>\n",
                )
            }
        }
        "/trace" => {
            let limit = query_param(query, "n")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(256);
            let body = serde_json::to_string_pretty(&source.trace(limit))
                .unwrap_or_else(|_| "{}".to_string());
            respond(stream, 200, "application/json", &body)
        }
        "/timeline" => {
            let doc = if query_param(query, "format").as_deref() == Some("chrome") {
                source.timeline_chrome()
            } else {
                let stable = query_param(query, "stable").as_deref() == Some("1");
                source.timeline(stable)
            };
            let body = serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".to_string());
            respond(stream, 200, "application/json", &body)
        }
        "/scorecards" => {
            let body = serde_json::to_string_pretty(&source.scorecards())
                .unwrap_or_else(|_| "{}".to_string());
            respond(stream, 200, "application/json", &body)
        }
        "/slo" => {
            let stable = query_param(query, "stable").as_deref() == Some("1");
            let body = serde_json::to_string_pretty(&source.slo(stable))
                .unwrap_or_else(|_| "{}".to_string());
            respond(stream, 200, "application/json", &body)
        }
        "/bus" => {
            let body = serde_json::to_string_pretty(&source.bus())
                .unwrap_or_else(|_| "{}".to_string());
            respond(stream, 200, "application/json", &body)
        }
        "/flightrecord" => {
            let doc = if query_param(query, "dump").as_deref() == Some("1") {
                let stable = query_param(query, "stable").as_deref() == Some("1");
                source.flightrecord_dump(stable)
            } else if let Some(seq) = query_param(query, "seq").and_then(|v| v.parse::<u64>().ok())
            {
                source.flightrecord_get(seq)
            } else {
                source.flightrecord_index()
            };
            if doc == serde_json::Value::Null && query_param(query, "seq").is_some() {
                return respond(
                    stream,
                    404,
                    "text/plain; charset=utf-8",
                    "bundle rotated out or never captured\n",
                );
            }
            let body = serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".to_string());
            respond(stream, 200, "application/json", &body)
        }
        _ => respond(stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

/// Read up to the end of the request head and return the request line.
fn read_request_line(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    Ok(head.lines().next().unwrap_or("").to_string())
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// First value of `name` in an `a=b&c=d` query string, percent-decoded.
fn query_param(query: &str, name: &str) -> Option<String> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == name).then(|| percent_decode(v))
    })
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Percent-decode a query value (`%XX` escapes and `+` as space).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                match (hex_val(bytes[i + 1]), hex_val(bytes[i + 2])) {
                    (Some(hi), Some(lo)) => {
                        out.push(hi * 16 + lo);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct StubSource;

    impl AdminSource for StubSource {
        fn prometheus(&self) -> String {
            "# TYPE cacheportal_test_total counter\ncacheportal_test_total 1\n".to_string()
        }
        fn explain_url(&self, url: &str) -> serde_json::Value {
            serde_json::Value::Object(vec![(
                "url".to_string(),
                serde_json::Value::String(url.to_string()),
            )])
        }
        fn explain_lsn(&self, lsn: u64) -> serde_json::Value {
            serde_json::Value::Object(vec![(
                "lsn".to_string(),
                serde_json::Value::UInt(lsn),
            )])
        }
    }

    /// Tiny blocking HTTP GET for tests.
    fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes())
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_health_metrics_and_explain() {
        let server = AdminServer::serve("127.0.0.1:0", Arc::new(StubSource)).unwrap();
        let addr = server.addr();

        let (status, body) = http_get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        let (status, body) = http_get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("cacheportal_test_total 1"));

        let (status, body) = http_get(addr, "/explain?url=a%20b+c");
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(doc["url"].as_str(), Some("a b c"));

        let (status, body) = http_get(addr, "/explain?lsn=7");
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(doc["lsn"].as_u64(), Some(7));

        let (status, _) = http_get(addr, "/explain?bogus=1");
        assert_eq!(status, 400);
        let (status, _) = http_get(addr, "/nope");
        assert_eq!(status, 404);

        // New endpoints fall back to the default (null) trait impls, so
        // sources written before tracing existed keep working.
        for path in ["/trace", "/timeline", "/scorecards", "/slo", "/bus", "/flightrecord"] {
            let (status, body) = http_get(addr, path);
            assert_eq!(status, 200, "{path}");
            assert_eq!(body.trim(), "null", "{path}");
        }

        server.shutdown();
    }

    struct TracedSource;

    impl AdminSource for TracedSource {
        fn prometheus(&self) -> String {
            String::new()
        }
        fn explain_url(&self, _url: &str) -> serde_json::Value {
            serde_json::Value::Null
        }
        fn explain_lsn(&self, _lsn: u64) -> serde_json::Value {
            serde_json::Value::Null
        }
        fn trace(&self, limit: usize) -> serde_json::Value {
            serde_json::Value::Object(vec![(
                "limit".to_string(),
                serde_json::Value::UInt(limit as u64),
            )])
        }
        fn timeline(&self, stable: bool) -> serde_json::Value {
            serde_json::Value::Object(vec![(
                "stable".to_string(),
                serde_json::Value::Bool(stable),
            )])
        }
        fn timeline_chrome(&self) -> serde_json::Value {
            serde_json::Value::Object(vec![(
                "traceEvents".to_string(),
                serde_json::Value::Array(Vec::new()),
            )])
        }
        fn scorecards(&self) -> serde_json::Value {
            serde_json::Value::Object(vec![(
                "scorecards".to_string(),
                serde_json::Value::Array(Vec::new()),
            )])
        }
    }

    #[test]
    fn serves_trace_timeline_and_scorecards() {
        let server = AdminServer::serve("127.0.0.1:0", Arc::new(TracedSource)).unwrap();
        let addr = server.addr();

        let (status, body) = http_get(addr, "/trace?n=42");
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(doc["limit"].as_u64(), Some(42));
        let (_, body) = http_get(addr, "/trace");
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(doc["limit"].as_u64(), Some(256));

        let (_, body) = http_get(addr, "/timeline");
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(doc["stable"].as_bool(), Some(false));
        let (_, body) = http_get(addr, "/timeline?stable=1");
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(doc["stable"].as_bool(), Some(true));
        let (_, body) = http_get(addr, "/timeline?format=chrome");
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert!(doc["traceEvents"].as_array().is_some());

        let (status, body) = http_get(addr, "/scorecards");
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert!(doc["scorecards"].as_array().is_some());

        server.shutdown();
    }

    struct SloSource;

    impl AdminSource for SloSource {
        fn prometheus(&self) -> String {
            String::new()
        }
        fn explain_url(&self, _url: &str) -> serde_json::Value {
            serde_json::Value::Null
        }
        fn explain_lsn(&self, _lsn: u64) -> serde_json::Value {
            serde_json::Value::Null
        }
        fn slo(&self, stable: bool) -> serde_json::Value {
            serde_json::Value::Object(vec![(
                "stable".to_string(),
                serde_json::Value::Bool(stable),
            )])
        }
        fn flightrecord_index(&self) -> serde_json::Value {
            serde_json::Value::Object(vec![(
                "dumps".to_string(),
                serde_json::Value::Array(Vec::new()),
            )])
        }
        fn flightrecord_dump(&self, stable: bool) -> serde_json::Value {
            serde_json::Value::Object(vec![
                (
                    "schema".to_string(),
                    serde_json::Value::String(crate::FLIGHT_RECORD_SCHEMA.to_string()),
                ),
                ("stable".to_string(), serde_json::Value::Bool(stable)),
            ])
        }
        fn flightrecord_get(&self, seq: u64) -> serde_json::Value {
            if seq == 3 {
                serde_json::Value::Object(vec![(
                    "seq".to_string(),
                    serde_json::Value::UInt(seq),
                )])
            } else {
                serde_json::Value::Null
            }
        }
    }

    #[test]
    fn serves_slo_and_flightrecord() {
        let server = AdminServer::serve("127.0.0.1:0", Arc::new(SloSource)).unwrap();
        let addr = server.addr();

        let (status, body) = http_get(addr, "/slo");
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(doc["stable"].as_bool(), Some(false));
        let (_, body) = http_get(addr, "/slo?stable=1");
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(doc["stable"].as_bool(), Some(true));

        let (status, body) = http_get(addr, "/flightrecord");
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert!(doc["dumps"].as_array().is_some());

        let (_, body) = http_get(addr, "/flightrecord?dump=1&stable=1");
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(doc["schema"].as_str(), Some(crate::FLIGHT_RECORD_SCHEMA));
        assert_eq!(doc["stable"].as_bool(), Some(true));

        let (status, body) = http_get(addr, "/flightrecord?seq=3");
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(doc["seq"].as_u64(), Some(3));
        // A rotated-out / never-captured seq is an explicit 404, not null.
        let (status, _) = http_get(addr, "/flightrecord?seq=99");
        assert_eq!(status, 404);

        server.shutdown();
    }

    struct SickSource(crate::HealthState);

    impl AdminSource for SickSource {
        fn prometheus(&self) -> String {
            String::new()
        }
        fn explain_url(&self, _url: &str) -> serde_json::Value {
            serde_json::Value::Null
        }
        fn explain_lsn(&self, _lsn: u64) -> serde_json::Value {
            serde_json::Value::Null
        }
        fn health(&self) -> crate::HealthResponse {
            self.0.snapshot().to_response()
        }
    }

    #[test]
    fn healthz_reflects_the_source_health_state() {
        let state = crate::HealthState::new();
        state.set_breaker(1, 0);
        let server = AdminServer::serve("127.0.0.1:0", Arc::new(SickSource(state))).unwrap();
        let (status, body) = http_get(server.addr(), "/healthz");
        assert_eq!(status, 503);
        assert!(body.contains("\"status\": \"unhealthy\""));
        assert!(body.contains("breaker-open"));
        server.shutdown();
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%2Fb+c%3D1"), "a/b c=1");
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("trail%2"), "trail%2");
    }
}

//! `cacheportal-obs` — unified observability layer for the CachePortal
//! pipeline.
//!
//! Three instruments, deliberately dependency-free (atomics, `parking_lot`,
//! and `serde_json` only) so every runtime crate can use them:
//!
//! * [`MetricsRegistry`] — named counters, gauges, and log-bucketed latency
//!   histograms with p50/p95/p99/max summaries.
//! * [`Tracer`] — a bounded ring buffer of pipeline events covering
//!   HTTP request → servlet → SQL execution → cache admission, and
//!   sync point → delta build → local check → polling query → eject fan-out.
//! * [`StalenessProbe`] — stamps each committed mutation's LSN with a
//!   logical timestamp and records the commit→eject staleness window per
//!   invalidated page.
//! * [`ProvenanceLog`] — bounded ring of [`EjectRecord`]s capturing the
//!   full update→query-type→verdict→URL chain behind every page eject,
//!   indexed by URL and by LSN for `explain_*` queries.
//!
//! Live exposure: [`AdminServer`] serves `/metrics` (Prometheus text
//! exposition via [`MetricsRegistry::render_prometheus`]), `/explain` and
//! `/healthz` over a plain `TcpListener`, and [`JsonlExporter`] streams
//! trace events + provenance records as JSONL for offline analysis.
//!
//! [`Obs`] bundles the instruments behind one `Arc`-shareable handle and renders
//! the combined [`Obs::snapshot`] JSON document and human-readable
//! [`Obs::fmt_report`] that `CachePortal::metrics_snapshot()` exposes.

mod admin;
mod export;
pub mod health;
mod histogram;
pub mod provenance;
pub mod recorder;
mod registry;
pub mod scorecard;
pub mod slo;
mod staleness;
pub mod timeline;
mod trace;

pub use admin::{AdminServer, AdminSource};
pub use export::{ExportStats, JsonlExporter};
pub use health::{HealthResponse, HealthSnapshot, HealthState, HealthStatus, Reason};
pub use histogram::{Histogram, HistogramSnapshot};
pub use provenance::{Cause, DeltaGroup, EjectRecord, Explanation, ProvenanceLog};
pub use recorder::{verify_flight_record, FlightRecordMeta, FlightRecorder, FLIGHT_RECORD_SCHEMA};
pub use registry::{prometheus_name, Counter, Gauge, MetricsRegistry};
pub use scorecard::{PageTally, ScorecardBoard, TypeScore, TypeSyncOutcome};
pub use slo::{AlertEvent, BurnPair, EvalOutcome, Objective, SloEngine, SloKind, SloPolicy};
pub use staleness::{Lsn, StalenessProbe};
pub use timeline::{StageSample, SyncTimeline, TimelineLog};
pub use trace::{CommitIndex, CommitRoot, TraceContext, TraceEvent, Tracer};

use std::sync::Arc;

/// The bundle of instruments one `CachePortal` owns.
pub struct Obs {
    /// Named counters/gauges/histograms.
    pub metrics: MetricsRegistry,
    /// Bounded pipeline event trace.
    pub tracer: Tracer,
    /// Commit→eject staleness window probe.
    pub staleness: StalenessProbe,
    /// Invalidation provenance ring (why was each page ejected?).
    pub provenance: ProvenanceLog,
    /// Live health flags behind `/healthz` (breakers, recovery, WAL).
    pub health: HealthState,
    /// Commit LSN range → update-commit trace root (causal chain anchor).
    pub commits: CommitIndex,
    /// Per-sync-point stage timeline behind `/timeline`.
    pub timeline: TimelineLog,
    /// Per-query-type cost/benefit scorecards behind `/scorecards`.
    pub scorecards: ScorecardBoard,
    /// Sliding-window SLO evaluator with burn-rate alerting behind `/slo`.
    pub slo: SloEngine,
    /// Black-box flight recorder behind `/flightrecord`.
    pub recorder: FlightRecorder,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// Instruments with default sizing (1024-event trace ring,
    /// 512-record provenance ring).
    pub fn new() -> Self {
        Obs {
            metrics: MetricsRegistry::new(),
            tracer: Tracer::default(),
            staleness: StalenessProbe::new(),
            provenance: ProvenanceLog::default(),
            health: HealthState::new(),
            commits: CommitIndex::default(),
            timeline: TimelineLog::default(),
            scorecards: ScorecardBoard::default(),
            slo: SloEngine::default(),
            recorder: FlightRecorder::default(),
        }
    }

    /// Instruments with explicit ring capacities (trace events, provenance
    /// records). The commit index matches the trace ring's capacity so both
    /// truncate together.
    pub fn with_capacity(trace_events: usize, provenance_records: usize) -> Self {
        Obs {
            metrics: MetricsRegistry::new(),
            tracer: Tracer::new(trace_events),
            staleness: StalenessProbe::new(),
            provenance: ProvenanceLog::new(provenance_records),
            health: HealthState::new(),
            commits: CommitIndex::new(trace_events),
            timeline: TimelineLog::default(),
            scorecards: ScorecardBoard::default(),
            slo: SloEngine::default(),
            recorder: FlightRecorder::default(),
        }
    }

    /// Same, pre-wrapped for sharing across components.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// The combined observability document:
    ///
    /// ```json
    /// {
    ///   "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
    ///   "staleness": {"pending_mutations": n, "commit_to_eject_micros": {...}},
    ///   "trace": {"recorded": n, "dropped": n, "recent": [...]},
    ///   "provenance": {"recorded": n, "dropped": n, "recent": [...]}
    /// }
    /// ```
    pub fn snapshot(&self) -> serde_json::Value {
        self.snapshot_with_trace(32)
    }

    /// [`Obs::snapshot`] with an explicit cap on embedded trace events.
    pub fn snapshot_with_trace(&self, recent_events: usize) -> serde_json::Value {
        serde_json::Value::Object(vec![
            ("metrics".to_string(), self.metrics.snapshot()),
            ("staleness".to_string(), self.staleness.to_json()),
            ("trace".to_string(), self.tracer.to_json(recent_events)),
            ("provenance".to_string(), self.provenance.to_json(8)),
            (
                "timeline".to_string(),
                self.timeline.to_json(8, self.tracer.dropped(), false),
            ),
            ("scorecards".to_string(), self.scorecards.to_json()),
            (
                "slo".to_string(),
                self.slo.to_json(self.slo.last_eval_ts(), false),
            ),
        ])
    }

    /// Multi-line human-readable report of every instrument.
    pub fn fmt_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== metrics ==");
        out.push_str(&self.metrics.fmt_report());
        let s = self.staleness.window_snapshot();
        let _ = writeln!(
            out,
            "== staleness ==\ncommit->eject micros: n={} mean={:.1} p50={} p95={} p99={} max={} (pending mutations: {})",
            s.count,
            s.mean,
            s.p50,
            s.p95,
            s.p99,
            s.max,
            self.staleness.pending_len()
        );
        let _ = writeln!(
            out,
            "== trace ==\nrecorded={} dropped={}",
            self.tracer.recorded(),
            self.tracer.dropped()
        );
        for e in self.tracer.recent(16) {
            let dur = e
                .duration_micros
                .map(|d| format!(" ({d}us)"))
                .unwrap_or_default();
            let _ = writeln!(out, "  [{}] t={} {}.{}{} {}", e.seq, e.ts, e.scope, e.name, dur, e.detail);
        }
        let _ = writeln!(
            out,
            "== provenance ==\nrecorded={} dropped={}",
            self.provenance.recorded(),
            self.provenance.dropped()
        );
        for r in self.provenance.recent(8) {
            let _ = writeln!(
                out,
                "  [{}] sync#{} lsn {}..={} {} ({} causes)",
                r.seq,
                r.sync_seq,
                r.lsn_first,
                r.lsn_last,
                r.url,
                r.causes.len()
            );
        }
        let (fast, slow) = self.slo.firing_counts();
        let _ = writeln!(
            out,
            "== slo ==\nfiring: fast={} slow={} (alert transitions recorded={} dropped={}; flight records={})",
            fast,
            slow,
            self.slo.alerts_recorded(),
            self.slo.alerts_dropped(),
            self.recorder.recorded()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_snapshot_has_all_sections() {
        let obs = Obs::new();
        obs.metrics.counter("cache.page.hits").add(3);
        obs.staleness.stamp(1, 10);
        obs.staleness.on_sync_point(1, 50, 2);
        obs.tracer.event("core", "sync.point", 50, "lsn=1");
        let snap = obs.snapshot();
        assert_eq!(snap["metrics"]["counters"]["cache.page.hits"].as_u64(), Some(3));
        assert_eq!(
            snap["staleness"]["commit_to_eject_micros"]["count"].as_u64(),
            Some(2)
        );
        assert_eq!(snap["trace"]["recorded"].as_u64(), Some(1));
        // The whole document renders and re-parses as JSON text.
        let text = serde_json::to_string_pretty(&snap).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["metrics"]["counters"]["cache.page.hits"].as_u64(), Some(3));
    }

    #[test]
    fn report_mentions_each_section() {
        let obs = Obs::new();
        obs.metrics.counter("db.queries").inc();
        let report = obs.fmt_report();
        assert!(report.contains("== metrics =="));
        assert!(report.contains("db.queries"));
        assert!(report.contains("== staleness =="));
        assert!(report.contains("== trace =="));
    }
}

//! Lock-free log-bucketed latency histogram.
//!
//! Values (typically microseconds) are binned into base-2 buckets with
//! [`SUB`] linear sub-buckets per octave, giving a worst-case relative
//! quantile error of `1/SUB` (12.5%) while keeping `record` a handful of
//! atomic operations — cheap enough to sit on the request path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^SUB_BITS linear bins per power of two.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// Enough buckets to cover the full u64 range: (64 - SUB_BITS) octaves of
/// SUB buckets plus the exact low range.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) << SUB_BITS;

/// Concurrent histogram; all methods take `&self`.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // Box<[AtomicU64; N]> without a large stack temporary.
        let buckets: Box<[AtomicU64]> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets = buckets.try_into().unwrap_or_else(|_| unreachable!());
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Exact minimum observation (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the representative value of
    /// the bucket containing the q-th ranked observation, clamped to the
    /// exact observed min/max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max();
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return representative(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// One-shot consistent-enough summary for reporting. Individual loads
    /// are relaxed, so a summary taken during concurrent writes may be off
    /// by in-flight records — fine for observability.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Render as a JSON object.
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            ("count".to_string(), Value::UInt(self.count)),
            ("sum".to_string(), Value::UInt(self.sum)),
            ("min".to_string(), Value::UInt(self.min)),
            ("max".to_string(), Value::UInt(self.max)),
            ("mean".to_string(), Value::Float(self.mean)),
            ("p50".to_string(), Value::UInt(self.p50)),
            ("p95".to_string(), Value::UInt(self.p95)),
            ("p99".to_string(), Value::UInt(self.p99)),
        ])
    }
}

/// Bucket index for a value: exact below [`SUB`], then `SUB` linear
/// sub-buckets per power of two.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // floor(log2 v) >= SUB_BITS
    let octave = (top - SUB_BITS + 1) as usize;
    let sub = ((v >> (top - SUB_BITS)) & (SUB - 1)) as usize;
    (octave << SUB_BITS) + sub
}

/// Midpoint of bucket `i`'s value range.
fn representative(i: usize) -> u64 {
    if i < SUB as usize {
        return i as u64;
    }
    let octave = (i >> SUB_BITS) as u32; // >= 1
    let sub = (i as u64) & (SUB - 1);
    let width = 1u64 << (octave - 1);
    let lower = (SUB + sub) << (octave - 1);
    lower + width / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = 0usize;
        // Exhaustive over the low range, then sampled octave boundaries.
        for v in 0..4096u64 {
            let i = bucket_index(v);
            assert!(i == prev || i == prev + 1, "gap at v={v}: {prev} -> {i}");
            prev = i;
        }
        for shift in 12..63u32 {
            let v = 1u64 << shift;
            assert!(bucket_index(v) > bucket_index(v - 1));
            assert!(bucket_index(v) < BUCKETS);
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn representative_lies_in_its_bucket() {
        for v in [0u64, 1, 7, 8, 100, 1_000, 123_456, 1 << 40] {
            let i = bucket_index(v);
            let r = representative(i);
            assert_eq!(bucket_index(r), i, "representative of bucket({v}) escaped");
        }
    }

    #[test]
    fn exact_below_sub() {
        let h = Histogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 7);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 7);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.50, 5_000u64), (0.95, 9_500), (0.99, 9_900)] {
            let got = h.quantile(q) as f64;
            let err = (got - exact as f64).abs() / exact as f64;
            assert!(err <= 1.0 / SUB as f64 + 1e-9, "q={q}: got {got}, want ~{exact}");
        }
        assert_eq!(h.quantile(1.0), 10_000);
        assert_eq!(h.mean(), 5_000.5);
    }

    #[test]
    fn quantiles_accurate_under_concurrent_writers() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads = 8u64;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    // Each thread writes the full 1..=per_thread range, so
                    // the combined distribution equals the single-writer one
                    // and every quantile has a known exact answer.
                    for v in 1..=per_thread {
                        h.record(v.wrapping_mul(2654435761).wrapping_add(t) % per_thread + 1);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        // No lost updates: count and max are exact despite racing writers.
        assert_eq!(h.count(), threads * per_thread);
        assert_eq!(h.max(), per_thread);
        assert_eq!(h.min(), 1);
        // The values written are a (mixed) permutation-ish resampling of
        // 1..=per_thread, uniform enough that quantiles must land within
        // the documented 1/SUB relative error plus a small sampling slack.
        for (q, expect) in [(0.50, 5_000f64), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - expect).abs() / expect;
            assert!(
                err <= 1.0 / SUB as f64 + 0.05,
                "q={q}: got {got}, want ~{expect}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(
            s,
            HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                p50: 0,
                p95: 0,
                p99: 0
            }
        );
    }
}

//! Lightweight span/event tracer with a bounded ring buffer.
//!
//! Components emit [`TraceEvent`]s at pipeline milestones (request served,
//! SQL executed, cache admission, sync point phases, page ejection). The
//! tracer keeps only the most recent `capacity` events, so it is safe to
//! leave enabled in long benchmarks; it can also be disabled entirely, which
//! reduces `event` to one atomic load.
//!
//! Timestamps are the caller's logical clock (the portal's microsecond
//! `ManualClock`), keeping traces deterministic under simulation; wall-clock
//! durations for spans are measured separately with [`Tracer::span`].

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// One pipeline milestone.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Global sequence number (monotone, gap-free per tracer).
    pub seq: u64,
    /// Logical timestamp supplied by the caller (microseconds).
    pub ts: u64,
    /// Subsystem: `"web"`, `"db"`, `"cache"`, `"sniffer"`, `"invalidator"`, `"core"`.
    pub scope: &'static str,
    /// Milestone name, e.g. `"sql.exec"`, `"cache.admit"`, `"sync.eject"`.
    pub name: &'static str,
    /// Free-form context (page key, SQL template, poll count, ...).
    pub detail: String,
    /// Wall-clock duration in microseconds for span events, `None` for
    /// point events.
    pub duration_micros: Option<u64>,
}

/// Bounded event recorder; all methods take `&self`.
pub struct Tracer {
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    enabled: AtomicBool,
}

impl Tracer {
    /// A tracer retaining the `capacity` most recent events.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Turn event recording on or off (span closures still run either way).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is recording enabled?
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record a point event.
    pub fn event(&self, scope: &'static str, name: &'static str, ts: u64, detail: impl Into<String>) {
        self.push(scope, name, ts, detail.into(), None);
    }

    /// Run `f`, recording a span event carrying its wall-clock duration.
    pub fn span<R>(
        &self,
        scope: &'static str,
        name: &'static str,
        ts: u64,
        detail: impl Into<String>,
        f: impl FnOnce() -> R,
    ) -> R {
        if !self.enabled() {
            return f();
        }
        let start = Instant::now();
        let out = f();
        let micros = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.push(scope, name, ts, detail.into(), Some(micros));
        out
    }

    fn push(&self, scope: &'static str, name: &'static str, ts: u64, detail: String, duration: Option<u64>) {
        if !self.enabled() {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(TraceEvent {
            seq,
            ts,
            scope,
            name,
            detail,
            duration_micros: duration,
        });
    }

    /// Total events ever recorded (including since-dropped ones).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The most recent `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TraceEvent> {
        let ring = self.ring.lock();
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Drop all buffered events (counters keep their totals).
    pub fn clear(&self) {
        self.ring.lock().clear();
    }

    /// JSON summary: totals plus the `recent_limit` most recent events.
    pub fn to_json(&self, recent_limit: usize) -> serde_json::Value {
        use serde_json::Value;
        let events = self
            .recent(recent_limit)
            .into_iter()
            .map(|e| {
                let mut fields = vec![
                    ("seq".to_string(), Value::UInt(e.seq)),
                    ("ts".to_string(), Value::UInt(e.ts)),
                    ("scope".to_string(), Value::String(e.scope.to_string())),
                    ("name".to_string(), Value::String(e.name.to_string())),
                    ("detail".to_string(), Value::String(e.detail)),
                ];
                if let Some(d) = e.duration_micros {
                    fields.push(("duration_micros".to_string(), Value::UInt(d)));
                }
                Value::Object(fields)
            })
            .collect();
        Value::Object(vec![
            ("recorded".to_string(), Value::UInt(self.recorded())),
            ("dropped".to_string(), Value::UInt(self.dropped())),
            ("recent".to_string(), Value::Array(events)),
        ])
    }
}

impl Default for Tracer {
    /// 1024-event ring, enabled.
    fn default() -> Self {
        Tracer::new(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let t = Tracer::new(4);
        for i in 0..10u64 {
            t.event("core", "tick", i, format!("i={i}"));
        }
        let recent = t.recent(10);
        assert_eq!(recent.len(), 4);
        assert_eq!(recent.first().unwrap().seq, 6);
        assert_eq!(recent.last().unwrap().seq, 9);
        assert_eq!(t.recorded(), 10);
        assert_eq!(t.dropped(), 6);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(8);
        t.set_enabled(false);
        t.event("db", "sql.exec", 1, "");
        let out = t.span("db", "sql.exec", 2, "", || 42);
        assert_eq!(out, 42);
        assert_eq!(t.recorded(), 0);
        assert!(t.recent(8).is_empty());
    }

    #[test]
    fn span_measures_duration() {
        let t = Tracer::new(8);
        t.span("cache", "lookup", 5, "k", || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        let e = &t.recent(1)[0];
        assert_eq!(e.name, "lookup");
        assert!(e.duration_micros.unwrap() >= 1_000);
    }

    #[test]
    fn json_shape() {
        let t = Tracer::new(8);
        t.event("web", "request", 3, "/page");
        let j = t.to_json(8);
        assert_eq!(j["recorded"].as_u64(), Some(1));
        assert_eq!(j["recent"][0]["scope"].as_str(), Some("web"));
    }
}

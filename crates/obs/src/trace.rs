//! Causal lifecycle tracer with a bounded ring buffer.
//!
//! Components emit [`TraceEvent`]s at pipeline milestones (request served,
//! SQL executed, cache admission, sync point phases, page ejection). Events
//! carry optional causal identity — a trace id shared by every event of one
//! logical lifecycle plus span ids with parent links — so an eject can be
//! walked back to the sync-point phase and commit that caused it. The tracer
//! keeps only the most recent `capacity` events, so it is safe to leave
//! enabled in long benchmarks; it can also be disabled entirely, which
//! reduces `event` to one atomic load.
//!
//! Timestamps are the caller's logical clock (the portal's microsecond
//! `ManualClock`), and trace/span ids are allocated from monotone counters
//! under the portal's serialized orchestration, keeping traces deterministic
//! under simulation; wall-clock durations for spans are measured separately
//! with [`Tracer::span`] or supplied via [`Tracer::child_span`].

use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Causal identity of a span: which lifecycle it belongs to and its own id.
/// `TraceContext::NONE` (all zeros) means "uncorrelated" — the id counters
/// start at 1, so 0 is never a real id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// Lifecycle (trace) this span belongs to; 0 = none.
    pub trace_id: u64,
    /// This span's id within the trace; 0 = none.
    pub span_id: u64,
}

impl TraceContext {
    /// The uncorrelated context (tracer disabled, or legacy events).
    pub const NONE: TraceContext = TraceContext { trace_id: 0, span_id: 0 };

    /// Does this context carry real causal identity?
    pub fn is_some(&self) -> bool {
        self.trace_id != 0
    }
}

/// One pipeline milestone.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Global sequence number (monotone, gap-free per tracer).
    pub seq: u64,
    /// Logical timestamp supplied by the caller (microseconds).
    pub ts: u64,
    /// Subsystem: `"web"`, `"db"`, `"cache"`, `"sniffer"`, `"invalidator"`, `"core"`.
    pub scope: &'static str,
    /// Milestone name, e.g. `"sql.exec"`, `"cache.admit"`, `"sync.eject"`.
    pub name: &'static str,
    /// Free-form context (page key, SQL template, poll count, ...).
    pub detail: String,
    /// Wall-clock duration in microseconds for span events, `None` for
    /// point events.
    pub duration_micros: Option<u64>,
    /// Lifecycle this event belongs to; 0 = uncorrelated.
    pub trace_id: u64,
    /// This event's span id; 0 = uncorrelated.
    pub span_id: u64,
    /// Parent span within the same trace; 0 = trace root (or uncorrelated).
    pub parent_span: u64,
}

impl TraceEvent {
    /// This event's causal identity as a context for child spans.
    pub fn context(&self) -> TraceContext {
        TraceContext { trace_id: self.trace_id, span_id: self.span_id }
    }
}

/// Bounded event recorder; all methods take `&self`.
pub struct Tracer {
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    enabled: AtomicBool,
    next_trace: AtomicU64,
    next_span: AtomicU64,
}

impl Tracer {
    /// A tracer retaining the `capacity` most recent events.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
        }
    }

    /// Turn event recording on or off (span closures still run either way).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is recording enabled?
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record a point event with no causal identity.
    pub fn event(&self, scope: &'static str, name: &'static str, ts: u64, detail: impl Into<String>) {
        self.push(scope, name, ts, detail.into(), None, 0, 0, 0);
    }

    /// Run `f`, recording a span event carrying its wall-clock duration
    /// (no causal identity).
    pub fn span<R>(
        &self,
        scope: &'static str,
        name: &'static str,
        ts: u64,
        detail: impl Into<String>,
        f: impl FnOnce() -> R,
    ) -> R {
        if !self.enabled() {
            return f();
        }
        let start = Instant::now();
        let out = f();
        let micros = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.push(scope, name, ts, detail.into(), Some(micros), 0, 0, 0);
        out
    }

    /// Begin a new lifecycle: allocate a trace id, record its root span, and
    /// return the context children attach to. Returns [`TraceContext::NONE`]
    /// (recording nothing) when disabled.
    pub fn start_trace(
        &self,
        scope: &'static str,
        name: &'static str,
        ts: u64,
        detail: impl Into<String>,
    ) -> TraceContext {
        if !self.enabled() {
            return TraceContext::NONE;
        }
        let trace_id = self.next_trace.fetch_add(1, Ordering::Relaxed);
        let span_id = self.next_span.fetch_add(1, Ordering::Relaxed);
        self.push(scope, name, ts, detail.into(), None, trace_id, span_id, 0);
        TraceContext { trace_id, span_id }
    }

    /// Record a point event as a child span of `parent`, returning the child's
    /// context. With an uncorrelated parent (or disabled tracer) this degrades
    /// to [`Tracer::event`] and returns [`TraceContext::NONE`].
    pub fn child_event(
        &self,
        parent: TraceContext,
        scope: &'static str,
        name: &'static str,
        ts: u64,
        detail: impl Into<String>,
    ) -> TraceContext {
        self.child(parent, scope, name, ts, detail.into(), None)
    }

    /// Record a completed span (duration measured by the caller) as a child
    /// of `parent`, returning the child's context.
    pub fn child_span(
        &self,
        parent: TraceContext,
        scope: &'static str,
        name: &'static str,
        ts: u64,
        detail: impl Into<String>,
        duration_micros: u64,
    ) -> TraceContext {
        self.child(parent, scope, name, ts, detail.into(), Some(duration_micros))
    }

    fn child(
        &self,
        parent: TraceContext,
        scope: &'static str,
        name: &'static str,
        ts: u64,
        detail: String,
        duration: Option<u64>,
    ) -> TraceContext {
        if !self.enabled() {
            return TraceContext::NONE;
        }
        if !parent.is_some() {
            self.push(scope, name, ts, detail, duration, 0, 0, 0);
            return TraceContext::NONE;
        }
        let span_id = self.next_span.fetch_add(1, Ordering::Relaxed);
        self.push(scope, name, ts, detail, duration, parent.trace_id, span_id, parent.span_id);
        TraceContext { trace_id: parent.trace_id, span_id }
    }

    /// Allocate a span id under `parent` WITHOUT recording a ring event.
    /// Used when the span's record lives elsewhere (e.g. an [`EjectRecord`]
    /// in the provenance ring carries its own causal identity, avoiding one
    /// ring event per ejected page).
    ///
    /// [`EjectRecord`]: crate::provenance::EjectRecord
    pub fn alloc_span(&self, parent: TraceContext) -> TraceContext {
        if !self.enabled() || !parent.is_some() {
            return TraceContext::NONE;
        }
        let span_id = self.next_span.fetch_add(1, Ordering::Relaxed);
        TraceContext { trace_id: parent.trace_id, span_id }
    }

    /// Find a buffered event by causal identity (ring scan; `None` once the
    /// event has rotated out — check [`Tracer::dropped`] to distinguish
    /// "never existed" from "truncated").
    pub fn find_span(&self, trace_id: u64, span_id: u64) -> Option<TraceEvent> {
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        let ring = self.ring.lock();
        ring.iter().find(|e| e.trace_id == trace_id && e.span_id == span_id).cloned()
    }

    /// Walk parent links from `(trace_id, span_id)` up to the trace root,
    /// returning the chain innermost-first. Stops early if a hop has rotated
    /// out of the ring.
    pub fn resolve_chain(&self, trace_id: u64, span_id: u64) -> Vec<TraceEvent> {
        let mut chain = Vec::new();
        let mut cursor = span_id;
        while cursor != 0 {
            match self.find_span(trace_id, cursor) {
                Some(e) => {
                    cursor = e.parent_span;
                    chain.push(e);
                }
                None => break,
            }
        }
        chain
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &self,
        scope: &'static str,
        name: &'static str,
        ts: u64,
        detail: String,
        duration: Option<u64>,
        trace_id: u64,
        span_id: u64,
        parent_span: u64,
    ) {
        if !self.enabled() {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(TraceEvent {
            seq,
            ts,
            scope,
            name,
            detail,
            duration_micros: duration,
            trace_id,
            span_id,
            parent_span,
        });
    }

    /// Total events ever recorded (including since-dropped ones).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The most recent `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TraceEvent> {
        let ring = self.ring.lock();
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Drop all buffered events (counters keep their totals).
    pub fn clear(&self) {
        self.ring.lock().clear();
    }

    /// JSON summary: totals plus the `recent_limit` most recent events.
    /// Causal ids are emitted only when present, so legacy uncorrelated
    /// events keep their original shape.
    pub fn to_json(&self, recent_limit: usize) -> serde_json::Value {
        self.to_json_opts(recent_limit, false)
    }

    /// [`Tracer::to_json`] with a `stable` mode for deterministic
    /// renderings (flight-record bundles): span durations are wall-clock
    /// measurements, so stable mode zeroes them while keeping the causal
    /// structure (ids, parents, logical timestamps) intact.
    pub fn to_json_opts(&self, recent_limit: usize, stable: bool) -> serde_json::Value {
        use serde_json::Value;
        let events = self
            .recent(recent_limit)
            .into_iter()
            .map(|e| {
                let mut fields = vec![
                    ("seq".to_string(), Value::UInt(e.seq)),
                    ("ts".to_string(), Value::UInt(e.ts)),
                    ("scope".to_string(), Value::String(e.scope.to_string())),
                    ("name".to_string(), Value::String(e.name.to_string())),
                    ("detail".to_string(), Value::String(e.detail)),
                ];
                if let Some(d) = e.duration_micros {
                    let d = if stable { 0 } else { d };
                    fields.push(("duration_micros".to_string(), Value::UInt(d)));
                }
                if e.trace_id != 0 {
                    fields.push(("trace_id".to_string(), Value::UInt(e.trace_id)));
                    fields.push(("span_id".to_string(), Value::UInt(e.span_id)));
                    fields.push(("parent_span".to_string(), Value::UInt(e.parent_span)));
                }
                Value::Object(fields)
            })
            .collect();
        Value::Object(vec![
            ("recorded".to_string(), Value::UInt(self.recorded())),
            ("dropped".to_string(), Value::UInt(self.dropped())),
            ("truncated".to_string(), Value::Bool(self.dropped() > 0)),
            ("recent".to_string(), Value::Array(events)),
        ])
    }
}

impl Default for Tracer {
    /// 1024-event ring, enabled.
    fn default() -> Self {
        Tracer::new(1024)
    }
}

/// One committed update batch's trace root, keyed by its LSN range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitRoot {
    /// First LSN of the committed batch (inclusive).
    pub lsn_first: u64,
    /// Last LSN of the committed batch (inclusive).
    pub lsn_last: u64,
    /// Trace id of the `update.commit` root event.
    pub trace_id: u64,
    /// Span id of the `update.commit` root event.
    pub span_id: u64,
}

/// Bounded map from committed LSN ranges to their trace roots, so a sync
/// point's consumed range `[first, last]` resolves to the commit trace(s)
/// that caused each eject. Oldest ranges are evicted first; evictions are
/// counted so causal checks can tell truncation from corruption.
pub struct CommitIndex {
    inner: Mutex<BTreeMap<u64, CommitRoot>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl CommitIndex {
    /// An index retaining the `capacity` most recent commit ranges.
    pub fn new(capacity: usize) -> Self {
        CommitIndex {
            inner: Mutex::new(BTreeMap::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Record a committed batch `[lsn_first, lsn_last]` rooted at `ctx`.
    /// No-op for uncorrelated contexts (tracer disabled).
    pub fn note(&self, lsn_first: u64, lsn_last: u64, ctx: TraceContext) {
        if !ctx.is_some() {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.len() == self.capacity {
            if let Some(oldest) = inner.keys().next().copied() {
                inner.remove(&oldest);
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.insert(
            lsn_first,
            CommitRoot { lsn_first, lsn_last, trace_id: ctx.trace_id, span_id: ctx.span_id },
        );
    }

    /// Every commit root whose LSN range overlaps `[lsn_first, lsn_last]`,
    /// in ascending LSN order.
    pub fn roots_covering(&self, lsn_first: u64, lsn_last: u64) -> Vec<CommitRoot> {
        let inner = self.inner.lock();
        inner
            .values()
            .filter(|r| r.lsn_first <= lsn_last && r.lsn_last >= lsn_first)
            .copied()
            .collect()
    }

    /// Commit ranges evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Ranges currently indexed.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

impl Default for CommitIndex {
    /// 1024-range index.
    fn default() -> Self {
        CommitIndex::new(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let t = Tracer::new(4);
        for i in 0..10u64 {
            t.event("core", "tick", i, format!("i={i}"));
        }
        let recent = t.recent(10);
        assert_eq!(recent.len(), 4);
        assert_eq!(recent.first().unwrap().seq, 6);
        assert_eq!(recent.last().unwrap().seq, 9);
        assert_eq!(t.recorded(), 10);
        assert_eq!(t.dropped(), 6);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(8);
        t.set_enabled(false);
        t.event("db", "sql.exec", 1, "");
        let out = t.span("db", "sql.exec", 2, "", || 42);
        assert_eq!(out, 42);
        let ctx = t.start_trace("web", "request", 3, "/p");
        assert_eq!(ctx, TraceContext::NONE);
        assert_eq!(t.child_event(ctx, "cache", "hit", 3, ""), TraceContext::NONE);
        assert_eq!(t.alloc_span(ctx), TraceContext::NONE);
        assert_eq!(t.recorded(), 0);
        assert!(t.recent(8).is_empty());
    }

    #[test]
    fn span_measures_duration() {
        let t = Tracer::new(8);
        t.span("cache", "lookup", 5, "k", || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        let e = &t.recent(1)[0];
        assert_eq!(e.name, "lookup");
        assert!(e.duration_micros.unwrap() >= 1_000);
    }

    #[test]
    fn causal_chain_resolves_to_root() {
        let t = Tracer::new(16);
        let root = t.start_trace("core", "sync.point", 10, "sync#0");
        assert!(root.is_some());
        let phase = t.child_span(root, "invalidator", "sync.phase.eject", 11, "pages=2", 7);
        let leaf = t.child_event(phase, "cache", "eject", 12, "page:a");
        assert_eq!(leaf.trace_id, root.trace_id);

        let chain = t.resolve_chain(leaf.trace_id, leaf.span_id);
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[0].name, "eject");
        assert_eq!(chain[1].name, "sync.phase.eject");
        assert_eq!(chain[1].duration_micros, Some(7));
        assert_eq!(chain[2].name, "sync.point");
        assert_eq!(chain[2].parent_span, 0);
    }

    #[test]
    fn alloc_span_reserves_identity_without_event() {
        let t = Tracer::new(16);
        let root = t.start_trace("core", "sync.point", 1, "");
        let before = t.recorded();
        let eject = t.alloc_span(root);
        assert_eq!(t.recorded(), before);
        assert!(eject.is_some());
        assert_eq!(eject.trace_id, root.trace_id);
        assert_ne!(eject.span_id, root.span_id);
        // The allocated span has no ring event, but its parent resolves.
        assert!(t.find_span(root.trace_id, eject.span_id).is_none());
        assert!(t.find_span(root.trace_id, root.span_id).is_some());
    }

    #[test]
    fn ids_are_deterministic_across_tracers() {
        let mk = || {
            let t = Tracer::new(16);
            let a = t.start_trace("web", "request", 1, "/a");
            let b = t.child_event(a, "cache", "hit", 1, "k");
            let c = t.start_trace("db", "update.commit", 2, "lsns 1..3");
            (a, b, c)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn commit_index_overlap_and_eviction() {
        let idx = CommitIndex::new(2);
        idx.note(1, 3, TraceContext { trace_id: 7, span_id: 70 });
        idx.note(4, 4, TraceContext { trace_id: 8, span_id: 80 });
        let roots = idx.roots_covering(2, 4);
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].trace_id, 7);
        assert_eq!(roots[1].trace_id, 8);
        assert!(idx.roots_covering(5, 9).is_empty());

        // Third range evicts the oldest and counts the drop.
        idx.note(5, 6, TraceContext { trace_id: 9, span_id: 90 });
        assert_eq!(idx.dropped(), 1);
        assert!(idx.roots_covering(1, 3).is_empty());
        // Uncorrelated contexts are ignored.
        idx.note(7, 8, TraceContext::NONE);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn json_shape() {
        let t = Tracer::new(8);
        t.event("web", "request", 3, "/page");
        let root = t.start_trace("core", "sync.point", 4, "sync#0");
        let j = t.to_json(8);
        assert_eq!(j["recorded"].as_u64(), Some(2));
        assert_eq!(j["truncated"].as_bool(), Some(false));
        assert_eq!(j["recent"][0]["scope"].as_str(), Some("web"));
        // Uncorrelated events omit causal ids; correlated ones carry them.
        assert!(j["recent"][0]["trace_id"].as_u64().is_none());
        assert_eq!(j["recent"][1]["trace_id"].as_u64(), Some(root.trace_id));
        assert_eq!(j["recent"][1]["parent_span"].as_u64(), Some(0));
    }
}

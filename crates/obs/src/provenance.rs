//! Invalidation provenance: the causal chain behind every page eject.
//!
//! CachePortal's promise is invalidating *exactly* the pages affected by a
//! database update (PAPER.md §4). This module makes each such decision
//! explainable after the fact: when the invalidator ejects a URL it records
//! an [`EjectRecord`] — the consumed update-log LSN range and per-table ΔR
//! group sizes, the matched query types with their bound parameters, and the
//! verdict that flagged each one (local predicate check, issued polling
//! query, poll-cache/index answer, conservative policy, ...) — into a
//! bounded ring indexed both by URL and by LSN.
//!
//! [`ProvenanceLog::explain_url`] and [`ProvenanceLog::explain_lsn`] answer
//! "why was this page ejected?" and "what did this update invalidate?". Like
//! the [`crate::Tracer`] ring, the log is bounded: once full, the oldest
//! records are dropped and counted, and every [`Explanation`] carries an
//! explicit truncation marker so a miss on an old URL is distinguishable
//! from "never ejected".

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::Lsn;

/// Default ring capacity (eject records retained).
pub const DEFAULT_PROVENANCE_CAPACITY: usize = 512;

/// Per-table ΔR group summary for one sync point's consumed update batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaGroup {
    /// Table the updates touched.
    pub table: String,
    /// Rows in Δ⁺R (inserted, including the new image of UPDATEs).
    pub inserted: u64,
    /// Rows in Δ⁻R (deleted, including the old image of UPDATEs).
    pub deleted: u64,
}

impl DeltaGroup {
    fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            ("table".to_string(), Value::String(self.table.clone())),
            ("inserted".to_string(), Value::UInt(self.inserted)),
            ("deleted".to_string(), Value::UInt(self.deleted)),
        ])
    }
}

/// One affected query instance in an eject chain: the matched query type,
/// its bound parameters, and the verdict that flagged it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cause {
    /// Registered query-type id the update matched.
    pub query_type: u32,
    /// The query type's parameterised SQL.
    pub type_sql: String,
    /// Bound parameter values of the affected instance (rendered as text).
    pub params: Vec<String>,
    /// Verdict kind, e.g. `local-predicate`, `polling-query`, `conservative`.
    pub verdict: String,
    /// Free-form verdict detail (polling SQL, predicate description, ...).
    pub detail: String,
}

impl Cause {
    fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            ("query_type".to_string(), Value::UInt(self.query_type as u64)),
            ("type_sql".to_string(), Value::String(self.type_sql.clone())),
            (
                "params".to_string(),
                Value::Array(self.params.iter().cloned().map(Value::String).collect()),
            ),
            ("verdict".to_string(), Value::String(self.verdict.clone())),
            ("detail".to_string(), Value::String(self.detail.clone())),
        ])
    }
}

/// The full causal chain behind one ejected URL at one sync point:
/// LSN range → ΔR groups → matched query types/verdicts → URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EjectRecord {
    /// Dense per-log sequence number (assigned by [`ProvenanceLog::record`]).
    pub seq: u64,
    /// Sync-point ordinal this eject happened at.
    pub sync_seq: u64,
    /// Logical timestamp (microseconds) of the sync point.
    pub ts: u64,
    /// First update-log LSN consumed by the sync point.
    pub lsn_first: Lsn,
    /// Last update-log LSN consumed by the sync point.
    pub lsn_last: Lsn,
    /// Per-table ΔR group sizes for the consumed batch.
    pub deltas: Vec<DeltaGroup>,
    /// The ejected page URL (canonical cache key).
    pub url: String,
    /// Whether the page was actually resident in the cache when ejected
    /// (false = the invalidation named it but it was not cached).
    pub resident: bool,
    /// Affected query instances that named this URL, with their verdicts.
    pub causes: Vec<Cause>,
    /// Lifecycle trace this eject belongs to (0 = untraced, e.g. recovery
    /// ejects or tracing disabled).
    pub trace_id: u64,
    /// This eject's span id within the trace (allocated by the tracer; the
    /// record itself is the span — no separate ring event per eject).
    pub span_id: u64,
    /// Parent span: the sync point's eject-phase span.
    pub parent_span: u64,
}

impl EjectRecord {
    /// Render as a JSON object.
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            ("seq".to_string(), Value::UInt(self.seq)),
            ("sync_seq".to_string(), Value::UInt(self.sync_seq)),
            ("ts".to_string(), Value::UInt(self.ts)),
            ("lsn_first".to_string(), Value::UInt(self.lsn_first)),
            ("lsn_last".to_string(), Value::UInt(self.lsn_last)),
            (
                "deltas".to_string(),
                Value::Array(self.deltas.iter().map(|d| d.to_json()).collect()),
            ),
            ("url".to_string(), Value::String(self.url.clone())),
            ("resident".to_string(), Value::Bool(self.resident)),
            (
                "causes".to_string(),
                Value::Array(self.causes.iter().map(|c| c.to_json()).collect()),
            ),
            ("trace_id".to_string(), Value::UInt(self.trace_id)),
            ("span_id".to_string(), Value::UInt(self.span_id)),
            ("parent_span".to_string(), Value::UInt(self.parent_span)),
        ])
    }
}

/// Answer to an `explain_*` query: matching records plus an explicit
/// truncation marker so callers can tell "not found" from "rotated out".
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Matching eject records, oldest first.
    pub matches: Vec<EjectRecord>,
    /// True when the ring has dropped records: an empty `matches` may mean
    /// the evidence rotated out rather than that the event never happened.
    pub truncated: bool,
    /// Records dropped from the ring so far.
    pub dropped_records: u64,
}

impl Explanation {
    /// Render as a JSON object.
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            (
                "matches".to_string(),
                Value::Array(self.matches.iter().map(|m| m.to_json()).collect()),
            ),
            ("truncated".to_string(), Value::Bool(self.truncated)),
            ("dropped_records".to_string(), Value::UInt(self.dropped_records)),
        ])
    }
}

/// Ring state. `ring` holds records in `seq` order; because `seq` is dense,
/// a record's position is `seq - front.seq`, so the secondary indexes store
/// bare sequence numbers.
#[derive(Default)]
struct Inner {
    ring: VecDeque<EjectRecord>,
    by_url: HashMap<String, Vec<u64>>,
    /// Keyed by `lsn_first`. Sync points consume disjoint LSN ranges, so the
    /// record(s) covering an LSN are exactly those at the greatest
    /// `lsn_first <= lsn` whose `lsn_last >= lsn`.
    by_first_lsn: BTreeMap<Lsn, Vec<u64>>,
}

/// Bounded, shareable log of [`EjectRecord`]s with URL and LSN indexes.
///
/// All methods take `&self`; the ring is guarded by a mutex held only for
/// short record/lookup critical sections, while the monotone `recorded` /
/// `dropped` counters are plain atomics readable without the lock.
pub struct ProvenanceLog {
    inner: Mutex<Inner>,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    enabled: AtomicBool,
}

impl Default for ProvenanceLog {
    fn default() -> Self {
        Self::new(DEFAULT_PROVENANCE_CAPACITY)
    }
}

impl ProvenanceLog {
    /// A log retaining at most `capacity` eject records.
    pub fn new(capacity: usize) -> Self {
        ProvenanceLog {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Turn recording on/off (lookups keep working either way).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Append one eject record, assigning its `seq`. Returns the assigned
    /// sequence number, or `None` when recording is disabled.
    pub fn record(&self, mut rec: EjectRecord) -> Option<u64> {
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        let mut inner = self.inner.lock();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        rec.seq = seq;
        if inner.ring.len() == self.capacity {
            if let Some(old) = inner.ring.pop_front() {
                Self::unindex(&mut inner, &old);
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.by_url.entry(rec.url.clone()).or_default().push(seq);
        inner.by_first_lsn.entry(rec.lsn_first).or_default().push(seq);
        inner.ring.push_back(rec);
        Some(seq)
    }

    fn unindex(inner: &mut Inner, old: &EjectRecord) {
        if let Some(seqs) = inner.by_url.get_mut(&old.url) {
            seqs.retain(|&s| s != old.seq);
            if seqs.is_empty() {
                inner.by_url.remove(&old.url);
            }
        }
        if let Some(seqs) = inner.by_first_lsn.get_mut(&old.lsn_first) {
            seqs.retain(|&s| s != old.seq);
            if seqs.is_empty() {
                inner.by_first_lsn.remove(&old.lsn_first);
            }
        }
    }

    /// Total records ever recorded.
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Records dropped to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Why was `url` ejected? All retained records for that URL, oldest
    /// first, plus the truncation marker.
    pub fn explain_url(&self, url: &str) -> Explanation {
        let inner = self.inner.lock();
        let matches = inner
            .by_url
            .get(url)
            .map(|seqs| seqs.iter().filter_map(|&s| Self::by_seq(&inner, s).cloned()).collect())
            .unwrap_or_default();
        self.explanation(matches)
    }

    /// What did the update at `lsn` invalidate? All retained records whose
    /// consumed LSN range covers `lsn`, plus the truncation marker.
    pub fn explain_lsn(&self, lsn: Lsn) -> Explanation {
        let inner = self.inner.lock();
        // Sync batches are disjoint, so only the greatest lsn_first <= lsn
        // can cover it; verify against lsn_last.
        let matches = inner
            .by_first_lsn
            .range(..=lsn)
            .next_back()
            .map(|(_, seqs)| {
                seqs.iter()
                    .filter_map(|&s| Self::by_seq(&inner, s))
                    .filter(|r| r.lsn_last >= lsn)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        self.explanation(matches)
    }

    fn explanation(&self, matches: Vec<EjectRecord>) -> Explanation {
        let dropped = self.dropped();
        Explanation {
            matches,
            truncated: dropped > 0,
            dropped_records: dropped,
        }
    }

    fn by_seq(inner: &Inner, seq: u64) -> Option<&EjectRecord> {
        let front = inner.ring.front()?.seq;
        inner.ring.get(seq.checked_sub(front)? as usize)
    }

    /// The most recent `n` records, oldest first.
    pub fn recent(&self, n: usize) -> Vec<EjectRecord> {
        let inner = self.inner.lock();
        let skip = inner.ring.len().saturating_sub(n);
        inner.ring.iter().skip(skip).cloned().collect()
    }

    /// Records with `seq >= since`, oldest first (for incremental export).
    pub fn since(&self, since: u64) -> Vec<EjectRecord> {
        let inner = self.inner.lock();
        inner.ring.iter().filter(|r| r.seq >= since).cloned().collect()
    }

    /// Summary + the most recent `limit` records as JSON.
    pub fn to_json(&self, limit: usize) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            ("recorded".to_string(), Value::UInt(self.recorded())),
            ("dropped".to_string(), Value::UInt(self.dropped())),
            (
                "recent".to_string(),
                Value::Array(self.recent(limit).iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }

    /// Drop all retained records (counters keep their totals).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.ring.clear();
        inner.by_url.clear();
        inner.by_first_lsn.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(url: &str, lsn_first: Lsn, lsn_last: Lsn) -> EjectRecord {
        EjectRecord {
            seq: 0,
            sync_seq: 0,
            ts: 42,
            lsn_first,
            lsn_last,
            deltas: vec![DeltaGroup {
                table: "car".to_string(),
                inserted: 1,
                deleted: 0,
            }],
            url: url.to_string(),
            resident: true,
            causes: vec![Cause {
                query_type: 0,
                type_sql: "SELECT * FROM car WHERE price < $1".to_string(),
                params: vec!["20000".to_string()],
                verdict: "polling-query".to_string(),
                detail: "SELECT COUNT(*) ...".to_string(),
            }],
            trace_id: 0,
            span_id: 0,
            parent_span: 0,
        }
    }

    #[test]
    fn explain_by_url_and_lsn() {
        let log = ProvenanceLog::new(8);
        log.record(rec("/a", 0, 2));
        log.record(rec("/b", 0, 2));
        log.record(rec("/a", 3, 3));

        let a = log.explain_url("/a");
        assert_eq!(a.matches.len(), 2);
        assert!(!a.truncated);
        assert_eq!(a.matches[0].lsn_first, 0);
        assert_eq!(a.matches[1].lsn_first, 3);

        // LSN 1 falls inside the first batch [0, 2]: both its URLs match.
        let batch = log.explain_lsn(1);
        assert_eq!(batch.matches.len(), 2);
        // LSN 3 is the second batch.
        let l3 = log.explain_lsn(3);
        assert_eq!(l3.matches.len(), 1);
        assert_eq!(l3.matches[0].url, "/a");
        // LSN 4 was never consumed: greatest lsn_first <= 4 is 3, but the
        // check against lsn_last must still pass — here it does not.
        assert!(log.explain_lsn(4).matches.is_empty());
    }

    #[test]
    fn ring_evicts_oldest_and_marks_truncation() {
        let log = ProvenanceLog::new(2);
        log.record(rec("/old", 0, 0));
        log.record(rec("/mid", 1, 1));
        assert_eq!(log.dropped(), 0);
        log.record(rec("/new", 2, 2));
        assert_eq!(log.len(), 2);
        assert_eq!(log.recorded(), 3);
        assert_eq!(log.dropped(), 1);

        // The evicted record is gone, but the explanation says so instead of
        // silently returning nothing.
        let old = log.explain_url("/old");
        assert!(old.matches.is_empty());
        assert!(old.truncated);
        assert_eq!(old.dropped_records, 1);
        let old_lsn = log.explain_lsn(0);
        assert!(old_lsn.matches.is_empty());
        assert!(old_lsn.truncated);

        // Retained records still resolve.
        assert_eq!(log.explain_url("/new").matches.len(), 1);
        assert_eq!(log.explain_lsn(1).matches.len(), 1);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = ProvenanceLog::new(4);
        log.set_enabled(false);
        assert_eq!(log.record(rec("/a", 0, 0)), None);
        assert_eq!(log.recorded(), 0);
        assert!(log.explain_url("/a").matches.is_empty());
        log.set_enabled(true);
        assert!(log.record(rec("/a", 1, 1)).is_some());
        assert_eq!(log.explain_url("/a").matches.len(), 1);
    }

    #[test]
    fn json_shape_round_trips() {
        let log = ProvenanceLog::new(4);
        log.record(rec("/a", 5, 7));
        let doc = log.explain_url("/a").to_json();
        let text = serde_json::to_string(&doc).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["truncated"].as_bool(), Some(false));
        let m = &back["matches"][0];
        assert_eq!(m["url"].as_str(), Some("/a"));
        assert_eq!(m["lsn_first"].as_u64(), Some(5));
        assert_eq!(m["lsn_last"].as_u64(), Some(7));
        assert_eq!(m["deltas"][0]["table"].as_str(), Some("car"));
        assert_eq!(m["causes"][0]["verdict"].as_str(), Some("polling-query"));
        assert_eq!(m["causes"][0]["params"][0].as_str(), Some("20000"));
    }

    #[test]
    fn recent_and_since_are_ordered() {
        let log = ProvenanceLog::new(8);
        for i in 0..5 {
            log.record(rec(&format!("/p{i}"), i, i));
        }
        let recent = log.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].url, "/p3");
        assert_eq!(recent[1].url, "/p4");
        let since = log.since(3);
        assert_eq!(since.len(), 2);
        assert_eq!(since[0].seq, 3);
    }
}

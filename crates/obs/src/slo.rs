//! Freshness SLO engine: declarative objectives evaluated over sliding
//! windows, with Prometheus-style multi-window burn-rate alerting.
//!
//! Every objective is reduced to a good/bad event stream — a latency
//! objective classifies each observation against its threshold, a ratio
//! objective (hit rate, poll success) counts outcomes directly — so the
//! burn-rate math is uniform:
//!
//! ```text
//! burn(window) = bad_fraction(window) / (1 - goal)
//! ```
//!
//! An alert pair fires when the burn rate exceeds its threshold in BOTH
//! the short and the long window (the short window makes the alert fast to
//! resolve, the long window keeps one bad minute from paging). The default
//! pairs follow SRE practice: fast = 5m/1h at 14.4× (page severity),
//! slow = 30m/6h at 6× (ticket severity).
//!
//! All windows run on the portal's *logical* clock, so evaluation is
//! deterministic under a fixed seed. The one wall-clock-fed objective
//! (sync-point latency) is marked `deterministic: false` and is skipped by
//! the `stable=1` rendering that the flight recorder's byte-stability
//! contract relies on.
//!
//! Firing/resolved transitions append to a bounded alert log (ring with a
//! dropped counter) that the JSONL exporter cursors over, exactly like the
//! trace and provenance rings.

use parking_lot::Mutex;
use serde_json::Value;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

const MINUTE: u64 = 60_000_000;
const HOUR: u64 = 60 * MINUTE;

/// What a sliding-window objective measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloKind {
    /// Per-ejected-page commit→eject staleness window (weighted by pages).
    StalenessP99,
    /// Per-sync commit→eject latency (one sample per consuming sync point).
    CommitEject,
    /// Cache hit rate over routable (cacheable) requests.
    HitRate,
    /// Wall-clock sync-point latency (non-deterministic feed).
    SyncLatency,
    /// Poll success rate (faulted polls are the bad events).
    PollErrors,
    /// Bus delivery success rate (failed/dropped delivery attempts are the
    /// bad events; acked deliveries are good).
    BusDelivery,
}

impl SloKind {
    /// Stable kebab-case identifier (used as the objective id, in alert
    /// lines, and in metric names).
    pub fn as_str(self) -> &'static str {
        match self {
            SloKind::StalenessP99 => "staleness-p99",
            SloKind::CommitEject => "commit-eject",
            SloKind::HitRate => "hit-rate",
            SloKind::SyncLatency => "sync-latency-p95",
            SloKind::PollErrors => "poll-error-rate",
            SloKind::BusDelivery => "bus-delivery-rate",
        }
    }
}

/// One declarative objective: "`goal` of events must be good", where good
/// is `value <= threshold_micros` for latency kinds and the positive
/// outcome for ratio kinds.
#[derive(Debug, Clone)]
pub struct Objective {
    /// Stable identifier (defaults to the kind's name).
    pub id: &'static str,
    /// Which event stream feeds this objective.
    pub kind: SloKind,
    /// Good/bad classification threshold for latency kinds (ignored by
    /// ratio kinds).
    pub threshold_micros: u64,
    /// Required good fraction in [0, 1), e.g. 0.99.
    pub goal: f64,
    /// Whether the feed is purely logical-clock driven. Wall-fed
    /// objectives are excluded from `stable=1` renderings.
    pub deterministic: bool,
}

impl Objective {
    /// Objective with the kind's canonical id.
    pub fn new(kind: SloKind, threshold_micros: u64, goal: f64, deterministic: bool) -> Objective {
        Objective { id: kind.as_str(), kind, threshold_micros, goal, deterministic }
    }

    /// Error budget: the tolerated bad fraction, floored so burn rates
    /// stay finite even for goal=1.0 misconfigurations.
    fn budget(&self) -> f64 {
        (1.0 - self.goal).max(1e-4)
    }
}

/// A short/long burn-rate window pair with its firing threshold.
#[derive(Debug, Clone)]
pub struct BurnPair {
    /// Stable name ("fast" / "slow").
    pub name: &'static str,
    /// Alerting severity rendered in alert lines ("page" / "ticket").
    pub severity: &'static str,
    /// Short window (fast resolution) in logical micros.
    pub short_micros: u64,
    /// Long window (flap suppression) in logical micros.
    pub long_micros: u64,
    /// Burn-rate threshold that BOTH windows must exceed to fire.
    pub threshold: f64,
    /// Fast pairs drive `/healthz` to unhealthy; slow pairs to degraded.
    pub fast: bool,
}

/// The full declarative policy: objectives, window pairs, and sizing.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    /// Objectives, evaluated independently.
    pub objectives: Vec<Objective>,
    /// Burn-rate window pairs applied to every objective.
    pub pairs: Vec<BurnPair>,
    /// Window bucket width in logical micros (coarser = cheaper).
    pub bucket_micros: u64,
    /// Alert-log ring capacity.
    pub alert_log_cap: usize,
}

impl Default for SloPolicy {
    /// The shipped policy: the six objectives from the freshness contract
    /// and the standard fast(5m/1h@14.4×)/slow(30m/6h@6×) pairs.
    fn default() -> SloPolicy {
        SloPolicy {
            objectives: vec![
                Objective::new(SloKind::StalenessP99, 1_000_000, 0.99, true),
                Objective::new(SloKind::CommitEject, 2_000_000, 0.95, true),
                Objective::new(SloKind::HitRate, 0, 0.50, true),
                Objective::new(SloKind::SyncLatency, 250_000, 0.95, false),
                Objective::new(SloKind::PollErrors, 0, 0.99, true),
                Objective::new(SloKind::BusDelivery, 0, 0.95, true),
            ],
            pairs: SloPolicy::default_pairs(),
            bucket_micros: MINUTE,
            alert_log_cap: 256,
        }
    }
}

impl SloPolicy {
    /// The standard multi-window pairs (usable by custom policies).
    pub fn default_pairs() -> Vec<BurnPair> {
        vec![
            BurnPair {
                name: "fast",
                severity: "page",
                short_micros: 5 * MINUTE,
                long_micros: HOUR,
                threshold: 14.4,
                fast: true,
            },
            BurnPair {
                name: "slow",
                severity: "ticket",
                short_micros: 30 * MINUTE,
                long_micros: 6 * HOUR,
                threshold: 6.0,
                fast: false,
            },
        ]
    }

    fn longest_window(&self) -> u64 {
        self.pairs.iter().map(|p| p.long_micros).max().unwrap_or(6 * HOUR)
    }
}

/// Time-bucketed good/bad counts; windows query a suffix of buckets.
#[derive(Debug, Default)]
struct WindowedCounter {
    buckets: VecDeque<Bucket>,
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    start: u64,
    good: u64,
    bad: u64,
}

impl WindowedCounter {
    fn add(&mut self, now: u64, width: u64, good: u64, bad: u64) {
        let start = now - now % width.max(1);
        match self.buckets.back_mut() {
            // The logical clock is monotone, but fold clock regressions
            // into the newest bucket rather than corrupting the order.
            Some(b) if b.start >= start => {
                b.good += good;
                b.bad += bad;
            }
            _ => self.buckets.push_back(Bucket { start, good, bad }),
        }
    }

    /// (good, bad) totals over `[now - window, now]`.
    fn totals(&self, now: u64, width: u64, window: u64) -> (u64, u64) {
        let cutoff = now.saturating_sub(window);
        let mut good = 0;
        let mut bad = 0;
        for b in self.buckets.iter().rev() {
            // A bucket contributes while any part of it overlaps the window.
            if b.start + width.max(1) <= cutoff {
                break;
            }
            good += b.good;
            bad += b.bad;
        }
        (good, bad)
    }

    fn prune(&mut self, now: u64, width: u64, keep: u64) {
        let cutoff = now.saturating_sub(keep);
        while let Some(b) = self.buckets.front() {
            if b.start + width.max(1) > cutoff {
                break;
            }
            self.buckets.pop_front();
        }
    }
}

/// One firing/resolved transition in the bounded alert log.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Monotone sequence number (exporter cursor key).
    pub seq: u64,
    /// Logical timestamp of the evaluation that produced the transition.
    pub ts: u64,
    /// Objective id ([`SloKind::as_str`] by default).
    pub objective: &'static str,
    /// Window-pair name ("fast" / "slow").
    pub pair: &'static str,
    /// Severity ("page" / "ticket").
    pub severity: &'static str,
    /// "firing" or "resolved".
    pub state: &'static str,
    /// Burn rate in the short window at transition time.
    pub burn_short: f64,
    /// Burn rate in the long window at transition time.
    pub burn_long: f64,
    /// Copied from the objective; false for wall-fed objectives.
    pub deterministic: bool,
}

impl AlertEvent {
    /// JSON object (one exporter line body / alert-log entry).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("seq".to_string(), Value::UInt(self.seq)),
            ("ts".to_string(), Value::UInt(self.ts)),
            ("objective".to_string(), Value::String(self.objective.to_string())),
            ("pair".to_string(), Value::String(self.pair.to_string())),
            ("severity".to_string(), Value::String(self.severity.to_string())),
            ("state".to_string(), Value::String(self.state.to_string())),
            ("burn_short".to_string(), Value::Float(self.burn_short)),
            ("burn_long".to_string(), Value::Float(self.burn_long)),
            ("deterministic".to_string(), Value::Bool(self.deterministic)),
        ])
    }
}

/// What one [`SloEngine::evaluate`] pass produced.
#[derive(Debug, Default)]
pub struct EvalOutcome {
    /// Transitions that started firing this pass.
    pub newly_fired: Vec<AlertEvent>,
    /// Transitions that resolved this pass.
    pub newly_resolved: Vec<AlertEvent>,
    /// (objective, pair) combinations currently firing on a fast pair.
    pub fast_firing: u64,
    /// (objective, pair) combinations currently firing on a slow pair.
    pub slow_firing: u64,
}

struct EngineInner {
    policy: SloPolicy,
    counters: Vec<WindowedCounter>,
    firing: Vec<Vec<bool>>,
    alerts: VecDeque<AlertEvent>,
    alert_seq: u64,
    alerts_dropped: u64,
    last_eval_ts: u64,
}

impl EngineInner {
    fn fresh(policy: SloPolicy) -> EngineInner {
        let n = policy.objectives.len();
        let pairs = policy.pairs.len();
        EngineInner {
            counters: (0..n).map(|_| WindowedCounter::default()).collect(),
            firing: vec![vec![false; pairs]; n],
            alerts: VecDeque::new(),
            alert_seq: 0,
            alerts_dropped: 0,
            last_eval_ts: 0,
            policy,
        }
    }

    fn push_alert(&mut self, ev: AlertEvent) {
        if self.alerts.len() >= self.policy.alert_log_cap.max(1) {
            self.alerts.pop_front();
            self.alerts_dropped += 1;
        }
        self.alerts.push_back(ev);
    }
}

/// The sliding-window SLO evaluator. Shared via `Obs`; all methods take
/// `&self`.
pub struct SloEngine {
    enabled: AtomicBool,
    inner: Mutex<EngineInner>,
}

impl Default for SloEngine {
    fn default() -> Self {
        SloEngine::new(SloPolicy::default())
    }
}

impl SloEngine {
    /// Engine with an explicit policy.
    pub fn new(policy: SloPolicy) -> SloEngine {
        SloEngine {
            enabled: AtomicBool::new(true),
            inner: Mutex::new(EngineInner::fresh(policy)),
        }
    }

    /// Toggle evaluation (the A/B arm of `slo_overhead` and an operator
    /// kill switch). Disabling does not clear state; re-enabling resumes.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether observations and evaluation are live.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Replace the policy, resetting counters, firing state, and the
    /// alert log.
    pub fn configure(&self, policy: SloPolicy) {
        *self.inner.lock() = EngineInner::fresh(policy);
    }

    /// Feed `count` observations of `value_micros` to every latency
    /// objective of `kind`.
    pub fn observe_latency(&self, kind: SloKind, now: u64, value_micros: u64, count: u64) {
        if !self.enabled() || count == 0 {
            return;
        }
        let inner = &mut *self.inner.lock();
        let width = inner.policy.bucket_micros;
        let keep = inner.policy.longest_window() + width;
        for (o, c) in inner.policy.objectives.iter().zip(inner.counters.iter_mut()) {
            if o.kind != kind {
                continue;
            }
            if value_micros <= o.threshold_micros {
                c.add(now, width, count, 0);
            } else {
                c.add(now, width, 0, count);
            }
            c.prune(now, width, keep);
        }
    }

    /// Feed pre-classified good/bad counts to every ratio objective of
    /// `kind`.
    pub fn observe_counts(&self, kind: SloKind, now: u64, good: u64, bad: u64) {
        if !self.enabled() || good + bad == 0 {
            return;
        }
        let inner = &mut *self.inner.lock();
        let width = inner.policy.bucket_micros;
        let keep = inner.policy.longest_window() + width;
        for (o, c) in inner.policy.objectives.iter().zip(inner.counters.iter_mut()) {
            if o.kind != kind {
                continue;
            }
            c.add(now, width, good, bad);
            c.prune(now, width, keep);
        }
    }

    /// Feed one boolean outcome (e.g. a cache hit/miss).
    pub fn observe_bool(&self, kind: SloKind, now: u64, good: bool) {
        self.observe_counts(kind, now, u64::from(good), u64::from(!good));
    }

    /// Evaluate every (objective, pair) combination at logical time `now`,
    /// appending firing/resolved transitions to the alert log.
    pub fn evaluate(&self, now: u64) -> EvalOutcome {
        let mut out = EvalOutcome::default();
        if !self.enabled() {
            return out;
        }
        let mut inner = self.inner.lock();
        inner.last_eval_ts = now;
        let width = inner.policy.bucket_micros;
        let mut transitions: Vec<AlertEvent> = Vec::new();
        for oi in 0..inner.policy.objectives.len() {
            for pi in 0..inner.policy.pairs.len() {
                let (o, p) = (&inner.policy.objectives[oi], &inner.policy.pairs[pi]);
                let burn_short = burn(&inner.counters[oi], now, width, p.short_micros, o);
                let burn_long = burn(&inner.counters[oi], now, width, p.long_micros, o);
                let firing = burn_short >= p.threshold && burn_long >= p.threshold;
                let was = inner.firing[oi][pi];
                if firing {
                    if p.fast {
                        out.fast_firing += 1;
                    } else {
                        out.slow_firing += 1;
                    }
                }
                if firing != was {
                    transitions.push(AlertEvent {
                        seq: 0, // assigned on push below
                        ts: now,
                        objective: o.id,
                        pair: p.name,
                        severity: p.severity,
                        state: if firing { "firing" } else { "resolved" },
                        burn_short,
                        burn_long,
                        deterministic: o.deterministic,
                    });
                }
                inner.firing[oi][pi] = firing;
            }
        }
        for mut ev in transitions {
            ev.seq = inner.alert_seq;
            inner.alert_seq += 1;
            if ev.state == "firing" {
                out.newly_fired.push(ev.clone());
            } else {
                out.newly_resolved.push(ev.clone());
            }
            inner.push_alert(ev);
        }
        out
    }

    /// Currently-firing (fast, slow) combination counts without
    /// re-evaluating.
    pub fn firing_counts(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        let mut fast = 0;
        let mut slow = 0;
        for row in &inner.firing {
            for (pi, &f) in row.iter().enumerate() {
                if f {
                    if inner.policy.pairs[pi].fast {
                        fast += 1;
                    } else {
                        slow += 1;
                    }
                }
            }
        }
        (fast, slow)
    }

    /// Logical timestamp of the most recent [`SloEngine::evaluate`] pass.
    pub fn last_eval_ts(&self) -> u64 {
        self.inner.lock().last_eval_ts
    }

    /// Total alert transitions ever recorded.
    pub fn alerts_recorded(&self) -> u64 {
        self.inner.lock().alert_seq
    }

    /// Transitions evicted from the bounded log.
    pub fn alerts_dropped(&self) -> u64 {
        self.inner.lock().alerts_dropped
    }

    /// Alert transitions with `seq >= since`, oldest first (exporter
    /// cursor access, mirroring `ProvenanceLog::since`).
    pub fn alerts_since(&self, since: u64) -> Vec<AlertEvent> {
        let inner = self.inner.lock();
        inner.alerts.iter().filter(|a| a.seq >= since).cloned().collect()
    }

    /// The newest `n` transitions, oldest first.
    pub fn alerts_recent(&self, n: usize) -> Vec<AlertEvent> {
        let inner = self.inner.lock();
        let skip = inner.alerts.len().saturating_sub(n);
        inner.alerts.iter().skip(skip).cloned().collect()
    }

    /// The `/slo` document. `stable=1` drops wall-fed objectives and their
    /// alerts so the rendering is byte-identical across replays of the
    /// same deterministic script.
    pub fn to_json(&self, now: u64, stable: bool) -> Value {
        let inner = self.inner.lock();
        let width = inner.policy.bucket_micros;
        let longest = inner.policy.longest_window();
        let pairs: Vec<Value> = inner
            .policy
            .pairs
            .iter()
            .map(|p| {
                Value::Object(vec![
                    ("name".to_string(), Value::String(p.name.to_string())),
                    ("severity".to_string(), Value::String(p.severity.to_string())),
                    ("short_micros".to_string(), Value::UInt(p.short_micros)),
                    ("long_micros".to_string(), Value::UInt(p.long_micros)),
                    ("burn_threshold".to_string(), Value::Float(p.threshold)),
                ])
            })
            .collect();
        let mut fast = 0u64;
        let mut slow = 0u64;
        let mut objectives = Vec::new();
        for (oi, o) in inner.policy.objectives.iter().enumerate() {
            let mut any = false;
            let mut burns = Vec::new();
            for (pi, p) in inner.policy.pairs.iter().enumerate() {
                let firing = inner.firing[oi][pi];
                if firing {
                    any = true;
                    if p.fast {
                        fast += 1;
                    } else {
                        slow += 1;
                    }
                }
                burns.push(Value::Object(vec![
                    ("pair".to_string(), Value::String(p.name.to_string())),
                    (
                        "short".to_string(),
                        Value::Float(burn(&inner.counters[oi], now, width, p.short_micros, o)),
                    ),
                    (
                        "long".to_string(),
                        Value::Float(burn(&inner.counters[oi], now, width, p.long_micros, o)),
                    ),
                    ("firing".to_string(), Value::Bool(firing)),
                ]));
            }
            if stable && !o.deterministic {
                continue;
            }
            let (good, bad) = inner.counters[oi].totals(now, width, longest);
            objectives.push(Value::Object(vec![
                ("id".to_string(), Value::String(o.id.to_string())),
                ("kind".to_string(), Value::String(o.kind.as_str().to_string())),
                ("goal".to_string(), Value::Float(o.goal)),
                ("threshold_micros".to_string(), Value::UInt(o.threshold_micros)),
                ("deterministic".to_string(), Value::Bool(o.deterministic)),
                ("good".to_string(), Value::UInt(good)),
                ("bad".to_string(), Value::UInt(bad)),
                ("burn".to_string(), Value::Array(burns)),
                ("firing".to_string(), Value::Bool(any)),
            ]));
        }
        let recent: Vec<Value> = inner
            .alerts
            .iter()
            .filter(|a| !stable || a.deterministic)
            .map(|a| a.to_json())
            .collect();
        Value::Object(vec![
            ("schema".to_string(), Value::String("cacheportal.slo.v1".to_string())),
            ("enabled".to_string(), Value::Bool(self.enabled())),
            ("stable".to_string(), Value::Bool(stable)),
            ("now".to_string(), Value::UInt(now)),
            ("pairs".to_string(), Value::Array(pairs)),
            ("objectives".to_string(), Value::Array(objectives)),
            (
                "alerts".to_string(),
                Value::Object(vec![
                    ("recorded".to_string(), Value::UInt(inner.alert_seq)),
                    ("dropped".to_string(), Value::UInt(inner.alerts_dropped)),
                    ("recent".to_string(), Value::Array(recent)),
                ]),
            ),
            (
                "firing".to_string(),
                Value::Object(vec![
                    ("fast".to_string(), Value::UInt(fast)),
                    ("slow".to_string(), Value::UInt(slow)),
                ]),
            ),
        ])
    }
}

/// Burn rate of one objective over one window at logical time `now`.
fn burn(c: &WindowedCounter, now: u64, width: u64, window: u64, o: &Objective) -> f64 {
    let (good, bad) = c.totals(now, width, window);
    let total = good + bad;
    if total == 0 {
        return 0.0;
    }
    (bad as f64 / total as f64) / o.budget()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight_policy() -> SloPolicy {
        SloPolicy {
            objectives: vec![Objective::new(SloKind::StalenessP99, 100, 0.99, true)],
            pairs: SloPolicy::default_pairs(),
            bucket_micros: MINUTE,
            alert_log_cap: 4,
        }
    }

    #[test]
    fn burn_rate_fires_and_resolves() {
        let e = SloEngine::new(tight_policy());
        // All good: nothing fires.
        e.observe_latency(SloKind::StalenessP99, 1_000, 50, 10);
        let out = e.evaluate(1_000);
        assert!(out.newly_fired.is_empty());
        assert_eq!(e.firing_counts(), (0, 0));
        // A burst of bad windows: bad fraction 0.5 ≫ 14.4 × 0.01 budget.
        e.observe_latency(SloKind::StalenessP99, 2_000, 5_000, 10);
        let out = e.evaluate(2_000);
        assert_eq!(out.newly_fired.len(), 2, "fast and slow pairs both fire");
        assert_eq!(out.fast_firing, 1);
        assert_eq!(out.slow_firing, 1);
        assert_eq!(e.firing_counts(), (1, 1));
        // Steady state: still firing, but no new transitions.
        let out = e.evaluate(3_000);
        assert!(out.newly_fired.is_empty() && out.newly_resolved.is_empty());
        assert_eq!(out.fast_firing, 1);
        // Advance past the longest window: the bad events age out.
        let later = 3_000 + 7 * HOUR;
        let out = e.evaluate(later);
        assert_eq!(out.newly_resolved.len(), 2);
        assert_eq!(e.firing_counts(), (0, 0));
        // Transition log: firing, firing, resolved, resolved.
        let alerts = e.alerts_since(0);
        assert_eq!(alerts.len(), 4);
        assert!(alerts[0].state == "firing" && alerts[3].state == "resolved");
        assert_eq!(alerts[0].objective, "staleness-p99");
    }

    #[test]
    fn short_window_recovers_before_long() {
        // After a breach, fresh good traffic clears the short window while
        // the long window still remembers the bad burst — the AND of the
        // two windows is what resolves the alert quickly.
        let e = SloEngine::new(tight_policy());
        e.observe_latency(SloKind::StalenessP99, 1_000, 5_000, 100);
        assert_eq!(e.evaluate(1_000).newly_fired.len(), 2);
        // 10 minutes later (outside 5m, inside 1h), all-good traffic.
        let later = 1_000 + 10 * MINUTE;
        e.observe_latency(SloKind::StalenessP99, later, 10, 100);
        let out = e.evaluate(later);
        // Fast pair resolves: its 5m short window holds only the clean
        // traffic. The slow pair's 30m short window still spans the burst
        // (bad fraction 0.5 ≫ 6 × 0.01 budget), so it keeps firing.
        assert!(out.newly_resolved.iter().any(|a| a.pair == "fast"));
        assert!(e.firing_counts().1 >= 1, "slow pair still firing");
    }

    #[test]
    fn ratio_objective_counts_outcomes() {
        let pol = SloPolicy {
            objectives: vec![Objective::new(SloKind::PollErrors, 0, 0.99, true)],
            pairs: SloPolicy::default_pairs(),
            bucket_micros: MINUTE,
            alert_log_cap: 8,
        };
        let e = SloEngine::new(pol);
        e.observe_counts(SloKind::PollErrors, 500, 6, 6);
        let out = e.evaluate(500);
        assert_eq!(out.fast_firing, 1);
        let doc = e.to_json(500, false);
        assert_eq!(doc["objectives"][0]["bad"].as_u64(), Some(6));
        assert_eq!(doc["firing"]["fast"].as_u64(), Some(1));
    }

    #[test]
    fn alert_log_is_bounded_with_dropped_counter() {
        let e = SloEngine::new(tight_policy());
        // Flap the objective: bad burst → fire, age out → resolve, repeat.
        let mut now = 1_000;
        for _ in 0..3 {
            e.observe_latency(SloKind::StalenessP99, now, 5_000, 10);
            e.evaluate(now);
            now += 7 * HOUR;
            e.evaluate(now);
            now += MINUTE;
        }
        // 3 flaps × 2 pairs × 2 transitions = 12 recorded, cap 4.
        assert_eq!(e.alerts_recorded(), 12);
        assert_eq!(e.alerts_dropped(), 8);
        assert_eq!(e.alerts_since(0).len(), 4);
        // The cursor view only sees what survived the ring.
        let first_kept = e.alerts_since(0)[0].seq;
        assert_eq!(first_kept, 8);
    }

    #[test]
    fn disabled_engine_observes_nothing() {
        let e = SloEngine::default();
        e.set_enabled(false);
        e.observe_latency(SloKind::StalenessP99, 1_000, u64::MAX, 100);
        let out = e.evaluate(1_000);
        assert_eq!(out.fast_firing + out.slow_firing, 0);
        e.set_enabled(true);
        let doc = e.to_json(1_000, false);
        assert_eq!(doc["objectives"][0]["bad"].as_u64(), Some(0));
    }

    #[test]
    fn stable_rendering_skips_wall_fed_objectives() {
        let e = SloEngine::default();
        e.observe_latency(SloKind::SyncLatency, 1_000, u64::MAX, 50);
        e.evaluate(1_000);
        let full = serde_json::to_string_pretty(&e.to_json(1_000, false)).unwrap();
        let stable = serde_json::to_string_pretty(&e.to_json(1_000, true)).unwrap();
        assert!(full.contains("sync-latency-p95"));
        assert!(!stable.contains("sync-latency-p95"));
        assert!(stable.contains("\"stable\": true"));
    }

    #[test]
    fn configure_resets_state() {
        let e = SloEngine::new(tight_policy());
        e.observe_latency(SloKind::StalenessP99, 1_000, 5_000, 10);
        e.evaluate(1_000);
        assert_ne!(e.firing_counts(), (0, 0));
        e.configure(tight_policy());
        assert_eq!(e.firing_counts(), (0, 0));
        assert_eq!(e.alerts_recorded(), 0);
    }
}

//! Per-sync-point stage timeline behind the `/timeline` admin endpoint.
//!
//! Every sync point records one [`SyncTimeline`] — the sync's causal identity
//! plus one [`StageSample`] per pipeline phase (mapper, registration, delta
//! collection, shard analysis, poll wait, eject, WAL persist). Each stage
//! carries two measures:
//!
//! * `micros` — wall-clock duration, for humans and chrome://tracing;
//! * `work` — a deterministic unit count (records mapped, tuples analyzed,
//!   polls issued, pages ejected, ...) that is byte-stable across seeded
//!   runs, which is what the determinism tests and the harness gate on.
//!
//! [`TimelineLog::to_json`] renders the full document; the *stable* variant
//! zeroes wall-clock fields so two runs of the same seed render identical
//! bytes. [`TimelineLog::to_chrome_trace`] emits Chrome `trace_event` JSON
//! (open in chrome://tracing or Perfetto).

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// One pipeline phase inside a sync point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSample {
    /// Phase name: `"mapper"`, `"registration"`, `"delta"`, `"analysis"`,
    /// `"poll_wait"`, `"eject"`, `"persist"`.
    pub name: &'static str,
    /// Wall-clock duration in microseconds (nondeterministic; `poll_wait`
    /// is modeled as `polls x rtt` and therefore deterministic).
    pub micros: u64,
    /// Deterministic work units processed by the phase.
    pub work: u64,
}

/// One sync point's timeline entry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SyncTimeline {
    /// Portal sync sequence number.
    pub sync_seq: u64,
    /// Logical timestamp (microseconds) at sync start.
    pub ts: u64,
    /// Trace id of the `sync.point` root span (0 if tracing disabled).
    pub trace_id: u64,
    /// Span id of the `sync.point` root span.
    pub span_id: u64,
    /// First consumed update-log LSN (0 when no records were consumed).
    pub lsn_first: u64,
    /// Last consumed update-log LSN (inclusive).
    pub lsn_last: u64,
    /// Update-log records consumed.
    pub records: u64,
    /// Pages ejected by this sync point.
    pub ejected: u64,
    /// Polling queries issued.
    pub polls: u64,
    /// Phase samples in pipeline order.
    pub stages: Vec<StageSample>,
    /// End-to-end wall-clock duration in microseconds.
    pub wall_micros: u64,
}

/// Bounded ring of sync-point timelines.
pub struct TimelineLog {
    ring: Mutex<VecDeque<SyncTimeline>>,
    capacity: usize,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl TimelineLog {
    /// A log retaining the `capacity` most recent sync points.
    pub fn new(capacity: usize) -> Self {
        TimelineLog {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append one sync point's timeline, evicting the oldest at capacity.
    pub fn record(&self, entry: SyncTimeline) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(entry);
    }

    /// Timelines ever recorded.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Timelines evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The most recent `n` timelines, oldest first.
    pub fn recent(&self, n: usize) -> Vec<SyncTimeline> {
        let ring = self.ring.lock();
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    /// The `/timeline` JSON document. `trace_dropped` is the tracer ring's
    /// eviction count, surfaced here (with a combined `truncated` marker) so
    /// a consumer knows when causal chains referenced by old entries may no
    /// longer resolve. With `stable = true` every wall-clock field renders
    /// as 0, making the document byte-stable across runs of the same seed.
    pub fn to_json(&self, limit: usize, trace_dropped: u64, stable: bool) -> serde_json::Value {
        use serde_json::Value;
        let entries = self
            .recent(limit)
            .into_iter()
            .map(|t| {
                let stages = t
                    .stages
                    .iter()
                    .map(|s| {
                        Value::Object(vec![
                            ("name".to_string(), Value::String(s.name.to_string())),
                            (
                                "micros".to_string(),
                                Value::UInt(if stable { 0 } else { s.micros }),
                            ),
                            ("work".to_string(), Value::UInt(s.work)),
                        ])
                    })
                    .collect();
                Value::Object(vec![
                    ("sync_seq".to_string(), Value::UInt(t.sync_seq)),
                    ("ts".to_string(), Value::UInt(t.ts)),
                    ("trace_id".to_string(), Value::UInt(t.trace_id)),
                    ("span_id".to_string(), Value::UInt(t.span_id)),
                    ("lsn_first".to_string(), Value::UInt(t.lsn_first)),
                    ("lsn_last".to_string(), Value::UInt(t.lsn_last)),
                    ("records".to_string(), Value::UInt(t.records)),
                    ("ejected".to_string(), Value::UInt(t.ejected)),
                    ("polls".to_string(), Value::UInt(t.polls)),
                    (
                        "wall_micros".to_string(),
                        Value::UInt(if stable { 0 } else { t.wall_micros }),
                    ),
                    ("stages".to_string(), Value::Array(stages)),
                ])
            })
            .collect();
        let dropped = self.dropped();
        Value::Object(vec![
            ("recorded".to_string(), Value::UInt(self.recorded())),
            ("dropped".to_string(), Value::UInt(dropped)),
            ("trace_dropped".to_string(), Value::UInt(trace_dropped)),
            (
                "truncated".to_string(),
                Value::Bool(dropped > 0 || trace_dropped > 0),
            ),
            ("stable".to_string(), Value::Bool(stable)),
            ("sync_points".to_string(), Value::Array(entries)),
        ])
    }

    /// Chrome `trace_event` JSON (the `{"traceEvents": [...]}` object
    /// format). Each sync point renders as one complete ("X") event on
    /// tid 0 with its phases laid out end-to-end on tid 1, all stamped in
    /// logical-clock microseconds so concurrent runs don't interleave.
    pub fn to_chrome_trace(&self, limit: usize) -> serde_json::Value {
        use serde_json::Value;
        let mut events = Vec::new();
        for t in self.recent(limit) {
            let args = vec![
                ("sync_seq".to_string(), Value::UInt(t.sync_seq)),
                ("trace_id".to_string(), Value::UInt(t.trace_id)),
                ("lsn_first".to_string(), Value::UInt(t.lsn_first)),
                ("lsn_last".to_string(), Value::UInt(t.lsn_last)),
                ("records".to_string(), Value::UInt(t.records)),
                ("ejected".to_string(), Value::UInt(t.ejected)),
            ];
            events.push(Value::Object(vec![
                ("name".to_string(), Value::String(format!("sync#{}", t.sync_seq))),
                ("cat".to_string(), Value::String("sync".to_string())),
                ("ph".to_string(), Value::String("X".to_string())),
                ("ts".to_string(), Value::UInt(t.ts)),
                ("dur".to_string(), Value::UInt(t.wall_micros.max(1))),
                ("pid".to_string(), Value::UInt(1)),
                ("tid".to_string(), Value::UInt(0)),
                ("args".to_string(), Value::Object(args)),
            ]));
            let mut offset = 0u64;
            for s in &t.stages {
                let dur = s.micros.max(1);
                events.push(Value::Object(vec![
                    ("name".to_string(), Value::String(s.name.to_string())),
                    ("cat".to_string(), Value::String("stage".to_string())),
                    ("ph".to_string(), Value::String("X".to_string())),
                    ("ts".to_string(), Value::UInt(t.ts + offset)),
                    ("dur".to_string(), Value::UInt(dur)),
                    ("pid".to_string(), Value::UInt(1)),
                    ("tid".to_string(), Value::UInt(1)),
                    (
                        "args".to_string(),
                        Value::Object(vec![
                            ("work".to_string(), Value::UInt(s.work)),
                            ("sync_seq".to_string(), Value::UInt(t.sync_seq)),
                        ]),
                    ),
                ]));
                offset += dur;
            }
        }
        Value::Object(vec![
            ("displayTimeUnit".to_string(), Value::String("ms".to_string())),
            ("traceEvents".to_string(), Value::Array(events)),
        ])
    }
}

impl Default for TimelineLog {
    /// 256-entry ring.
    fn default() -> Self {
        TimelineLog::new(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, wall: u64) -> SyncTimeline {
        SyncTimeline {
            sync_seq: seq,
            ts: 100 * seq,
            trace_id: seq + 1,
            span_id: seq + 10,
            lsn_first: 1,
            lsn_last: 3,
            records: 3,
            ejected: 2,
            polls: 1,
            stages: vec![
                StageSample { name: "delta", micros: wall, work: 3 },
                StageSample { name: "analysis", micros: wall * 2, work: 9 },
                StageSample { name: "eject", micros: wall / 2, work: 2 },
            ],
            wall_micros: wall * 4,
        }
    }

    #[test]
    fn ring_bounds_and_truncation_marker() {
        let log = TimelineLog::new(2);
        for i in 0..3 {
            log.record(entry(i, 50));
        }
        assert_eq!(log.recorded(), 3);
        assert_eq!(log.dropped(), 1);
        let j = log.to_json(10, 0, false);
        assert_eq!(j["truncated"].as_bool(), Some(true));
        assert_eq!(j["sync_points"].as_array().unwrap().len(), 2);
        assert_eq!(j["sync_points"][0]["sync_seq"].as_u64(), Some(1));

        // A dropped-tracer-events count also marks the output truncated.
        let fresh = TimelineLog::new(8);
        fresh.record(entry(0, 50));
        assert_eq!(fresh.to_json(10, 0, false)["truncated"].as_bool(), Some(false));
        assert_eq!(fresh.to_json(10, 5, false)["truncated"].as_bool(), Some(true));
        assert_eq!(fresh.to_json(10, 5, false)["trace_dropped"].as_u64(), Some(5));
    }

    #[test]
    fn stable_rendering_is_byte_identical_despite_wall_jitter() {
        let a = TimelineLog::new(8);
        let b = TimelineLog::new(8);
        // Same deterministic fields, different wall-clock noise.
        a.record(entry(0, 37));
        b.record(entry(0, 9001));
        let ja = serde_json::to_string(&a.to_json(10, 0, true)).unwrap();
        let jb = serde_json::to_string(&b.to_json(10, 0, true)).unwrap();
        assert_eq!(ja, jb);
        // The unstable renderings differ (sanity: wall noise is visible).
        let ua = serde_json::to_string(&a.to_json(10, 0, false)).unwrap();
        let ub = serde_json::to_string(&b.to_json(10, 0, false)).unwrap();
        assert_ne!(ua, ub);
    }

    #[test]
    fn chrome_trace_shape() {
        let log = TimelineLog::new(8);
        log.record(entry(0, 50));
        let j = log.to_chrome_trace(10);
        let events = j["traceEvents"].as_array().unwrap();
        // 1 sync event + 3 stage events.
        assert_eq!(events.len(), 4);
        assert_eq!(events[0]["ph"].as_str(), Some("X"));
        assert_eq!(events[0]["name"].as_str(), Some("sync#0"));
        assert_eq!(events[0]["tid"].as_u64(), Some(0));
        assert_eq!(events[1]["name"].as_str(), Some("delta"));
        assert_eq!(events[1]["tid"].as_u64(), Some(1));
        // Stages tile end-to-end: analysis starts where delta ends.
        let delta_end = events[1]["ts"].as_u64().unwrap() + events[1]["dur"].as_u64().unwrap();
        assert_eq!(events[2]["ts"].as_u64(), Some(delta_end));
    }
}

//! Staleness-window probe.
//!
//! CachePortal ejects stale pages asynchronously: a mutation commits at some
//! logical time, and only at the next sync point does the invalidator map it
//! to cached pages and eject them. The window between *commit* and *eject*
//! is exactly the interval during which the cache may serve stale content —
//! the paper's freshness argument is about keeping this window short.
//!
//! The probe stamps each committed mutation's LSN with the logical clock at
//! commit time. When a sync point consumes the update log up to some LSN and
//! ejects pages, the probe records one observation per ejected page: the age
//! (`now - commit_ts`) of the **oldest** mutation in the consumed batch,
//! i.e. the worst-case time that page could have been stale.

use crate::histogram::{Histogram, HistogramSnapshot};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Log sequence number (mirrors `cacheportal_db::Lsn` without depending on
/// the db crate).
pub type Lsn = u64;

/// Tracks commit timestamps per LSN and the commit→eject latency histogram.
#[derive(Default)]
pub struct StalenessProbe {
    /// Commit timestamp (logical micros) for each not-yet-consumed LSN.
    pending: Mutex<BTreeMap<Lsn, u64>>,
    /// Commit→eject latency per ejected page, logical micros.
    window: Histogram,
}

impl StalenessProbe {
    /// An empty probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that the mutation with `lsn` committed at logical time `ts`.
    pub fn stamp(&self, lsn: Lsn, ts: u64) {
        self.pending.lock().insert(lsn, ts);
    }

    /// A sync point consumed the log through `consumed_lsn` (inclusive) at
    /// logical time `now`, ejecting `ejected_pages` pages. Records one
    /// worst-case staleness observation per ejected page and drains the
    /// consumed stamps. Returns the observed window (micros) if any
    /// mutation was consumed.
    pub fn on_sync_point(&self, consumed_lsn: Lsn, now: u64, ejected_pages: usize) -> Option<u64> {
        let mut pending = self.pending.lock();
        let mut oldest: Option<u64> = None;
        // BTreeMap keys are sorted; split off the consumed prefix.
        let still_pending = pending.split_off(&(consumed_lsn + 1));
        for ts in pending.values() {
            oldest = Some(oldest.map_or(*ts, |o: u64| o.min(*ts)));
        }
        *pending = still_pending;
        drop(pending);

        let window = oldest.map(|ts| now.saturating_sub(ts));
        if let Some(w) = window {
            // One observation per ejected page; a sync point that ejects
            // nothing still closes the window for the consumed mutations,
            // so record it once to keep "no cached page affected" visible
            // in the distribution.
            for _ in 0..ejected_pages.max(1) {
                self.window.record(w);
            }
        }
        window
    }

    /// Number of committed mutations not yet consumed by a sync point.
    pub fn pending_len(&self) -> usize {
        self.pending.lock().len()
    }

    /// Commit timestamp of the oldest unconsumed mutation, if any.
    pub fn oldest_pending_ts(&self) -> Option<u64> {
        self.pending.lock().values().copied().min()
    }

    /// Snapshot of the commit→eject latency distribution.
    pub fn window_snapshot(&self) -> HistogramSnapshot {
        self.window.snapshot()
    }

    /// JSON summary.
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            (
                "pending_mutations".to_string(),
                Value::UInt(self.pending_len() as u64),
            ),
            (
                "commit_to_eject_micros".to_string(),
                self.window_snapshot().to_json(),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_uses_oldest_consumed_commit() {
        let p = StalenessProbe::new();
        p.stamp(1, 100);
        p.stamp(2, 250);
        p.stamp(3, 400); // not consumed below
        let w = p.on_sync_point(2, 1_000, 3);
        assert_eq!(w, Some(900)); // 1000 - 100 (oldest consumed)
        assert_eq!(p.pending_len(), 1); // lsn 3 survives
        let s = p.window_snapshot();
        assert_eq!(s.count, 3); // one observation per ejected page
        assert_eq!(s.max, 900);
    }

    #[test]
    fn sync_with_no_ejections_still_closes_window() {
        let p = StalenessProbe::new();
        p.stamp(7, 50);
        let w = p.on_sync_point(7, 80, 0);
        assert_eq!(w, Some(30));
        assert_eq!(p.window_snapshot().count, 1);
        assert_eq!(p.pending_len(), 0);
    }

    #[test]
    fn sync_with_nothing_consumed_records_nothing() {
        let p = StalenessProbe::new();
        assert_eq!(p.on_sync_point(10, 500, 4), None);
        assert_eq!(p.window_snapshot().count, 0);
    }
}

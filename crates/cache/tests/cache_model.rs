//! Model-based property tests: the page cache under random operation
//! sequences must agree with a naive reference model for LRU and FIFO
//! (contents, hit/miss outcomes, and capacity).

use cacheportal_cache::{EvictionPolicy, PageCache, PageCacheConfig};
use cacheportal_web::PageKey;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Get(u8),
    Put(u8),
    Invalidate(u8),
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..12).prop_map(Op::Get),
        4 => (0u8..12).prop_map(Op::Put),
        1 => (0u8..12).prop_map(Op::Invalidate),
        1 => Just(Op::Clear),
    ]
}

/// Naive reference: ordered vec of (key, body, last_used_seq, inserted_seq).
struct Model {
    capacity: usize,
    policy: EvictionPolicy,
    entries: Vec<(u8, u64, u64)>, // (key, last_used_seq, inserted_seq)
    seq: u64,
}

impl Model {
    fn new(capacity: usize, policy: EvictionPolicy) -> Self {
        Model {
            capacity,
            policy,
            entries: Vec::new(),
            seq: 0,
        }
    }

    fn get(&mut self, k: u8) -> bool {
        self.seq += 1;
        let seq = self.seq;
        if let Some(e) = self.entries.iter_mut().find(|(key, _, _)| *key == k) {
            e.1 = seq;
            true
        } else {
            false
        }
    }

    fn put(&mut self, k: u8) {
        self.seq += 1;
        let seq = self.seq;
        if let Some(e) = self.entries.iter_mut().find(|(key, _, _)| *key == k) {
            // Overwrite replaces the whole entry: recency and insertion
            // order both refresh (mirrors `PageCache::put`).
            e.1 = seq;
            e.2 = seq;
            return;
        }
        if self.entries.len() >= self.capacity {
            // Evict per policy.
            let victim_idx = match self.policy {
                EvictionPolicy::Lru => self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, used, ins))| (*used, *ins))
                    .map(|(i, _)| i)
                    .unwrap(),
                EvictionPolicy::Fifo => self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, _, ins))| *ins)
                    .map(|(i, _)| i)
                    .unwrap(),
                EvictionPolicy::Lfu => unreachable!("LFU not modelled here"),
            };
            self.entries.remove(victim_idx);
        }
        self.entries.push((k, seq, seq));
    }

    fn invalidate(&mut self, k: u8) {
        self.entries.retain(|(key, _, _)| *key != k);
    }

    fn clear(&mut self) {
        self.entries.clear();
    }

    fn keys(&self) -> Vec<u8> {
        let mut v: Vec<u8> = self.entries.iter().map(|(k, _, _)| *k).collect();
        v.sort_unstable();
        v
    }
}

fn key(k: u8) -> PageKey {
    PageKey::raw(format!("k{k}"))
}

fn run_against_model(policy: EvictionPolicy, capacity: usize, ops: Vec<Op>) {
    let cache = PageCache::new(PageCacheConfig {
        capacity,
        policy,
        ttl_micros: None,
    });
    let mut model = Model::new(capacity, policy);
    let mut now = 0u64;
    for op in ops {
        now += 1;
        match op {
            Op::Get(k) => {
                let got = cache.get(&key(k), now).is_some();
                let want = model.get(k);
                assert_eq!(got, want, "get({k}) divergence");
            }
            Op::Put(k) => {
                // Mirror the put-if-absent usage pattern of the system: the
                // model and cache both overwrite unconditionally here.
                cache.put(key(k), format!("body{k}"), now);
                model.put(k);
            }
            Op::Invalidate(k) => {
                cache.invalidate([&key(k)]);
                model.invalidate(k);
            }
            Op::Clear => {
                cache.clear();
                model.clear();
            }
        }
        // Same contents after every operation.
        let mut got: Vec<u8> = cache
            .keys()
            .into_iter()
            .map(|k| k.as_str()[1..].parse::<u8>().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, model.keys(), "contents diverged after an op");
        assert!(cache.len() <= capacity);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lru_matches_reference_model(
        ops in prop::collection::vec(op_strategy(), 1..120),
        capacity in 1usize..8,
    ) {
        run_against_model(EvictionPolicy::Lru, capacity, ops);
    }

    #[test]
    fn fifo_matches_reference_model(
        ops in prop::collection::vec(op_strategy(), 1..120),
        capacity in 1usize..8,
    ) {
        run_against_model(EvictionPolicy::Fifo, capacity, ops);
    }

    /// LFU has no simple reference here, but its invariants must hold:
    /// never exceeds capacity, and get-after-put within capacity hits.
    #[test]
    fn lfu_invariants(
        ops in prop::collection::vec(op_strategy(), 1..120),
        capacity in 1usize..8,
    ) {
        let cache = PageCache::new(PageCacheConfig {
            capacity,
            policy: EvictionPolicy::Lfu,
            ttl_micros: None,
        });
        let mut now = 0u64;
        for op in ops {
            now += 1;
            match op {
                Op::Get(k) => {
                    // A hit must return the body that was last put.
                    if let Some(body) = cache.get(&key(k), now) {
                        prop_assert_eq!(body, "b");
                    }
                }
                Op::Put(k) => {
                    cache.put(key(k), "b".into(), now);
                    prop_assert!(cache.get(&key(k), now).is_some(), "just-put key present");
                }
                Op::Invalidate(k) => {
                    cache.invalidate([&key(k)]);
                    prop_assert!(cache.get(&key(k), now).is_none());
                }
                Op::Clear => {
                    cache.clear();
                    prop_assert!(cache.is_empty());
                }
            }
            prop_assert!(cache.len() <= capacity);
        }
    }
}

//! Data-cache (Configuration II) integration cases: join queries spanning
//! tables, synchronization cursors, and interaction with real DML through a
//! caching connection.

use cacheportal_cache::{CachingConnection, DataCache};
use cacheportal_db::{Database, LogRecord, Value};
use cacheportal_web::{shared, Connection, DbConnection, SharedDb};

fn setup() -> (SharedDb, std::sync::Arc<DataCache>, CachingConnection<DbConnection>) {
    let mut db = Database::new();
    db.execute("CREATE TABLE a (k INT, v INT, INDEX(k))").unwrap();
    db.execute("CREATE TABLE b (k INT, w INT, INDEX(k))").unwrap();
    for i in 0..10 {
        db.execute(&format!("INSERT INTO a VALUES ({i}, {})", i * 10)).unwrap();
        db.execute(&format!("INSERT INTO b VALUES ({i}, {})", i * 100)).unwrap();
    }
    let sdb = shared(db);
    let cache = DataCache::new(32);
    let conn = CachingConnection::new(DbConnection::new(sdb.clone()), cache.clone());
    (sdb, cache, conn)
}

fn drain(sdb: &SharedDb, since: u64) -> Vec<LogRecord> {
    sdb.read().update_log().pull_since(since).to_vec()
}

#[test]
fn join_entries_invalidate_when_either_table_changes() {
    let (sdb, cache, mut conn) = setup();
    conn.query("SELECT a.v, b.w FROM a, b WHERE a.k = b.k AND a.k < 3", &[])
        .unwrap();
    conn.query("SELECT v FROM a WHERE k = 1", &[]).unwrap();
    conn.query("SELECT w FROM b WHERE k = 1", &[]).unwrap();
    assert_eq!(cache.len(), 3);

    // Change table b: the join entry and the b entry go; the a entry stays.
    let hw = sdb.read().high_water();
    sdb.write().execute("INSERT INTO b VALUES (99, 9900)").unwrap();
    let dropped = cache.synchronize(&drain(&sdb, hw));
    assert_eq!(dropped, 2);
    assert!(cache.get("SELECT v FROM a WHERE k = 1", &[]).is_some());
    assert!(cache
        .get("SELECT a.v, b.w FROM a, b WHERE a.k = b.k AND a.k < 3", &[])
        .is_none());
}

#[test]
fn sync_cursor_advances_monotonically() {
    let (sdb, cache, mut conn) = setup();
    conn.query("SELECT v FROM a WHERE k = 2", &[]).unwrap();
    let hw = sdb.read().high_water();
    sdb.write().execute("INSERT INTO a VALUES (50, 500)").unwrap();
    sdb.write().execute("INSERT INTO a VALUES (51, 510)").unwrap();
    let recs = drain(&sdb, hw);
    cache.synchronize(&recs);
    let cursor = cache.synced_to();
    assert_eq!(cursor, recs.last().unwrap().lsn + 1);
    // Re-delivering the same batch is harmless and does not rewind.
    cache.synchronize(&recs);
    assert_eq!(cache.synced_to(), cursor);
    // An empty batch leaves everything alone.
    assert_eq!(cache.synchronize(&[]), 0);
}

#[test]
fn stale_window_then_refresh_through_connection() {
    let (sdb, cache, mut conn) = setup();
    let q = "SELECT COUNT(*) FROM a";
    let before = conn.query(q, &[]).unwrap();
    assert_eq!(before.rows[0][0], Value::Int(10));

    // Write through the same connection: the cache is NOT updated (write-
    // around), so the next read is stale until synchronization.
    let hw = sdb.read().high_water();
    conn.execute("INSERT INTO a VALUES (77, 770)", &[]).unwrap();
    assert_eq!(conn.query(q, &[]).unwrap().rows[0][0], Value::Int(10));
    cache.synchronize(&drain(&sdb, hw));
    assert_eq!(conn.query(q, &[]).unwrap().rows[0][0], Value::Int(11));
}

#[test]
fn distinct_parameter_vectors_do_not_collide() {
    let (_sdb, cache, mut conn) = setup();
    let q = "SELECT v FROM a WHERE k = $1";
    let r1 = conn.query(q, &[Value::Int(1)]).unwrap();
    let r2 = conn.query(q, &[Value::Int(2)]).unwrap();
    assert_ne!(r1, r2);
    // Both hit now.
    conn.query(q, &[Value::Int(1)]).unwrap();
    conn.query(q, &[Value::Int(2)]).unwrap();
    let s = cache.stats();
    assert_eq!(s.hits, 2);
    assert_eq!(s.misses, 2);
    // A string parameter that *prints* like the int must not collide.
    let r3 = conn.query(q, &[Value::Str("1".into())]).unwrap();
    assert!(r3.rows.is_empty(), "string '1' does not equal int 1 in SQL");
}
